"""CI smoke: scrape /metrics from a live stream CLI run, validate the trace.

Launches ``python -m repro stream`` as a real subprocess with
``--metrics-port 0`` and ``--trace``, polls the advertised /metrics URL
while the run is in flight, and validates both artifacts with the repo's
own validators (``repro.obs.validate_exposition`` /
``repro.obs.validate_trace_events``).  Exits non-zero on any failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from repro.obs import validate_exposition, validate_trace_events

TRACE = Path("obs_smoke_trace.json")


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "stream",
            "--scale", "0.05", "--seed", "5", "--no-influence",
            "--shards", "2", "--max-rounds", "4", "--show-rounds", "0",
            "--metrics-port", "0", "--trace", str(TRACE),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    url = None
    bodies: list[str] = []
    lines: list[str] = []
    for line in proc.stdout:
        lines.append(line)
        if url is None and line.startswith("metrics: "):
            url = line.split(" ", 1)[1].strip()
        if url is not None:
            try:
                with urllib.request.urlopen(url, timeout=5) as response:
                    bodies.append(response.read().decode("utf-8"))
            except OSError:
                pass  # server already closed; the run is finishing
    returncode = proc.wait(timeout=120)
    output = "".join(lines)
    if returncode != 0:
        print(output)
        print(f"FAIL: stream CLI exited with {returncode}", file=sys.stderr)
        return 1
    if url is None:
        print(output)
        print("FAIL: CLI never advertised a metrics URL", file=sys.stderr)
        return 1
    if not bodies:
        print("FAIL: no /metrics scrape succeeded during the run", file=sys.stderr)
        return 1
    for body in bodies:
        validate_exposition(body)
    if "repro_stream_rounds_total" not in bodies[-1]:
        print("FAIL: scrape is missing repro_stream_rounds_total", file=sys.stderr)
        return 1
    payload = json.loads(TRACE.read_text(encoding="utf-8"))
    validate_trace_events(payload)
    names = {event.get("name") for event in payload["traceEvents"]}
    missing = {"round", "round.drain", "shard.solve", "round.merge"} - names
    if missing:
        print(f"FAIL: trace is missing spans {sorted(missing)}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(bodies)} live scrape(s) validated, "
        f"trace has {len(payload['traceEvents'])} events"
    )
    return 0


if __name__ == "__main__":
    start = time.monotonic()
    status = main()
    print(f"elapsed: {time.monotonic() - start:.1f}s")
    sys.exit(status)
