"""Substrate bench: geographic partitioning vs the global solve.

Quantifies the quality/latency trade-off of :class:`PartitionedAssigner`:
per-cell solves are much faster on large areas while losing only the
border pairs (cells at the worker radius keep losses small).
"""

import numpy as np
import pytest

from repro.assignment import MTAAssigner, PartitionedAssigner, PreparedInstance
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.geo import Point


def make_instance(num, spread, radius=10.0, seed=0):
    rng = np.random.default_rng(seed)
    workers = [
        Worker(worker_id=i, location=Point(*rng.uniform(0, spread, 2)),
               reachable_km=radius)
        for i in range(num)
    ]
    tasks = [
        Task(task_id=i, location=Point(*rng.uniform(0, spread, 2)),
             publication_time=0.0, valid_hours=8.0)
        for i in range(num)
    ]
    return SCInstance(
        name="partition-bench",
        current_time=0.0,
        tasks=tasks,
        workers=workers,
        histories={},
        social_edges=[],
        all_worker_ids=tuple(range(num)),
    )


SIZE = 900
SPREAD = 300.0


def test_global_solve(benchmark):
    instance = make_instance(SIZE, SPREAD)
    assignment = benchmark.pedantic(
        lambda: MTAAssigner().assign(PreparedInstance(instance)),
        rounds=1, iterations=1,
    )
    print(f"\nglobal: {len(assignment)} assigned")
    assert len(assignment) > 0


@pytest.mark.parametrize("cell_km", [15.0, 50.0])
def test_partitioned_solve(benchmark, cell_km):
    instance = make_instance(SIZE, SPREAD)
    assigner = PartitionedAssigner(MTAAssigner(), cell_km=cell_km)
    assignment = benchmark.pedantic(
        lambda: assigner.assign(PreparedInstance(instance)),
        rounds=1, iterations=1,
    )
    global_count = len(MTAAssigner().assign(PreparedInstance(instance)))
    loss = 1.0 - len(assignment) / max(global_count, 1)
    print(f"\ncell={cell_km:g} km: {len(assignment)} assigned "
          f"(global {global_count}, border loss {loss:.1%})")
    assert len(assignment) >= global_count * 0.5
