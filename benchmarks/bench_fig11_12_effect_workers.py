"""Figures 11 (BK) and 12 (FS): the five algorithms as |W| varies.

Paper shapes: CPU time and the number of assigned tasks grow with |W|;
AI of the influence-aware algorithms exceeds MTA's; DIA travels least and
MTA most.
"""

from figutil import check_comparison_shapes, run_and_print_comparison


def test_fig11_12_effect_of_workers(benchmark, both_runners):
    def run():
        return run_and_print_comparison(
            both_runners,
            "num_workers",
            lambda runner: runner.settings.worker_sweep,
            figure="Fig.11/12",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_comparison_shapes(results)
    for result in results.values():
        # More workers -> more assignments (for the coverage-seeking family).
        assigned = result.metric_series("MTA", "num_assigned")
        assert assigned[-1] >= assigned[0]
