"""Figure 5: Average Influence of IA vs IA-WP / IA-AP / IA-AW as |S| varies.

Paper shape: IA achieves the largest AI for every |S| (it uses all three
influence components); on BK, IA-AP ranks second.
"""

from figutil import check_ablation_shapes, run_and_print_ablation


def test_fig5_effect_of_tasks_on_ai(benchmark, both_runners):
    def run():
        return run_and_print_ablation(
            both_runners,
            "num_tasks",
            lambda runner: runner.settings.task_sweep,
            figure="Fig.5",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_ablation_shapes(results)
