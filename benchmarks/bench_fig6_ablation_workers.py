"""Figure 6: Average Influence of the ablations as |W| varies.

Paper shape: IA-WP (no affinity) is lowest in most cases — worker-task
affinity matters more than willingness/propagation alone; IA stays on top.
"""

from figutil import check_ablation_shapes, run_and_print_ablation


def test_fig6_effect_of_workers_on_ai(benchmark, both_runners):
    def run():
        return run_and_print_ablation(
            both_runners,
            "num_workers",
            lambda runner: runner.settings.worker_sweep,
            figure="Fig.6",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_ablation_shapes(results)
