"""Model-choice ablation bench: LDA vs TF-IDF affinity, movement families,
IC vs LT propagation.

These are the DESIGN.md §5 design-choice knobs that the paper fixes without
ablating; the bench quantifies how much each modeling choice moves the
headline Average Influence metric on one BK-like day, holding the
assignment algorithm (IA) and the scoring model (the paper's full
LDA+Pareto+IC influence) constant.
"""

import pytest

from repro import DITAPipeline, IAAssigner, PipelineConfig, PreparedInstance
from repro.framework import Simulator


def make_config(**overrides) -> PipelineConfig:
    defaults = dict(
        num_topics=20,
        propagation_mode="fixed",
        num_rrr_sets=20_000,
        seed=7,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@pytest.fixture(scope="module")
def bk_day(bk_runner):
    """One default-parameter day instance plus the reference full model."""
    day = bk_runner.days[0]
    instance = bk_runner.build_instance(day)
    reference = DITAPipeline(make_config()).fit(instance)
    return instance, reference.influence_model()


def run_variant(benchmark, instance, scoring_model, **config_overrides):
    """Fit the variant pipeline, assign with IA, score with the reference."""
    def fit_and_assign():
        models = DITAPipeline(make_config(**config_overrides)).fit(instance)
        prepared = PreparedInstance(instance, models.influence_model())
        return Simulator(make_config()).run_instance(
            instance,
            [IAAssigner()],
            influence_model=models.influence_model(),
            full_model=scoring_model,
        )[0]

    metrics = benchmark.pedantic(fit_and_assign, rounds=1, iterations=1)
    print(
        f"\n{config_overrides or 'reference'}: assigned={metrics.num_assigned} "
        f"AI={metrics.average_influence:.4f}"
    )
    return metrics


def test_reference_lda_pareto_ic(benchmark, bk_day):
    instance, scoring = bk_day
    metrics = run_variant(benchmark, instance, scoring)
    assert metrics.num_assigned > 0


def test_affinity_tfidf(benchmark, bk_day):
    instance, scoring = bk_day
    metrics = run_variant(benchmark, instance, scoring, affinity_engine="tfidf")
    assert metrics.num_assigned > 0


@pytest.mark.parametrize("family", ["exponential", "lognormal", "rayleigh"])
def test_movement_family(benchmark, bk_day, family):
    instance, scoring = bk_day
    metrics = run_variant(benchmark, instance, scoring, movement_family=family)
    assert metrics.num_assigned > 0


def test_propagation_lt(benchmark, bk_day):
    instance, scoring = bk_day
    metrics = run_variant(benchmark, instance, scoring, propagation_model="lt")
    assert metrics.num_assigned > 0
