"""Substrate bench: feasible-pair enumeration — dense scan vs spatial indexes.

Design-choice ablation: the dense ``|W| x |S|`` feasibility product is the
right layout for the flow solvers at paper scale, but the k-d tree and grid
candidate generators are output-sensitive and win once instances grow or the
reachable radius shrinks.  All three produce the identical pair set (asserted
here and property-tested in the unit suite).
"""

import numpy as np
import pytest

from repro.assignment import candidate_pairs
from repro.entities import Task, Worker
from repro.geo import Point


def make_world(num_workers: int, num_tasks: int, radius: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    area = 100.0
    workers = [
        Worker(worker_id=i, location=Point(*rng.uniform(0, area, 2)), reachable_km=radius)
        for i in range(num_workers)
    ]
    tasks = [
        Task(
            task_id=i,
            location=Point(*rng.uniform(0, area, 2)),
            publication_time=0.0,
            valid_hours=5.0,
        )
        for i in range(num_tasks)
    ]
    return workers, tasks


SIZES = [(400, 500), (1200, 1500)]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("kind", ["dense", "grid", "kdtree"])
def test_candidate_enumeration(benchmark, size, kind):
    workers, tasks = make_world(*size, radius=10.0)
    pairs = benchmark.pedantic(
        lambda: candidate_pairs(workers, tasks, 0.0, index=kind),
        rounds=1, iterations=1,
    )
    assert pairs


@pytest.mark.parametrize("radius", [5.0, 25.0])
def test_index_agreement(benchmark, radius):
    """All three enumeration paths agree pair-for-pair."""
    workers, tasks = make_world(300, 375, radius=radius, seed=3)

    def run_all():
        return {
            kind: candidate_pairs(workers, tasks, 0.0, index=kind)
            for kind in ("dense", "grid", "kdtree")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    key = lambda pairs: [(p.worker_index, p.task_index) for p in pairs]
    assert key(results["grid"]) == key(results["dense"])
    assert key(results["kdtree"]) == key(results["dense"])
    print(f"\nradius={radius} km -> {len(results['dense'])} feasible pairs")
