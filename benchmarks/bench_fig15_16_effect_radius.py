"""Figures 15 (BK) and 16 (FS): the five algorithms as r varies.

Paper shapes: CPU time, assigned tasks and travel cost grow with r;
AI and AP of MTA stay below the influence-aware algorithms.
"""

from figutil import check_comparison_shapes, run_and_print_comparison


def test_fig15_16_effect_of_radius(benchmark, both_runners):
    def run():
        return run_and_print_comparison(
            both_runners,
            "reachable_km",
            lambda runner: runner.settings.radius_sweep,
            figure="Fig.15/16",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_comparison_shapes(results)
    for result in results.values():
        assigned = result.metric_series("MTA", "num_assigned")
        assert assigned[-1] >= assigned[0]
        travel = result.metric_series("MTA", "average_travel_km")
        assert travel[-1] >= travel[0]
