"""Helpers shared by the per-figure benchmarks: run, print, shape-check."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.experiments import (
    ExperimentRunner,
    SweepResult,
    format_series,
    format_sweep_table,
)
from repro.ioutil import atomic_write_text

#: Directory for machine-readable ``BENCH_*.json`` artifacts.  Unset (the
#: default) disables emission entirely, so local runs stay side-effect-free;
#: CI points it at a scratch directory and uploads the files.
ARTIFACT_ENV = "REPRO_BENCH_ARTIFACTS"


def bench_artifact(name: str, payload: dict[str, Any]) -> Path | None:
    """Atomically write one benchmark result as ``BENCH_<name>.json``.

    Returns the written path, or ``None`` when ``REPRO_BENCH_ARTIFACTS`` is
    unset.  Payloads must be JSON-serializable; keys are sorted so repeated
    runs of identical results produce byte-identical files.
    """
    root = os.environ.get(ARTIFACT_ENV)
    if not root:
        return None
    directory = Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def run_and_print_ablation(
    runners: dict[str, ExperimentRunner],
    parameter: str,
    values_of: Callable[[ExperimentRunner], Sequence[float]],
    figure: str,
) -> dict[str, SweepResult]:
    """Run the Figure 5-8 style ablation on both datasets and print AI."""
    from repro.experiments import run_ablation_sweep

    results = {}
    for name, runner in runners.items():
        result = run_ablation_sweep(runner, parameter, values_of(runner))
        results[name] = result
        print()
        print(format_series(
            result, "average_influence",
            title=f"{figure} — Average Influence on {name} (vs {parameter})",
        ))
    return results


def run_and_print_comparison(
    runners: dict[str, ExperimentRunner],
    parameter: str,
    values_of: Callable[[ExperimentRunner], Sequence[float]],
    figure: str,
) -> dict[str, SweepResult]:
    """Run the Figure 9-16 style comparison and print all five metrics."""
    from repro.experiments import run_comparison_sweep

    results = {}
    for name, runner in runners.items():
        result = run_comparison_sweep(runner, parameter, values_of(runner))
        results[name] = result
        print()
        print(format_sweep_table(result, title=f"{figure} — {name} (vs {parameter})"))
    return results


def mean_series(result: SweepResult, algorithm: str, metric: str) -> float:
    """Mean of one metric over the sweep (for coarse shape assertions)."""
    series = result.metric_series(algorithm, metric)
    return sum(series) / len(series)


def check_comparison_shapes(results: dict[str, SweepResult]) -> None:
    """Assert the headline orderings the paper reports, averaged over the
    sweep (single points may cross; the paper's claims are about trends)."""
    for result in results.values():
        ai = {a: mean_series(result, a, "average_influence") for a in result.algorithms()}
        travel = {a: mean_series(result, a, "average_travel_km") for a in result.algorithms()}
        assigned = {a: mean_series(result, a, "num_assigned") for a in result.algorithms()}
        # Influence-aware algorithms beat MTA on AI.
        assert ai["IA"] >= ai["MTA"], (ai, "IA should beat MTA on AI")
        assert ai["MI"] >= ai["MTA"], (ai, "MI should beat MTA on AI")
        # MI tops AI but assigns the fewest tasks.
        assert ai["MI"] >= max(ai["MTA"], ai["EIA"], ai["DIA"]) * 0.95
        assert assigned["MI"] <= min(
            assigned["MTA"], assigned["IA"], assigned["EIA"], assigned["DIA"]
        ) + 1e-9
        # DIA has the lowest travel cost among the influence-aware family.
        assert travel["DIA"] <= min(travel["IA"], travel["EIA"]) + 1e-9


def check_ablation_shapes(results: dict[str, SweepResult]) -> None:
    """IA (full influence) should dominate each single-component ablation
    on Average Influence, averaged over the sweep."""
    for result in results.values():
        ai = {a: mean_series(result, a, "average_influence") for a in result.algorithms()}
        for variant in ("IA-WP", "IA-AP", "IA-AW"):
            assert ai["IA"] >= ai[variant] * 0.98, (ai, f"IA should dominate {variant}")
