"""Figures 13 (BK) and 14 (FS): the five algorithms as ϕ varies.

Paper shapes: CPU time, assigned tasks and travel cost all grow with ϕ
(longer validity -> more feasible pairs, some far away); AI/AP of the
influence-aware family exceed MTA's.

The sweep runs at the day-end assignment instant (assignment_hour = 24) so
that ϕ controls the availability window; at the day start every deadline
has hours of slack and the sweep is flat.
"""

from figutil import check_comparison_shapes, run_and_print_comparison


def test_fig13_14_effect_of_validtime(benchmark, both_runners_day_end):
    def run():
        return run_and_print_comparison(
            both_runners_day_end,
            "valid_hours",
            lambda runner: runner.settings.valid_hours_sweep,
            figure="Fig.13/14",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_comparison_shapes(results)
    for result in results.values():
        # Longer validity -> at least as many assigned tasks.
        assigned = result.metric_series("MTA", "num_assigned")
        assert assigned[-1] >= assigned[0]
        # And (weakly) larger travel costs for the coverage maximizer.
        travel = result.metric_series("MTA", "average_travel_km")
        assert travel[-1] >= travel[0] * 0.8
