"""Substrate bench: streaming runtime throughput and round-latency tails.

Drives :class:`~repro.stream.StreamRuntime` over synthetic Poisson streams
at 10x and 100x the paper's per-day arrival volumes and reports events/sec
plus p50/p99 round latency for each trigger policy (count, time window,
hybrid, latency-adaptive).  A cross-check against the batched
:class:`~repro.framework.OnlineSimulator` pins the equivalence configuration
at bench scale.

Two further column groups cover the pipelined executor on a clustered
8-shard world: **pipelined vs serial** (the overlapped per-shard
prepare+solve path must beat the serial sharded path by >= 1.3x round p50
at the 100x rate) and **rebalance on vs off** (the EWMA repacker must not
regress round latency while producing identical output).

``REPRO_BENCH_SCALE`` scales the stream volumes like the other benches
(default 0.15; CI smoke runs 0.05; 1.0 is the full 10-100x grid).
"""

import os

import numpy as np
import pytest
from figutil import bench_artifact

from repro.assignment import MTAAssigner, NearestNeighborAssigner
from repro.assignment.lexico import LexicographicCostAssigner
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.framework import OnlineSimulator, WorkerArrival
from repro.geo import Point
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.stream import (
    AdaptiveTrigger,
    CountTrigger,
    EventLog,
    HybridTrigger,
    ShardRebalancer,
    StreamRuntime,
    TaskPublishEvent,
    TimeWindowTrigger,
    WorkerArrivalEvent,
    expiry_events,
    log_from_arrivals,
    synthetic_stream,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

#: The paper's days peak around 2.5k tasks / 2k workers; one "rate unit"
#: here is that volume per simulated day, multiplied by the rate factor.
PAPER_DAY_WORKERS = 2000
PAPER_DAY_TASKS = 2500


def make_stream(rate_factor: int, seed: int = 17):
    num_workers = max(int(PAPER_DAY_WORKERS * rate_factor * BENCH_SCALE), 50)
    num_tasks = max(int(PAPER_DAY_TASKS * rate_factor * BENCH_SCALE), 50)
    return synthetic_stream(
        num_workers=num_workers,
        num_tasks=num_tasks,
        duration_hours=24.0,
        area_km=60.0,
        valid_hours=4.0,
        reachable_km=20.0,
        churn_fraction=0.05,
        cancel_fraction=0.02,
        seed=seed,
    )


TRIGGERS = {
    "count": lambda: CountTrigger(64),
    "window": lambda: TimeWindowTrigger(0.5),
    "hybrid": lambda: HybridTrigger(64, 0.5),
    "adaptive": lambda: AdaptiveTrigger(
        target_seconds=0.05, initial_window_hours=0.5, min_window_hours=0.05,
        max_window_hours=4.0,
    ),
}


@pytest.mark.parametrize("rate_factor", [10, 100])
@pytest.mark.parametrize("policy", sorted(TRIGGERS))
def test_stream_trigger_policies(benchmark, policy, rate_factor):
    base, log = make_stream(rate_factor)
    runtime = StreamRuntime(
        NearestNeighborAssigner(), None, TRIGGERS[policy](), base, log,
        patience_hours=6.0,
    )
    result = benchmark.pedantic(runtime.run, rounds=1, iterations=1)
    summary = result.summary()
    print(
        f"\n{policy:>8} @ {rate_factor:>3}x: {summary.rounds} rounds, "
        f"{summary.assigned} assigned, {summary.events_per_second:,.0f} events/s, "
        f"round latency p50 {summary.round_latency_p50 * 1e3:.2f} ms / "
        f"p99 {summary.round_latency_p99 * 1e3:.2f} ms, "
        f"task wait p50 {summary.task_wait_p50:.2f} h"
    )
    assert summary.assigned > 0
    # Every admission event precedes the default end time (the latest task
    # deadline), so all of them must have been drained; only expiry/churn
    # events landing exactly on or after the end may remain unconsumed.
    admissions = sum(1 for event in log if event.phase <= 1)
    assert summary.events_drained >= admissions
    bench_artifact(
        f"stream_trigger_{policy}_{rate_factor}x",
        {"policy": policy, "rate_factor": rate_factor,
         "bench_scale": BENCH_SCALE, **summary_payload(summary)},
    )


@pytest.mark.parametrize("rate_factor", [10])
def test_stream_flow_assigner(benchmark, rate_factor):
    """The MTA (flow-based) assigner under hybrid micro-batching."""
    base, log = make_stream(rate_factor)
    runtime = StreamRuntime(
        MTAAssigner(), None, HybridTrigger(64, 0.5), base, log,
        patience_hours=6.0,
    )
    result = benchmark.pedantic(runtime.run, rounds=1, iterations=1)
    summary = result.summary()
    print(
        f"\nMTA hybrid @ {rate_factor}x: {summary.rounds} rounds, "
        f"{summary.assigned} assigned, {summary.events_per_second:,.0f} events/s, "
        f"p99 round {summary.round_latency_p99 * 1e3:.2f} ms"
    )
    assert summary.assigned > 0


#: Separated city clusters for the pipelined/rebalance columns (mirrors
#: ``bench_stream_shards``: the world shape whose rounds decompose).
CLUSTERS = 8


def make_clustered_stream(rate_factor: int, seed: int = 31):
    num_workers = max(int(PAPER_DAY_WORKERS * rate_factor * BENCH_SCALE), 80)
    num_tasks = max(int(PAPER_DAY_TASKS * rate_factor * BENCH_SCALE), 80)
    return synthetic_stream(
        num_workers=num_workers,
        num_tasks=num_tasks,
        duration_hours=24.0,
        area_km=25.0,
        valid_hours=4.0,
        reachable_km=10.0,
        churn_fraction=0.05,
        cancel_fraction=0.02,
        clusters=CLUSTERS,
        seed=seed,
    )


#: Admissions per micro-batch for the pipelined column.  Uniform count
#: batches keep every round comparably heavy, so the p50 round latency
#: measures the typical overlapped round rather than the near-empty
#: boundary rounds a skewed time-window stream produces.
PIPELINE_BATCH = 4096


def run_sharded(base, log, *, trigger, executor="serial", pipeline=False,
                rebalance=None, obs=None):
    with StreamRuntime(
        NearestNeighborAssigner(), None, trigger, base, log,
        patience_hours=6.0, shards=CLUSTERS, executor=executor,
        pipeline=pipeline, rebalance=rebalance, obs=obs,
    ) as runtime:
        return runtime.run()


def sorted_pairs(result):
    return sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )


def latency_columns(label, summary):
    return (
        f"{label} p50 {summary.round_latency_p50 * 1e3:.2f} ms / "
        f"p99 {summary.round_latency_p99 * 1e3:.2f} ms"
    )


def summary_payload(summary):
    """The artifact-worthy slice of a stream summary."""
    return {
        "rounds": summary.rounds,
        "assigned": summary.assigned,
        "events_per_second": summary.events_per_second,
        "round_latency_p50_s": summary.round_latency_p50,
        "round_latency_p99_s": summary.round_latency_p99,
        "task_wait_p50_h": summary.task_wait_p50,
    }


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_pipelined_vs_serial_rounds(benchmark, rate_factor):
    """The tentpole column: overlapped per-shard prepare+solve vs serial."""
    base, log = make_clustered_stream(rate_factor)
    serial = run_sharded(base, log, trigger=CountTrigger(PIPELINE_BATCH))
    pipelined = benchmark.pedantic(
        lambda: run_sharded(base, log, trigger=CountTrigger(PIPELINE_BATCH),
                            executor="thread", pipeline=True),
        rounds=1, iterations=1,
    )

    assert sorted_pairs(pipelined) == sorted_pairs(serial)
    assert [r.assigned for r in pipelined.rounds] == [
        r.assigned for r in serial.rounds
    ]

    serial_summary = serial.summary()
    pipelined_summary = pipelined.summary()
    speedup = (
        serial_summary.round_latency_p50 / pipelined_summary.round_latency_p50
        if pipelined_summary.round_latency_p50 > 0 else float("inf")
    )
    phases = pipelined.metrics.phase_totals()
    print(
        f"\n{rate_factor:>3}x rate, {CLUSTERS} shards: "
        f"{latency_columns('serial', serial_summary)}, "
        f"{latency_columns('pipelined', pipelined_summary)} "
        f"({speedup:.2f}x); pipelined phases (s) "
        + "  ".join(f"{name} {seconds:.2f}" for name, seconds in phases.items())
    )
    assert phases["prepare"] > 0.0 and phases["solve"] > 0.0
    bench_artifact(
        f"stream_pipelined_{rate_factor}x",
        {"rate_factor": rate_factor, "bench_scale": BENCH_SCALE,
         "speedup": speedup, "serial": summary_payload(serial_summary),
         "pipelined": summary_payload(pipelined_summary)},
    )
    if BENCH_SCALE >= 0.15 and rate_factor >= 100:
        assert speedup >= 1.3, (
            f"pipelined round latency regressed: {speedup:.2f}x < 1.3x"
        )


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_shared_process_vs_thread_rounds(benchmark, rate_factor):
    """Fork-once shared-memory process workers vs the GIL-bound thread pool.

    The process backend publishes the event log's payload slabs once and
    ships per-round shard rectangles through reusable shared scratch, so
    CPU-bound solves parallelise across cores instead of serialising on
    the GIL.  Exactness against the thread backend is always asserted;
    the p50 floor only arms on multi-core machines at full bench scale
    (a single-core runner has no parallel speedup to measure).
    """
    base, log = make_clustered_stream(rate_factor)
    threaded = run_sharded(
        base, log, trigger=CountTrigger(PIPELINE_BATCH), executor="thread"
    )
    shared = benchmark.pedantic(
        lambda: run_sharded(base, log, trigger=CountTrigger(PIPELINE_BATCH),
                            executor="process"),
        rounds=1, iterations=1,
    )

    assert sorted_pairs(shared) == sorted_pairs(threaded)
    assert [r.assigned for r in shared.rounds] == [
        r.assigned for r in threaded.rounds
    ]

    thread_summary = threaded.summary()
    shared_summary = shared.summary()
    speedup = (
        thread_summary.round_latency_p50 / shared_summary.round_latency_p50
        if shared_summary.round_latency_p50 > 0 else float("inf")
    )
    cores = os.cpu_count() or 1
    print(
        f"\n{rate_factor:>3}x rate, {CLUSTERS} shards, {cores} cores: "
        f"{latency_columns('thread', thread_summary)}, "
        f"{latency_columns('shared-process', shared_summary)} "
        f"({speedup:.2f}x)"
    )
    if BENCH_SCALE >= 0.15 and rate_factor >= 100 and cores >= 2:
        assert speedup >= 1.1, (
            f"shared-memory process rounds failed to beat threads: "
            f"{speedup:.2f}x < 1.1x"
        )


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_rebalance_on_vs_off(benchmark, rate_factor):
    """The EWMA repacker: identical output, no round-latency regression."""
    base, log = make_clustered_stream(rate_factor)
    off = run_sharded(base, log, trigger=TimeWindowTrigger(2.0))
    on = benchmark.pedantic(
        lambda: run_sharded(base, log, trigger=TimeWindowTrigger(2.0),
                            rebalance=ShardRebalancer(interval=8)),
        rounds=1, iterations=1,
    )

    assert sorted_pairs(on) == sorted_pairs(off)
    off_summary = off.summary()
    on_summary = on.summary()
    print(
        f"\n{rate_factor:>3}x rate, {CLUSTERS} shards: "
        f"{latency_columns('rebalance-off', off_summary)}, "
        f"{latency_columns('rebalance-on', on_summary)}; "
        f"{on.metrics.total_repacks} repacks"
    )
    assert on_summary.assigned == off_summary.assigned > 0


class SubstrateDistanceAssigner(LexicographicCostAssigner):
    """Tie-free distance-cost lexicographic assigner on the substrate engine.

    Continuous pairwise distances make the optimum unique, so warm and cold
    runs must return identical pairs (not just equal objectives).  Both
    sides of the warm column pin ``engine="substrate"`` — the only
    carry-capable engine — so the measured ratio isolates the warm-start
    mechanism from engine selection.  Module-level for pickling.
    """

    name = "DistLex"

    def __init__(self):
        super().__init__(engine="substrate")

    def edge_costs(self, prepared):
        return prepared.feasible.distance_km


#: District geometry for the warm column (mirrors the flow-level bench):
#: every city pairs a worker-surplus district with a task-surplus district
#: farther apart than any worker's reach.  The surpluses survive in place
#: round after round — the retired-pair carry the warm solver prunes.
#: Uniform worlds like ``make_clustered_stream`` clear their scarce side
#: every round, leaving no carry for warm starts to exploit.
DISTRICT_GAP_KM = 12.0
DISTRICT_REACH_KM = 5.0


def make_district_stream(rate_factor: int, seed: int = 37):
    rng = np.random.default_rng(seed)
    num_workers = max(int(PAPER_DAY_WORKERS * rate_factor * BENCH_SCALE), 80)
    num_tasks = max(int(PAPER_DAY_TASKS * rate_factor * BENCH_SCALE), 80)
    events = []
    for worker_id in range(num_workers):
        city_x = 80.0 * (worker_id % CLUSTERS)
        offset = 0.0 if rng.random() < 0.85 else DISTRICT_GAP_KM
        location = Point(
            city_x + offset + float(rng.normal(0.0, 1.5)),
            float(rng.normal(0.0, 1.5)),
        )
        events.append(WorkerArrivalEvent(
            time=float(rng.uniform(0.0, 24.0)),
            worker=Worker(
                worker_id=worker_id, location=location,
                reachable_km=DISTRICT_REACH_KM,
            ),
        ))
    tasks = []
    for task_id in range(num_tasks):
        city_x = 80.0 * (task_id % CLUSTERS)
        offset = DISTRICT_GAP_KM if rng.random() < 0.85 else 0.0
        tasks.append(Task(
            task_id=task_id,
            location=Point(
                city_x + offset + float(rng.normal(0.0, 1.5)),
                float(rng.normal(0.0, 1.5)),
            ),
            publication_time=float(rng.uniform(0.0, 24.0)),
            valid_hours=4.0,
        ))
    events.extend(TaskPublishEvent(time=t.publication_time, task=t) for t in tasks)
    events.extend(expiry_events(tasks))
    base = SCInstance(
        name="district-stream", current_time=0.0, tasks=[], workers=[],
        histories={}, social_edges=[],
        all_worker_ids=tuple(range(num_workers)),
    )
    return base, EventLog(events)


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_warm_vs_cold_rounds(benchmark, rate_factor):
    """The warm column: carried duals + retired-pair pruning per shard.

    Warm and cold runs must be bit-identical — pairs and per-round
    assigned counts — before any timing claim; the column then compares
    the p50 of per-round solve time.  The floor arms where the carry is
    meaningful: default scale and the 100x rate, whose per-shard pools
    hold hundreds of surviving entities between rounds.
    """
    base, log = make_district_stream(rate_factor)

    def run(warm):
        with StreamRuntime(
            SubstrateDistanceAssigner(), None, CountTrigger(PIPELINE_BATCH),
            base, log, patience_hours=6.0, shards=CLUSTERS, warm=warm,
        ) as runtime:
            return runtime.run()

    cold = run(False)
    warm = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)

    assert sorted_pairs(warm) == sorted_pairs(cold)
    assert [r.assigned for r in warm.rounds] == [
        r.assigned for r in cold.rounds
    ]

    cold_p50 = float(np.percentile([r.solve_seconds for r in cold.rounds], 50))
    warm_p50 = float(np.percentile([r.solve_seconds for r in warm.rounds], 50))
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
    print(
        f"\n{rate_factor:>3}x rate, {CLUSTERS} shards: "
        f"cold solve p50 {cold_p50 * 1e3:.2f} ms, "
        f"warm solve p50 {warm_p50 * 1e3:.2f} ms ({speedup:.2f}x), "
        f"{warm.summary().rounds} rounds, {warm.total_assigned} assigned"
    )
    bench_artifact(
        f"stream_warm_{rate_factor}x",
        {"rate_factor": rate_factor, "bench_scale": BENCH_SCALE,
         "solve_p50_cold_s": cold_p50, "solve_p50_warm_s": warm_p50,
         "speedup": speedup, "cold": summary_payload(cold.summary()),
         "warm": summary_payload(warm.summary())},
    )
    if BENCH_SCALE >= 0.15 and rate_factor >= 100:
        assert speedup >= 1.3, (
            f"warm-started round solves regressed: {speedup:.2f}x < 1.3x"
        )


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_obs_on_vs_off_rounds(benchmark, rate_factor):
    """Full telemetry (registry + tracer) vs the inert default.

    Output must be bit-identical — the telemetry layer only reads values
    the runtime already computed — and the round-p50 overhead must stay
    under 5 %.  The overhead is measured on the raw per-round seconds (not
    the histogram-quantized summary, whose ~3.7 % bucket error would eat
    most of the budget).
    """
    base, log = make_clustered_stream(rate_factor)
    off = run_sharded(base, log, trigger=CountTrigger(PIPELINE_BATCH),
                      executor="thread", pipeline=True)
    obs = Observability(registry=MetricsRegistry(), tracer=Tracer())
    on = benchmark.pedantic(
        lambda: run_sharded(base, log, trigger=CountTrigger(PIPELINE_BATCH),
                            executor="thread", pipeline=True, obs=obs),
        rounds=1, iterations=1,
    )

    assert sorted_pairs(on) == sorted_pairs(off)
    assert [r.assigned for r in on.rounds] == [r.assigned for r in off.rounds]
    # The sinks actually captured the run.
    assert any(f.name == "repro_stream_rounds_total"
               for f in obs.registry.families())
    assert any(e["ph"] == "X" for e in obs.tracer.events())

    off_p50 = float(np.percentile([r.round_seconds for r in off.rounds], 50))
    on_p50 = float(np.percentile([r.round_seconds for r in on.rounds], 50))
    overhead = on_p50 / off_p50 - 1.0 if off_p50 > 0 else 0.0
    print(
        f"\n{rate_factor:>3}x rate, {CLUSTERS} shards: "
        f"obs-off p50 {off_p50 * 1e3:.2f} ms, "
        f"obs-on p50 {on_p50 * 1e3:.2f} ms "
        f"({overhead * 100:+.1f}% overhead, "
        f"{len(obs.tracer.events())} trace events)"
    )
    bench_artifact(
        f"stream_obs_overhead_{rate_factor}x",
        {"rate_factor": rate_factor, "bench_scale": BENCH_SCALE,
         "round_p50_off_s": off_p50, "round_p50_on_s": on_p50,
         "overhead": overhead, "trace_events": len(obs.tracer.events())},
    )
    if BENCH_SCALE >= 0.15 and rate_factor >= 100:
        assert overhead < 0.05, (
            f"telemetry overhead regressed: {overhead * 100:.1f}% >= 5%"
        )


def test_stream_matches_online_simulator(benchmark):
    """Equivalence configuration at bench scale: same pairs, same rounds."""
    base, log = make_stream(10, seed=23)
    arrivals = [
        WorkerArrival(worker=event.worker, arrival_time=event.time)
        for event in log
        if type(event).__name__ == "WorkerArrivalEvent"
    ]
    tasks = [
        event.task for event in log if type(event).__name__ == "TaskPublishEvent"
    ]
    instance = base.with_tasks(tasks)
    online = OnlineSimulator(NearestNeighborAssigner(), None, batch_hours=1.0).run(
        instance, arrivals
    )
    runtime = StreamRuntime(
        NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base,
        log_from_arrivals(arrivals, tasks),
    )
    result = benchmark.pedantic(runtime.run, rounds=1, iterations=1)
    stream_pairs = sorted(
        (p.worker.worker_id, p.task.task_id) for p in result.assignment.pairs
    )
    online_pairs = sorted(
        (p.worker.worker_id, p.task.task_id) for p in online.assignment.pairs
    )
    print(
        f"\nequivalence: {len(stream_pairs)} pairs, "
        f"{len(result.rounds)} rounds (online {len(online.steps)})"
    )
    assert stream_pairs == online_pairs
    assert [s.assigned for s in online.steps] == [r.assigned for r in result.rounds]
