"""Figure 7: Average Influence of the ablations as the valid time ϕ varies.

Paper shape: AI "changes randomly" with ϕ (no monotone trend) while IA
remains on top of its ablations.
"""

from figutil import check_ablation_shapes, run_and_print_ablation


def test_fig7_effect_of_validtime_on_ai(benchmark, both_runners_day_end):
    def run():
        return run_and_print_ablation(
            both_runners_day_end,
            "valid_hours",
            lambda runner: runner.settings.valid_hours_sweep,
            figure="Fig.7",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_ablation_shapes(results)
