"""Scale bench: peak RSS of segmented vs materialized horizon replay.

The point of :class:`~repro.stream.SegmentedEventLog` is that replay
memory is bounded by the *segment window*, not the *horizon length*: the
30-day horizon should stream through the runtime holding roughly two
days of events, while the materialized log holds all thirty.  This bench
measures exactly that — each (horizon, mode) cell runs in its own child
process (``ru_maxrss`` is a process-lifetime maximum, so in-process
before/after sampling cannot isolate a single replay) and reports

* **events/sec** of the full replay;
* **peak RSS** of the child process;
* a **digest** over the assignment pairs and per-round counts, so the
  parent can assert the segmented replay is bit-identical to the
  materialized one at every horizon.

Two properties are asserted:

* exactness — segmented digest == materialized digest at both horizons;
* sub-linear memory — growing the horizon 10x (3 -> 30 days) grows the
  segmented replay's peak RSS by at most half of what it adds to the
  materialized replay's, and the segmented long-horizon run stays below
  the materialized one outright.

Each day of the horizon is an *independent* one-day synthetic world
(day-offset entity ids, day-shifted times), so the segmented log can
synthesize day ``d`` lazily without replaying days ``0..d-1`` — the
same contract ``--segment-days`` relies on.  The materialized baseline
is ``materialize()`` of the very same segments, which guarantees both
modes replay the identical world.

``REPRO_BENCH_SCALE`` scales per-day volumes like the other benches
(default 0.15; CI smoke runs 0.05).
"""

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import replace
from functools import partial
from pathlib import Path

HERE = Path(__file__).resolve()
REPO = HERE.parent.parent

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

PAPER_DAY_WORKERS = 2000
PAPER_DAY_TASKS = 2500

#: Short and long horizons (days).  Sub-linearity is asserted on the
#: *delta* between them, which cancels the interpreter baseline RSS.
DAYS_SHORT = 3
DAYS_LONG = 30

CLUSTERS = 4
SEED = 37

#: Entity-id stride between days — day ``d`` owns ids ``[d*stride,
#: (d+1)*stride)`` so re-used synthetic ids never collide across days.
DAY_ID_STRIDE = 1_000_000


def day_volume():
    """Per-day arrival volumes, bench-scaled and deliberately
    worker-scarce (1:5): assignment pairs are retained for the whole run
    by ``StreamResult`` in *both* modes, so most tasks must expire
    unassigned for the peak-RSS comparison to stay about the log."""
    workers = max(int(PAPER_DAY_WORKERS * 4 * BENCH_SCALE), 400)
    tasks = max(int(PAPER_DAY_TASKS * 16 * BENCH_SCALE), 2000)
    return workers, tasks


def day_world(day):
    """The raw (instance, log) of day ``day``, times still in [0, 24)."""
    from repro.stream import synthetic_stream

    workers, tasks = day_volume()
    return synthetic_stream(
        num_workers=workers,
        num_tasks=tasks,
        # 18h of arrivals + 4h validity keeps every expiry below t=22, so
        # the day fits strictly inside its 24h segment window.  Synthetic
        # churn is off: churn delays can land past the day's end (the
        # runtime's patience_hours retires idle workers instead).
        duration_hours=18.0,
        area_km=25.0,
        valid_hours=4.0,
        reachable_km=10.0,
        churn_fraction=0.0,
        cancel_fraction=0.02,
        clusters=CLUSTERS,
        seed=SEED + day,
    )


def build_day(day):
    """Deterministic builder for segment ``day``: day-shifted, id-offset."""
    from repro.stream import EventLog

    _, log = day_world(day)
    if day == 0:
        return log
    hours = 24.0 * day
    offset = day * DAY_ID_STRIDE
    columns = log.columns
    workers = [
        replace(worker, worker_id=worker.worker_id + offset)
        for worker in log._workers
    ]
    tasks = [
        replace(
            task,
            task_id=task.task_id + offset,
            publication_time=task.publication_time + hours,
        )
        for task in log._tasks
    ]
    return EventLog.from_columns(
        columns["time"] + hours,
        columns["kind"],
        columns["entity_id"] + offset,
        payload=columns["payload"],
        workers=workers,
        tasks=tasks,
        x=columns["x"],
        y=columns["y"],
    )


def make_segmented(days, max_cached=2):
    from repro.stream import SegmentedEventLog

    return SegmentedEventLog(
        [partial(build_day, day) for day in range(days)],
        [24.0 * day for day in range(days)],
        max_cached=max_cached,
    )


def child_main(days, mode):
    """Run one (horizon, mode) replay and print a JSON measurement line."""
    import gc
    import resource

    from repro.assignment import NearestNeighborAssigner
    from repro.stream import StreamRuntime, TimeWindowTrigger

    base, _ = day_world(0)
    log = make_segmented(days)
    if mode == "materialized":
        log = log.materialize()
        gc.collect()
    events = len(log)

    # incremental=False: the incremental round cache registers every
    # worker/task id it ever sees and regrows its (rows x cols) matrices
    # accordingly — over a multi-day horizon that dwarfs the event log in
    # both modes and would drown the signal this bench isolates.
    runtime = StreamRuntime(
        NearestNeighborAssigner(), None, TimeWindowTrigger(1.0), base, log,
        patience_hours=8.0, incremental=False,
    )
    started = time.perf_counter()
    try:
        result = runtime.run()
    finally:
        runtime.close()
    elapsed = time.perf_counter() - started

    pairs = sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )
    counts = [
        [record.assigned, record.expired_tasks, record.cancelled_tasks,
         record.churned_workers]
        for record in result.rounds
    ]
    digest = hashlib.sha256(
        json.dumps([pairs, counts], sort_keys=True).encode()
    ).hexdigest()

    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes there, KiB on Linux
        rss_kb //= 1024
    print(json.dumps({
        "days": days,
        "mode": mode,
        "events": events,
        "rounds": len(result.rounds),
        "assigned": result.total_assigned,
        "seconds": elapsed,
        "events_per_second": events / elapsed if elapsed > 0 else 0.0,
        "rss_kb": int(rss_kb),
        "digest": digest,
    }))


def measure(days, mode):
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [sys.executable, str(HERE), str(days), mode],
        env=env, timeout=1800,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    assert completed.returncode == 0, (
        f"{mode} child for {days} days failed:\n{completed.stderr}"
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_segmented_memory_is_sublinear_in_horizon(benchmark):
    """Peak RSS vs horizon length, segmented against materialized."""
    from figutil import bench_artifact

    cells = {}

    def run_grid():
        for days in (DAYS_SHORT, DAYS_LONG):
            for mode in ("materialized", "segmented"):
                cells[(days, mode)] = measure(days, mode)
        return cells

    benchmark.pedantic(run_grid, rounds=1, iterations=1)

    for days in (DAYS_SHORT, DAYS_LONG):
        seg, mat = cells[(days, "segmented")], cells[(days, "materialized")]
        assert seg["digest"] == mat["digest"], (
            f"segmented replay diverged from materialized at {days} days"
        )
        assert seg["events"] == mat["events"]
        print(
            f"\n{days} days, {mat['events']:>6} events: "
            f"materialized {mat['rss_kb'] / 1024:.1f} MiB peak "
            f"({mat['events_per_second']:,.0f} ev/s) | "
            f"segmented {seg['rss_kb'] / 1024:.1f} MiB peak "
            f"({seg['events_per_second']:,.0f} ev/s)"
        )

    mat_delta = (
        cells[(DAYS_LONG, "materialized")]["rss_kb"]
        - cells[(DAYS_SHORT, "materialized")]["rss_kb"]
    )
    seg_delta = (
        cells[(DAYS_LONG, "segmented")]["rss_kb"]
        - cells[(DAYS_SHORT, "segmented")]["rss_kb"]
    )
    print(
        f"horizon {DAYS_SHORT} -> {DAYS_LONG} days adds "
        f"{mat_delta / 1024:.1f} MiB materialized vs "
        f"{seg_delta / 1024:.1f} MiB segmented"
    )
    assert mat_delta > 0, "materialized RSS did not grow with the horizon"
    assert (
        cells[(DAYS_LONG, "segmented")]["rss_kb"]
        < cells[(DAYS_LONG, "materialized")]["rss_kb"]
    ), "segmented replay should peak below the materialized log"
    assert seg_delta <= 0.5 * mat_delta, (
        f"segmented RSS grew {seg_delta} KiB over {DAYS_LONG - DAYS_SHORT} "
        f"extra days — more than half the materialized growth {mat_delta} KiB"
    )

    bench_artifact("stream_scale", {
        "scale": BENCH_SCALE,
        "horizons_days": [DAYS_SHORT, DAYS_LONG],
        "cells": {
            f"d{days}_{mode}": cells[(days, mode)]
            for days in (DAYS_SHORT, DAYS_LONG)
            for mode in ("materialized", "segmented")
        },
        "rss_delta_kb": {"materialized": mat_delta, "segmented": seg_delta},
    })


if __name__ == "__main__":
    child_main(int(sys.argv[1]), sys.argv[2])
