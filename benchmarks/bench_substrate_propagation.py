"""Substrate bench: RRR sampling and RPO vs plain Monte-Carlo estimation.

Design-choice ablation from DESIGN.md §5: the RPO/RRR estimator amortizes
one sampling pass over *all* sources, whereas Monte-Carlo IC needs a full
simulation batch per source worker — the gap grows linearly with |W|.
The bench also verifies the two estimators agree (Lemma 2).
"""

import networkx as nx
import numpy as np
import pytest

from repro.propagation import (
    RPO,
    RRRCollection,
    SocialGraph,
    estimate_informed_probabilities,
    sample_rrr_sets,
    sample_rrr_sets_batched,
)


def make_graph(num_nodes: int, seed: int = 3) -> SocialGraph:
    g = nx.barabasi_albert_graph(num_nodes, 2, seed=seed)
    return SocialGraph(range(num_nodes), list(g.edges()))


@pytest.mark.parametrize("num_nodes", [200, 800])
def test_rrr_sampling_rate(benchmark, num_nodes):
    graph = make_graph(num_nodes)
    rng = np.random.default_rng(0)
    roots, members = benchmark.pedantic(
        lambda: sample_rrr_sets(graph, 5000, rng), rounds=1, iterations=1
    )
    assert len(members) == 5000


@pytest.mark.parametrize("num_nodes", [200, 800])
def test_rrr_sampling_rate_flat(benchmark, num_nodes):
    """The zero-copy flat-CSR path: sampler output feeds extend_flat with no
    per-set list materialization at all."""
    graph = make_graph(num_nodes)
    rng = np.random.default_rng(0)

    def run():
        collection = RRRCollection(num_workers=graph.num_workers)
        collection.extend_flat(*sample_rrr_sets_batched(graph, 5000, rng))
        return collection

    collection = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(collection) == 5000


def test_rpo_full_run(benchmark):
    graph = make_graph(400)
    result = benchmark.pedantic(
        lambda: RPO(epsilon=0.2, max_sets=60_000, seed=1).run(graph),
        rounds=1, iterations=1,
    )
    print(
        f"\nRPO: {len(result.collection)} sets, k_used={result.k_used}, "
        f"sigma_lb={result.sigma_lower_bound:.2f}, truncated={result.truncated}"
    )
    assert len(result.collection) > 0


def test_monte_carlo_per_source_cost(benchmark):
    """The per-source cost RPO avoids: one MC batch for ONE source."""
    graph = make_graph(400)
    probs = benchmark.pedantic(
        lambda: estimate_informed_probabilities(graph, 0, runs=2000, seed=2),
        rounds=1, iterations=1,
    )
    assert probs[0] == 1.0


def test_rpo_agrees_with_monte_carlo(benchmark):
    """Accuracy cross-check on a small graph, timed end-to-end."""
    graph = make_graph(60)

    def run():
        collection = RRRCollection(num_workers=graph.num_workers)
        rng = np.random.default_rng(5)
        collection.extend_flat(*sample_rrr_sets_batched(graph, 60_000, rng))
        return collection

    collection = benchmark.pedantic(run, rounds=1, iterations=1)
    source = 0
    mc = estimate_informed_probabilities(graph, source, runs=20_000, seed=6)
    rrr = collection.ppro_matrix_row(source)
    errors = np.abs(rrr - mc)[1:]  # skip the self entry
    print(f"\nmax |RRR - MC| over targets: {errors.max():.4f}")
    assert errors.max() < 0.06


def test_stamp_array_no_regression(benchmark):
    """The preallocated stamp-bitmap visited set vs the sorted-merge
    fallback: identical output (bit-for-bit, same RNG consumption) and no
    performance regression on a dense burst."""
    import time

    import repro.propagation.rrr as rrr_module

    graph = make_graph(800)

    def sample(seed=0):
        return sample_rrr_sets_batched(graph, 5000, np.random.default_rng(seed))

    stamp_result = benchmark.pedantic(sample, rounds=1, iterations=1)

    def best_of(repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            result = sample()
            best = min(best, time.perf_counter() - started)
        return result, best

    _, stamp_seconds = best_of()
    saved_limit = rrr_module.STAMP_ARRAY_LIMIT
    rrr_module.STAMP_ARRAY_LIMIT = 0
    try:
        merge_result, merge_seconds = best_of()
    finally:
        rrr_module.STAMP_ARRAY_LIMIT = saved_limit

    for stamp_array, merge_array in zip(stamp_result, merge_result):
        np.testing.assert_array_equal(stamp_array, merge_array)
    print(
        f"\nstamp {stamp_seconds * 1e3:.1f} ms vs sorted-merge "
        f"{merge_seconds * 1e3:.1f} ms ({merge_seconds / stamp_seconds:.2f}x)"
    )
    # Best-of-3 timings plus a generous margin keep this meaningful as a
    # tripwire against catastrophic regressions without flaking on noisy
    # shared CI runners (the real speedup is modest, ~1.1x on dense bursts).
    assert stamp_seconds <= merge_seconds * 2.0
