"""Substrate bench: RRR sampling and RPO vs plain Monte-Carlo estimation.

Design-choice ablation from DESIGN.md §5: the RPO/RRR estimator amortizes
one sampling pass over *all* sources, whereas Monte-Carlo IC needs a full
simulation batch per source worker — the gap grows linearly with |W|.
The bench also verifies the two estimators agree (Lemma 2).
"""

import networkx as nx
import numpy as np
import pytest

from repro.propagation import (
    RPO,
    RRRCollection,
    SocialGraph,
    estimate_informed_probabilities,
    sample_rrr_sets,
    sample_rrr_sets_batched,
)


def make_graph(num_nodes: int, seed: int = 3) -> SocialGraph:
    g = nx.barabasi_albert_graph(num_nodes, 2, seed=seed)
    return SocialGraph(range(num_nodes), list(g.edges()))


@pytest.mark.parametrize("num_nodes", [200, 800])
def test_rrr_sampling_rate(benchmark, num_nodes):
    graph = make_graph(num_nodes)
    rng = np.random.default_rng(0)
    roots, members = benchmark.pedantic(
        lambda: sample_rrr_sets(graph, 5000, rng), rounds=1, iterations=1
    )
    assert len(members) == 5000


@pytest.mark.parametrize("num_nodes", [200, 800])
def test_rrr_sampling_rate_flat(benchmark, num_nodes):
    """The zero-copy flat-CSR path: sampler output feeds extend_flat with no
    per-set list materialization at all."""
    graph = make_graph(num_nodes)
    rng = np.random.default_rng(0)

    def run():
        collection = RRRCollection(num_workers=graph.num_workers)
        collection.extend_flat(*sample_rrr_sets_batched(graph, 5000, rng))
        return collection

    collection = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(collection) == 5000


def test_rpo_full_run(benchmark):
    graph = make_graph(400)
    result = benchmark.pedantic(
        lambda: RPO(epsilon=0.2, max_sets=60_000, seed=1).run(graph),
        rounds=1, iterations=1,
    )
    print(
        f"\nRPO: {len(result.collection)} sets, k_used={result.k_used}, "
        f"sigma_lb={result.sigma_lower_bound:.2f}, truncated={result.truncated}"
    )
    assert len(result.collection) > 0


def test_monte_carlo_per_source_cost(benchmark):
    """The per-source cost RPO avoids: one MC batch for ONE source."""
    graph = make_graph(400)
    probs = benchmark.pedantic(
        lambda: estimate_informed_probabilities(graph, 0, runs=2000, seed=2),
        rounds=1, iterations=1,
    )
    assert probs[0] == 1.0


def test_rpo_agrees_with_monte_carlo(benchmark):
    """Accuracy cross-check on a small graph, timed end-to-end."""
    graph = make_graph(60)

    def run():
        collection = RRRCollection(num_workers=graph.num_workers)
        rng = np.random.default_rng(5)
        collection.extend_flat(*sample_rrr_sets_batched(graph, 60_000, rng))
        return collection

    collection = benchmark.pedantic(run, rounds=1, iterations=1)
    source = 0
    mc = estimate_informed_probabilities(graph, source, runs=20_000, seed=6)
    rrr = collection.ppro_matrix_row(source)
    errors = np.abs(rrr - mc)[1:]  # skip the self entry
    print(f"\nmax |RRR - MC| over targets: {errors.max():.4f}")
    assert errors.max() < 0.06


def _simulate_lt_batched_insert(graph, seed_indices, rng):
    """The pre-refactor LT engine: per-level ``np.insert`` accumulator
    rebuilds.  Embedded as the baseline the ping-pong merge accumulator is
    asserted bit-identical to (same RNG consumption) and not slower than."""
    from repro.propagation.rrr import merge_sorted, not_in_sorted

    seeds = np.asarray(seed_indices, dtype=np.int64)
    count = len(seeds)
    n = graph.num_workers
    out_indptr, out_flat, out_probs = graph.out_csr()

    informed = np.arange(count, dtype=np.int64) * n + seeds
    frontier_runs = np.arange(count, dtype=np.int64)
    frontier_nodes = seeds
    acc_keys = np.zeros(0, dtype=np.int64)
    acc_weight = np.zeros(0)
    acc_threshold = np.zeros(0)

    while frontier_nodes.size:
        starts = out_indptr[frontier_nodes]
        lengths = out_indptr[frontier_nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        offsets = np.cumsum(lengths) - lengths
        arc_pos = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        keys = np.repeat(frontier_runs, lengths) * n + out_flat[arc_pos]
        weights = out_probs[arc_pos]

        keep = not_in_sorted(informed, keys)
        keys, weights = keys[keep], weights[keep]
        if keys.size == 0:
            break
        order = np.argsort(keys)
        keys, weights = keys[order], weights[order]
        boundary = np.concatenate(([True], keys[1:] != keys[:-1]))
        unique_keys = keys[boundary]
        sums = np.add.reduceat(weights, np.nonzero(boundary)[0])

        new_mask = not_in_sorted(acc_keys, unique_keys)
        existing = np.searchsorted(acc_keys, unique_keys[~new_mask])
        acc_weight[existing] += sums[~new_mask]
        insert_at = np.searchsorted(acc_keys, unique_keys[new_mask])
        acc_keys = np.insert(acc_keys, insert_at, unique_keys[new_mask])
        acc_weight = np.insert(acc_weight, insert_at, sums[new_mask])
        acc_threshold = np.insert(
            acc_threshold, insert_at, rng.random(int(new_mask.sum()))
        )

        touched = np.searchsorted(acc_keys, unique_keys)
        crossed = acc_weight[touched] >= acc_threshold[touched]
        newly = unique_keys[crossed]
        if newly.size == 0:
            break
        retain = np.ones(len(acc_keys), dtype=bool)
        retain[touched[crossed]] = False
        acc_keys, acc_weight, acc_threshold = (
            acc_keys[retain], acc_weight[retain], acc_threshold[retain]
        )
        informed = merge_sorted(informed, newly)
        frontier_runs = newly // n
        frontier_nodes = newly % n

    run_ids = informed // n
    flat = informed % n
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(run_ids, minlength=count), out=indptr[1:])
    return indptr, flat


def test_lt_accumulator_no_regression(benchmark):
    """The LT weight accumulator (dense slab, with the sorted ping-pong
    merge fallback) vs the legacy np.insert rebuild: bit-identical output
    (same RNG consumption) and no performance regression on a dense
    multi-seed burst."""
    import time

    import repro.propagation.lt as lt_module
    from repro.propagation.lt import simulate_lt_batched

    graph = make_graph(800)
    seeds = np.arange(800, dtype=np.int64).repeat(4)  # 3200 concurrent runs

    def run_current(seed=9):
        return simulate_lt_batched(graph, seeds, np.random.default_rng(seed))

    current_result = benchmark.pedantic(run_current, rounds=1, iterations=1)

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
        return result, best

    _, current_seconds = best_of(run_current)
    insert_result, insert_seconds = best_of(
        lambda: _simulate_lt_batched_insert(graph, seeds, np.random.default_rng(9))
    )
    saved_limit = lt_module.LT_SLAB_LIMIT
    lt_module.LT_SLAB_LIMIT = 0  # force the merge-accumulator fallback
    try:
        fallback_result, fallback_seconds = best_of(run_current)
    finally:
        lt_module.LT_SLAB_LIMIT = saved_limit

    for current_array, reference in zip(current_result, insert_result):
        np.testing.assert_array_equal(current_array, reference)
    for fallback_array, reference in zip(fallback_result, insert_result):
        np.testing.assert_array_equal(fallback_array, reference)
    print(
        f"\nLT slab {current_seconds * 1e3:.1f} ms vs np.insert "
        f"{insert_seconds * 1e3:.1f} ms ({insert_seconds / current_seconds:.2f}x); "
        f"merge fallback {fallback_seconds * 1e3:.1f} ms"
    )
    # Best-of-3 with a generous margin: a tripwire against reintroducing the
    # per-level O(size) rebuilds, not a flaky CI timing assertion.
    assert current_seconds <= insert_seconds * 2.0


def test_stamp_array_no_regression(benchmark):
    """The preallocated stamp-bitmap visited set vs the sorted-merge
    fallback: identical output (bit-for-bit, same RNG consumption) and no
    performance regression on a dense burst."""
    import time

    import repro.propagation.rrr as rrr_module

    graph = make_graph(800)

    def sample(seed=0):
        return sample_rrr_sets_batched(graph, 5000, np.random.default_rng(seed))

    stamp_result = benchmark.pedantic(sample, rounds=1, iterations=1)

    def best_of(repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            result = sample()
            best = min(best, time.perf_counter() - started)
        return result, best

    _, stamp_seconds = best_of()
    saved_limit = rrr_module.STAMP_ARRAY_LIMIT
    rrr_module.STAMP_ARRAY_LIMIT = 0
    try:
        merge_result, merge_seconds = best_of()
    finally:
        rrr_module.STAMP_ARRAY_LIMIT = saved_limit

    for stamp_array, merge_array in zip(stamp_result, merge_result):
        np.testing.assert_array_equal(stamp_array, merge_array)
    print(
        f"\nstamp {stamp_seconds * 1e3:.1f} ms vs sorted-merge "
        f"{merge_seconds * 1e3:.1f} ms ({merge_seconds / stamp_seconds:.2f}x)"
    )
    # Best-of-3 timings plus a generous margin keep this meaningful as a
    # tripwire against catastrophic regressions without flaking on noisy
    # shared CI runners (the real speedup is modest, ~1.1x on dense bursts).
    assert stamp_seconds <= merge_seconds * 2.0
