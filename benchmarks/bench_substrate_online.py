"""Substrate bench: online batched-arrival simulation cost vs batch size.

Smaller batches approximate instant matching but run more assignment
rounds; this bench measures the trade-off on one BK-like day with the IA
assigner and a fitted influence model.
"""

import pytest

from repro import DITAPipeline, IAAssigner, PipelineConfig
from repro.framework import OnlineSimulator, day_arrivals


@pytest.fixture(scope="module")
def online_world(bk_runner):
    day = bk_runner.days[0]
    instance = bk_runner.build_instance(day)
    config = PipelineConfig(
        num_topics=15, propagation_mode="fixed", num_rrr_sets=10_000, seed=3
    )
    influence = DITAPipeline(config).fit(instance).influence_model()
    arrivals = day_arrivals(bk_runner.dataset, day)
    return instance, arrivals, influence


@pytest.mark.parametrize("batch_hours", [0.5, 1.0, 4.0])
def test_online_batch_size(benchmark, online_world, batch_hours):
    instance, arrivals, influence = online_world
    simulator = OnlineSimulator(IAAssigner(), influence, batch_hours=batch_hours)
    result = benchmark.pedantic(
        lambda: simulator.run(instance, arrivals), rounds=1, iterations=1
    )
    print(
        f"\nbatch={batch_hours:g} h: {len(result.steps)} rounds, "
        f"{result.total_assigned} assigned, {result.total_expired} expired"
    )
    assert result.total_assigned > 0


@pytest.mark.parametrize("incremental", [True, False], ids=["incremental", "full"])
def test_online_round_preparation_cost(benchmark, online_world, incremental):
    """Incremental RoundState preparation vs per-round full recomputation:
    same assignments, lower per-round CPU."""
    instance, arrivals, influence = online_world
    simulator = OnlineSimulator(
        IAAssigner(), influence, batch_hours=1.0, incremental=incremental
    )
    result = benchmark.pedantic(
        lambda: simulator.run(instance, arrivals), rounds=1, iterations=1
    )
    print(
        f"\n{'incremental' if incremental else 'full':>11}: "
        f"{len(result.steps)} rounds, {result.total_assigned} assigned"
    )
    assert result.total_assigned > 0


def test_online_vs_single_round(benchmark, online_world):
    """The day-start single round sees every task at once; the online loop
    must stay within the same order of assignments."""
    from repro.assignment import PreparedInstance

    instance, arrivals, influence = online_world
    prepared = PreparedInstance(instance, influence)
    single = IAAssigner().assign(prepared)

    simulator = OnlineSimulator(IAAssigner(), influence, batch_hours=1.0)
    result = benchmark.pedantic(
        lambda: simulator.run(instance, arrivals), rounds=1, iterations=1
    )
    print(
        f"\nsingle-round: {len(single)} assigned; "
        f"online hourly: {result.total_assigned} assigned"
    )
    assert result.total_assigned >= len(single) * 0.3
