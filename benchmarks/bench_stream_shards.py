"""Substrate bench: sharded vs unsharded streaming rounds.

Drives :class:`~repro.stream.StreamRuntime` over *clustered* synthetic
streams (multiple cities separated by more than the worker radius — the
world shape whose rounds decompose) at 10x and 100x the paper's per-day
arrival volumes, comparing the unsharded round path against the
cell-sharded :class:`~repro.stream.ShardExecutor` with serial and
thread-pool backends.

Two things are asserted:

* **exactness** — the sharded runs produce the identical assignment pair
  set and per-round counts (the layout never splits a feasible pair), at
  every scale;
* **speedup** — at the default bench scale or above, sharded rounds are
  faster than unsharded at the 100x rate (the per-round solve is
  super-linear in pool size, so k shards of ~n/k entities win even
  serially; the assertion uses a conservative threshold to stay
  meaningful on noisy shared runners).

``REPRO_BENCH_SCALE`` scales the stream volumes like the other benches
(default 0.15; CI smoke runs 0.05; 1.0 is the full 10-100x grid).
"""

import os

import pytest

from repro.assignment import IAAssigner, NearestNeighborAssigner
from repro.stream import ShardLayout, StreamRuntime, TimeWindowTrigger, synthetic_stream

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

PAPER_DAY_WORKERS = 2000
PAPER_DAY_TASKS = 2500

#: Separated city clusters in the bench world (and the shard target).
CLUSTERS = 8


def make_clustered_stream(rate_factor: int, seed: int = 31):
    num_workers = max(int(PAPER_DAY_WORKERS * rate_factor * BENCH_SCALE), 80)
    num_tasks = max(int(PAPER_DAY_TASKS * rate_factor * BENCH_SCALE), 80)
    return synthetic_stream(
        num_workers=num_workers,
        num_tasks=num_tasks,
        duration_hours=24.0,
        area_km=25.0,
        valid_hours=4.0,
        reachable_km=10.0,
        churn_fraction=0.05,
        cancel_fraction=0.02,
        clusters=CLUSTERS,
        seed=seed,
    )


def sorted_pairs(result):
    return sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )


def run_variant(base, log, assigner, shards=None, executor="serial"):
    with StreamRuntime(
        assigner, None, TimeWindowTrigger(0.5), base, log,
        patience_hours=6.0, shards=shards, executor=executor,
    ) as runtime:
        return runtime.run()


def test_shard_layout_planning_rate(benchmark):
    """Layout planning is a per-run one-off; keep it cheap at 100x."""
    _, log = make_clustered_stream(100)
    layout = benchmark.pedantic(
        lambda: ShardLayout.plan(log, CLUSTERS), rounds=1, iterations=1
    )
    print(f"\nplanned {layout.num_shards} shards over {len(layout.cells)} cells "
          f"({len(log)} events)")
    assert layout.num_shards == CLUSTERS


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_sharded_round_speedup(benchmark, rate_factor):
    """Sharded == unsharded assignments, at lower round latency."""
    base, log = make_clustered_stream(rate_factor)
    plain = run_variant(base, log, NearestNeighborAssigner())

    sharded_serial = benchmark.pedantic(
        lambda: run_variant(base, log, NearestNeighborAssigner(),
                            shards=CLUSTERS, executor="serial"),
        rounds=1, iterations=1,
    )
    sharded_thread = run_variant(
        base, log, NearestNeighborAssigner(), shards=CLUSTERS, executor="thread"
    )

    assert sorted_pairs(sharded_serial) == sorted_pairs(plain)
    assert sorted_pairs(sharded_thread) == sorted_pairs(plain)
    assert [r.assigned for r in sharded_serial.rounds] == [
        r.assigned for r in plain.rounds
    ]

    plain_summary = plain.summary()
    serial_summary = sharded_serial.summary()
    thread_summary = sharded_thread.summary()
    speedup_serial = (
        plain_summary.round_latency_p50 / serial_summary.round_latency_p50
        if serial_summary.round_latency_p50 > 0 else float("inf")
    )
    speedup_thread = (
        plain_summary.round_latency_p50 / thread_summary.round_latency_p50
        if thread_summary.round_latency_p50 > 0 else float("inf")
    )
    print(
        f"\n{rate_factor:>3}x rate, {CLUSTERS} shards: round p50/p99 "
        f"unsharded {plain_summary.round_latency_p50 * 1e3:.2f}/"
        f"{plain_summary.round_latency_p99 * 1e3:.2f} ms, "
        f"serial {serial_summary.round_latency_p50 * 1e3:.2f}/"
        f"{serial_summary.round_latency_p99 * 1e3:.2f} ms "
        f"({speedup_serial:.2f}x), "
        f"thread {thread_summary.round_latency_p50 * 1e3:.2f}/"
        f"{thread_summary.round_latency_p99 * 1e3:.2f} ms "
        f"({speedup_thread:.2f}x)"
    )
    if BENCH_SCALE >= 0.15 and rate_factor >= 100:
        assert speedup_serial >= 1.5, (
            f"sharded round latency regressed: {speedup_serial:.2f}x < 1.5x"
        )


def test_sharded_flow_assigner(benchmark):
    """The IA (min-cost-flow) assigner decomposes exactly too."""
    base, log = make_clustered_stream(10)
    plain = run_variant(base, log, IAAssigner())
    sharded = benchmark.pedantic(
        lambda: run_variant(base, log, IAAssigner(), shards=CLUSTERS),
        rounds=1, iterations=1,
    )
    assert sorted_pairs(sharded) == sorted_pairs(plain)
    plain_summary = plain.summary()
    sharded_summary = sharded.summary()
    print(
        f"\nIA 10x: unsharded p50 {plain_summary.round_latency_p50 * 1e3:.2f} ms, "
        f"sharded p50 {sharded_summary.round_latency_p50 * 1e3:.2f} ms"
    )
    assert sharded_summary.assigned == plain_summary.assigned > 0
