"""Substrate bench: greedy RIS seed selection and LT vs IC sampling.

Extension benches: CELF seed selection cost on growing RRR collections, and
the relative cost of sampling reverse-reachable sets under IC (tree-shaped
reverse BFS) vs LT (single-in-arc walks — much cheaper per set).
"""

import numpy as np
import pytest

from repro.propagation import (
    RRRCollection,
    SocialGraph,
    sample_lt_rrr_sets,
    sample_rrr_sets,
    select_seeds,
)


def make_graph(num_workers: int, num_edges: int, seed: int = 0) -> SocialGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    # Preferential-attachment-flavoured random edges: bias toward low ids.
    while len(edges) < num_edges:
        a = int(rng.integers(num_workers))
        b = int(rng.zipf(1.8)) % num_workers
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return SocialGraph(range(num_workers), edges)


@pytest.mark.parametrize("num_sets", [5_000, 20_000])
def test_celf_seed_selection(benchmark, num_sets):
    graph = make_graph(800, 2400)
    rng = np.random.default_rng(1)
    collection = RRRCollection(num_workers=graph.num_workers)
    roots, members = sample_rrr_sets(graph, num_sets, rng)
    collection.extend(roots, members)

    result = benchmark.pedantic(
        lambda: select_seeds(collection, 50), rounds=1, iterations=1
    )
    assert len(result.seeds) == 50
    print(f"\n{num_sets} sets -> spread({len(result.seeds)} seeds) = {result.estimated_spread:.1f}")


@pytest.mark.parametrize("model", ["ic", "lt"])
def test_rrr_sampling_model(benchmark, model):
    graph = make_graph(800, 2400)
    rng = np.random.default_rng(2)
    sampler = sample_rrr_sets if model == "ic" else sample_lt_rrr_sets

    roots, members = benchmark.pedantic(
        lambda: sampler(graph, 10_000, rng), rounds=1, iterations=1
    )
    assert len(members) == 10_000
    mean_size = sum(len(m) for m in members) / len(members)
    print(f"\n{model}: mean RRR set size = {mean_size:.2f}")
