"""Shared benchmark fixtures: the two synthetic worlds and their runners.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.15 — sweeps peak at ~375 tasks / 300 workers, finishing in
minutes).  Set it to 1.0 to run the paper's absolute grid sizes.
The fitted models are cached per (dataset, day) by the runner, so the
per-figure benches share all expensive work.
"""

from __future__ import annotations

import os

import pytest

from repro.data import brightkite_like, foursquare_like, generate_dataset
from repro.experiments import ExperimentRunner, ExperimentSettings
from repro.framework import PipelineConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "2"))


def _make_runner(
    config_factory, seed: int, assignment_hour: float | None = None
) -> ExperimentRunner:
    dataset = generate_dataset(config_factory(scale=BENCH_SCALE, seed=seed))
    settings = ExperimentSettings(
        scale=BENCH_SCALE,
        num_days=BENCH_DAYS,
        seed=seed,
        assignment_hour=assignment_hour,
    )
    pipeline = PipelineConfig(
        num_topics=20,
        propagation_mode="rpo",
        epsilon=0.2,
        max_rrr_sets=60_000,
        seed=seed,
    )
    return ExperimentRunner(dataset, settings, pipeline)


@pytest.fixture(scope="session")
def bk_runner() -> ExperimentRunner:
    """BK-like dataset runner (paper figures' subfigure (a))."""
    return _make_runner(brightkite_like, seed=7)


@pytest.fixture(scope="session")
def fs_runner() -> ExperimentRunner:
    """FS-like dataset runner (paper figures' subfigure (b))."""
    return _make_runner(foursquare_like, seed=11)


@pytest.fixture(scope="session")
def both_runners(bk_runner, fs_runner):
    return {"BK-like": bk_runner, "FS-like": fs_runner}


@pytest.fixture(scope="session")
def both_runners_day_end():
    """Runners evaluating at the day end (assignment_hour = 24), where task
    deadlines actually bind — used by the ϕ sweeps (Figures 7, 13, 14): a
    task is available iff published within the last ϕ hours, so availability
    grows with ϕ as the paper reports."""
    return {
        "BK-like": _make_runner(brightkite_like, seed=7, assignment_hour=24.0),
        "FS-like": _make_runner(foursquare_like, seed=11, assignment_hour=24.0),
    }
