"""Substrate bench: multi-day replay with relocation and admission control.

Drives :class:`~repro.stream.StreamRuntime` over multi-day synthetic
streams (overnight relocation waves, overnight churn, clustered cities) at
10x and 100x the paper's per-day arrival volumes, and measures what the
multi-day serving path adds on top of the single-day benches:

* **events/sec** across day boundaries (relocation rows drain through the
  same columnar slice path as arrivals);
* **p99 round latency** — day-boundary rounds are the worst case: they
  drain a whole relocation wave plus the overnight churn sweep at once;
* **shed rate** under the admission controller at a deterministic latency
  budget, against the ungated run's round-latency tail.

Two things are asserted at every scale:

* multi-day replay is exact: sharded == unsharded on relocation-heavy
  logs, and the disabled-admission run is bit-identical to a runtime
  without the controller;
* deferring under overload never loses work (assigned + expired +
  cancelled + still-open + backlog accounts for every publish).

``REPRO_BENCH_SCALE`` scales the stream volumes like the other benches
(default 0.15; CI smoke runs 0.05; 1.0 is the full 10-100x grid).
"""

import os

import pytest

from repro.assignment import NearestNeighborAssigner
from repro.stream import (
    AdmissionController,
    StreamRuntime,
    TimeWindowTrigger,
    synthetic_stream,
)
from repro.stream.events import KIND_RELOCATE

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

PAPER_DAY_WORKERS = 2000
PAPER_DAY_TASKS = 2500

DAYS = 3
CLUSTERS = 6

#: Deterministic admission feedback: a fixed per-open-task cost estimate,
#: so the bench's shed rates are reproducible run to run.
COST_PER_OPEN_TASK = 0.0005


def make_multiday_stream(rate_factor: int, seed: int = 71):
    num_workers = max(int(PAPER_DAY_WORKERS * rate_factor * BENCH_SCALE), 120)
    num_tasks = max(int(PAPER_DAY_TASKS * rate_factor * BENCH_SCALE), 120)
    return synthetic_stream(
        num_workers=num_workers,
        num_tasks=num_tasks,
        duration_hours=24.0,
        days=DAYS,
        area_km=25.0,
        valid_hours=4.0,
        reachable_km=10.0,
        churn_fraction=0.03,
        cancel_fraction=0.02,
        clusters=CLUSTERS,
        relocate_fraction=0.5,
        overnight_churn_fraction=0.1,
        relocate_span="world",
        seed=seed,
    )


def run_variant(base, log, shards=None, admission=None):
    runtime = StreamRuntime(
        NearestNeighborAssigner(), None, TimeWindowTrigger(0.5), base, log,
        patience_hours=8.0, shards=shards, admission=admission,
    )
    try:
        result = runtime.run()
    finally:
        runtime.close()
    return runtime, result


def sorted_pairs(result):
    return sorted(
        (pair.worker.worker_id, pair.task.task_id)
        for pair in result.assignment.pairs
    )


@pytest.mark.parametrize("rate_factor", [10, 100])
def test_multiday_replay_throughput(benchmark, rate_factor):
    """Events/sec and round-latency tail across day boundaries."""
    base, log = make_multiday_stream(rate_factor)
    relocations = int((log.kinds == KIND_RELOCATE).sum())
    assert relocations > 0

    _, result = benchmark.pedantic(
        lambda: run_variant(base, log), rounds=1, iterations=1
    )
    summary = result.summary()
    boundary_rounds = [
        r for r in result.rounds if r.relocated_workers > 0
    ]
    print(
        f"\n{rate_factor:>3}x rate, {DAYS} days: {len(log)} events "
        f"({relocations} relocations), {summary.events_per_second:,.0f} events/s, "
        f"round p50/p99 {summary.round_latency_p50 * 1e3:.2f}/"
        f"{summary.round_latency_p99 * 1e3:.2f} ms, "
        f"{len(boundary_rounds)} relocation rounds "
        f"(relocated {summary.relocated})"
    )
    assert summary.relocated == result.metrics.total_relocated > 0


def test_multiday_sharded_exactness(benchmark):
    """Sharded == unsharded on the relocation-heavy multi-day log."""
    base, log = make_multiday_stream(10)
    _, plain = run_variant(base, log)
    _, sharded = benchmark.pedantic(
        lambda: run_variant(base, log, shards=CLUSTERS), rounds=1, iterations=1
    )
    assert sorted_pairs(sharded) == sorted_pairs(plain)
    assert [r.assigned for r in sharded.rounds] == [
        r.assigned for r in plain.rounds
    ]


@pytest.mark.parametrize("rate_factor", [10])
def test_admission_control_shed_rate(benchmark, rate_factor):
    """Shed rate and latency relief under a deterministic budget.

    Runs at the 10x rate only: the assertion set needs four full replays
    (ungated, shed, defer, never-overloaded), which at 100x would dwarf
    every other bench in the smoke job without changing what is measured.
    """
    base, log = make_multiday_stream(rate_factor)
    _, ungated = run_variant(base, log)

    # Budget at roughly half the ungated p99-equivalent pool cost: boundary
    # bursts overload, steady-state rounds stay healthy.
    peak_pool = max(r.open_tasks for r in ungated.rounds)
    budget = max(COST_PER_OPEN_TASK * peak_pool / 2.0, COST_PER_OPEN_TASK)
    cost_of = lambda record: COST_PER_OPEN_TASK * record.open_tasks  # noqa: E731

    shed_runtime, shed_run = benchmark.pedantic(
        lambda: run_variant(
            base, log,
            admission=AdmissionController(budget, "shed", cost_of=cost_of),
        ),
        rounds=1, iterations=1,
    )
    defer_runtime, defer_run = run_variant(
        base, log,
        admission=AdmissionController(budget, "defer", cost_of=cost_of),
    )
    ungated_summary = ungated.summary()
    shed_summary = shed_run.summary()
    defer_summary = defer_run.summary()
    print(
        f"\n{rate_factor:>3}x rate: ungated p99 "
        f"{ungated_summary.round_latency_p99 * 1e3:.2f} ms | shed rate "
        f"{shed_summary.shed_rate:.2f} ({shed_summary.shed} tasks), p99 "
        f"{shed_summary.round_latency_p99 * 1e3:.2f} ms | defer "
        f"{defer_summary.deferred} parked, p99 "
        f"{defer_summary.round_latency_p99 * 1e3:.2f} ms"
    )
    assert shed_summary.shed > 0
    # Defer conserves work (modulo tasks still open at the horizon end).
    from repro.stream.events import KIND_PUBLISH

    accounted = (
        defer_run.total_assigned + defer_run.total_expired
        + defer_run.total_cancelled + defer_runtime.state.num_open_tasks
        + defer_runtime.admission.backlog_size
    )
    assert accounted == int((log.kinds == KIND_PUBLISH).sum())

    # Disabled admission control is bit-identical to no controller at all.
    _, never = run_variant(
        base, log,
        admission=AdmissionController(1e9, "defer", cost_of=cost_of),
    )
    assert sorted_pairs(never) == sorted_pairs(ungated)
    assert never.summary().deferred == never.summary().shed == 0
