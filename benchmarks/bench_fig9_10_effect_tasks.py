"""Figures 9 (BK) and 10 (FS): MTA / IA / EIA / DIA / MI as |S| varies.

Paper shapes: CPU time grows with |S| and MTA is cheapest; EIA assigns the
most tasks; MI tops AI with the fewest assignments; AP of the
influence-aware family exceeds MTA's; DIA has the lowest travel cost and
travel cost falls as |S| grows.
"""

from figutil import check_comparison_shapes, mean_series, run_and_print_comparison


def test_fig9_10_effect_of_tasks(benchmark, both_runners):
    def run():
        return run_and_print_comparison(
            both_runners,
            "num_tasks",
            lambda runner: runner.settings.task_sweep,
            figure="Fig.9/10",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_comparison_shapes(results)
    for result in results.values():
        # Travel cost decreases as tasks densify (more nearby options).
        for algorithm in ("IA", "MTA"):
            series = result.metric_series(algorithm, "average_travel_km")
            assert series[-1] <= series[0] * 1.25, (algorithm, series)
        # Assigned tasks grow with |S| until worker saturation.
        assigned = result.metric_series("EIA", "num_assigned")
        assert assigned[-1] >= assigned[0]
