"""Substrate bench: LDA training throughput (variational vs Gibbs).

Design-choice ablation from DESIGN.md §5: the pipeline defaults to
variational Bayes because collapsed Gibbs is an order of magnitude slower
at equal quality on our corpus sizes.
"""

import numpy as np
import pytest

from repro.text import GibbsLDA, VariationalLDA


def make_corpus(num_docs: int, doc_len: int = 40, vocab: int = 90, topics: int = 9, seed: int = 0):
    rng = np.random.default_rng(seed)
    words = [f"w{i}" for i in range(vocab)]
    topic_word = rng.dirichlet([0.1] * vocab, size=topics)
    documents = []
    for _ in range(num_docs):
        theta = rng.dirichlet([0.2] * topics)
        z = rng.choice(topics, size=doc_len, p=theta)
        documents.append([words[rng.choice(vocab, p=topic_word[t])] for t in z])
    return documents


@pytest.mark.parametrize("num_docs", [100, 400])
def test_variational_lda_fit(benchmark, num_docs):
    documents = make_corpus(num_docs)
    model = benchmark.pedantic(
        lambda: VariationalLDA(num_topics=9, seed=1).fit(documents),
        rounds=1, iterations=1,
    )
    assert model.doc_topic_.shape == (num_docs, 9)


def test_gibbs_lda_fit_small(benchmark):
    documents = make_corpus(60, doc_len=25)
    model = benchmark.pedantic(
        lambda: GibbsLDA(num_topics=9, iterations=60, seed=1).fit(documents),
        rounds=1, iterations=1,
    )
    assert model.doc_topic_.shape == (60, 9)


def test_variational_infer_throughput(benchmark):
    documents = make_corpus(200)
    model = VariationalLDA(num_topics=9, seed=1).fit(documents)
    queries = make_corpus(50, seed=9)

    def infer_all():
        return [model.infer(q) for q in queries]

    thetas = benchmark(infer_all)
    assert len(thetas) == 50
