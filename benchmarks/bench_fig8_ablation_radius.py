"""Figure 8: Average Influence of the ablations as the reachable radius r
varies.

Paper shape: AI moves non-monotonically with r while IA dominates the
single-component ablations.
"""

from figutil import check_ablation_shapes, run_and_print_ablation


def test_fig8_effect_of_radius_on_ai(benchmark, both_runners):
    def run():
        return run_and_print_ablation(
            both_runners,
            "reachable_km",
            lambda runner: runner.settings.radius_sweep,
            figure="Fig.8",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    check_ablation_shapes(results)
