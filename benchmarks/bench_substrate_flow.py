"""Substrate bench: the two lexicographic matching engines.

Design-choice ablation from DESIGN.md §5: the from-scratch SSP MCMF is the
readable exact reference; the dense Jonker-Volgenant reduction returns the
identical optimum orders of magnitude faster at paper scale.  This bench
measures both on the same instances (and asserts equal objective values).
"""

import numpy as np
import pytest

from repro.assignment import (
    solve_lexicographic_dense,
    solve_lexicographic_hungarian,
    solve_lexicographic_mcmf,
)


def make_instance(num_workers: int, num_tasks: int, density: float = 0.3, seed: int = 0):
    rng = np.random.default_rng(seed)
    cost = rng.random((num_workers, num_tasks))
    feasible = rng.random((num_workers, num_tasks)) < density
    return cost, feasible


@pytest.mark.parametrize("size", [(40, 50), (80, 100)])
def test_mcmf_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_mcmf(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", [(40, 50), (300, 375), (1200, 1500)])
def test_dense_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_dense(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", [(40, 50), (120, 150)])
def test_hungarian_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_hungarian(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


def test_engines_equal_objective(benchmark):
    cost, feasible = make_instance(60, 75, seed=4)

    def run_all():
        return (
            solve_lexicographic_mcmf(cost, feasible),
            solve_lexicographic_dense(cost, feasible),
            solve_lexicographic_hungarian(cost, feasible),
        )

    mcmf_pairs, dense_pairs, hungarian_pairs = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert len(mcmf_pairs) == len(dense_pairs) == len(hungarian_pairs)
    cost_mcmf = sum(cost[w, t] for w, t in mcmf_pairs)
    cost_dense = sum(cost[w, t] for w, t in dense_pairs)
    cost_hungarian = sum(cost[w, t] for w, t in hungarian_pairs)
    print(
        f"\ncardinality={len(mcmf_pairs)}, cost mcmf={cost_mcmf:.4f} "
        f"dense={cost_dense:.4f} hungarian={cost_hungarian:.4f}"
    )
    assert cost_mcmf == pytest.approx(cost_dense, abs=1e-6)
    assert cost_mcmf == pytest.approx(cost_hungarian, abs=1e-6)
