"""Substrate bench: array-native flow core vs the legacy object-graph one.

PR 2 rewrote ``repro.flow`` around flat-CSR arrays (vectorized Dinic BFS,
Johnson-potential shortest paths, and the dense bipartite SSP engine).  To
keep the before/after comparison honest and reproducible, a compact copy of
the *pre-rewrite* solvers (adjacency-list network, recursive Dinic,
per-edge SPFA MCMF) is embedded below as the baseline; the headline test
solves the largest seeded instance with both and asserts the new substrate
is at least 5x faster at equal objective value.

Instance sizes scale with ``REPRO_BENCH_SCALE`` like the rest of the bench
suite (default 0.15 — the paper-scale grid); the speedup assertion only
applies at the default scale or above, since tiny instances under-use the
vectorized kernels.
"""

import os
import time
from collections import deque

import numpy as np
import pytest

from repro.assignment import (
    MTAAssigner,
    solve_lexicographic_dense,
    solve_lexicographic_hungarian,
    solve_lexicographic_mcmf,
    solve_lexicographic_substrate,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def scaled(base: int) -> int:
    return max(8, int(round(base * BENCH_SCALE / 0.15)))


# --------------------------------------------------------------------------
# Legacy (pre-rewrite) substrate, verbatim in behaviour: object-graph
# residual network, recursive Dinic, SPFA min-cost max-flow.
# --------------------------------------------------------------------------
class _LegacyNetwork:
    def __init__(self, num_nodes):
        self.num_nodes = num_nodes
        self.edge_to = []
        self.edge_cap = []
        self.edge_cost = []
        self.adjacency = [[] for _ in range(num_nodes)]

    def add_edge(self, source, target, capacity, cost=0.0):
        edge_id = len(self.edge_to)
        self.edge_to.append(target)
        self.edge_cap.append(capacity)
        self.edge_cost.append(cost)
        self.adjacency[source].append(edge_id)
        self.edge_to.append(source)
        self.edge_cap.append(0)
        self.edge_cost.append(-cost)
        self.adjacency[target].append(edge_id + 1)
        return edge_id

    def push(self, edge_id, amount):
        self.edge_cap[edge_id] -= amount
        self.edge_cap[edge_id ^ 1] += amount


class _LegacyDinic:
    def __init__(self, network):
        self.network = network
        self._level = []
        self._iter = []

    def _bfs(self, source, sink):
        network = self.network
        self._level = [-1] * network.num_nodes
        self._level[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in network.adjacency[node]:
                target = network.edge_to[edge_id]
                if network.edge_cap[edge_id] > 0 and self._level[target] < 0:
                    self._level[target] = self._level[node] + 1
                    queue.append(target)
        return self._level[sink] >= 0

    def _dfs(self, node, sink, limit):
        if node == sink:
            return limit
        network = self.network
        adjacency = network.adjacency[node]
        while self._iter[node] < len(adjacency):
            edge_id = adjacency[self._iter[node]]
            target = network.edge_to[edge_id]
            if network.edge_cap[edge_id] > 0 and self._level[target] == self._level[node] + 1:
                pushed = self._dfs(target, sink, min(limit, network.edge_cap[edge_id]))
                if pushed > 0:
                    network.push(edge_id, pushed)
                    return pushed
            self._iter[node] += 1
        return 0

    def max_flow(self, source, sink):
        total = 0
        while self._bfs(source, sink):
            self._iter = [0] * self.network.num_nodes
            while True:
                pushed = self._dfs(source, sink, 1 << 60)
                if pushed == 0:
                    break
                total += pushed
        return total


def _legacy_mcmf(network, source, sink):
    infinity = float("inf")
    total_flow, total_cost = 0, 0.0
    while True:
        distance = [infinity] * network.num_nodes
        in_edge = [-1] * network.num_nodes
        in_queue = [False] * network.num_nodes
        distance[source] = 0.0
        queue = deque([source])
        in_queue[source] = True
        while queue:
            node = queue.popleft()
            in_queue[node] = False
            node_distance = distance[node]
            for edge_id in network.adjacency[node]:
                if network.edge_cap[edge_id] <= 0:
                    continue
                target = network.edge_to[edge_id]
                candidate = node_distance + network.edge_cost[edge_id]
                if candidate < distance[target] - 1e-12:
                    distance[target] = candidate
                    in_edge[target] = edge_id
                    if not in_queue[target]:
                        in_queue[target] = True
                        if queue and candidate < distance[queue[0]]:
                            queue.appendleft(target)
                        else:
                            queue.append(target)
        if in_edge[sink] == -1:
            return total_flow, total_cost
        bottleneck = None
        node = sink
        while node != source:
            edge_id = in_edge[node]
            residual = network.edge_cap[edge_id]
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = network.edge_to[edge_id ^ 1]
        node = sink
        while node != source:
            edge_id = in_edge[node]
            network.push(edge_id, bottleneck)
            node = network.edge_to[edge_id ^ 1]
        total_flow += bottleneck
        total_cost += bottleneck * distance[sink]


def _legacy_figure4(cost, mask):
    num_left, num_right = mask.shape
    network = _LegacyNetwork(num_left + num_right + 2)
    sink = num_left + num_right + 1
    for i in range(num_left):
        network.add_edge(0, 1 + i, 1, 0.0)
    for j in range(num_right):
        network.add_edge(1 + num_left + j, sink, 1, 0.0)
    for i, j in zip(*np.nonzero(mask)):
        network.add_edge(1 + int(i), 1 + num_left + int(j), 1, float(cost[i, j]))
    return network, 0, sink


# --------------------------------------------------------------------------
# Instances
# --------------------------------------------------------------------------
def make_instance(num_workers, num_tasks, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    cost = rng.random((num_workers, num_tasks))
    feasible = rng.random((num_workers, num_tasks)) < density
    return cost, feasible


SIZES_SMALL = [(scaled(40), scaled(50)), (scaled(80), scaled(100))]
LARGEST = (scaled(400), scaled(500))


# --------------------------------------------------------------------------
# Engine micro-benchmarks (unchanged contract from the pre-rewrite bench)
# --------------------------------------------------------------------------
@pytest.mark.parametrize("size", SIZES_SMALL)
def test_mcmf_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_mcmf(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", SIZES_SMALL + [LARGEST])
def test_substrate_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_substrate(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", SIZES_SMALL + [LARGEST])
def test_dense_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_dense(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", [(scaled(40), scaled(50)), (scaled(120), scaled(150))])
def test_hungarian_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_hungarian(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", SIZES_SMALL + [LARGEST])
def test_dinic_mta(benchmark, size):
    _, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: MTAAssigner._solve_flow(feasible), rounds=1, iterations=1
    )
    assert pairs


def test_engines_equal_objective(benchmark):
    cost, feasible = make_instance(scaled(60), scaled(75), seed=4)

    def run_all():
        return (
            solve_lexicographic_mcmf(cost, feasible),
            solve_lexicographic_substrate(cost, feasible),
            solve_lexicographic_dense(cost, feasible),
            solve_lexicographic_hungarian(cost, feasible),
        )

    mcmf_pairs, substrate_pairs, dense_pairs, hungarian_pairs = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    lengths = {len(p) for p in (mcmf_pairs, substrate_pairs, dense_pairs, hungarian_pairs)}
    assert len(lengths) == 1
    costs = [
        sum(cost[w, t] for w, t in pairs)
        for pairs in (mcmf_pairs, substrate_pairs, dense_pairs, hungarian_pairs)
    ]
    print(f"\ncardinality={len(mcmf_pairs)}, costs={[f'{c:.4f}' for c in costs]}")
    for other in costs[1:]:
        assert costs[0] == pytest.approx(other, abs=1e-6)


# --------------------------------------------------------------------------
# Headline: legacy substrate vs array substrate on the largest instance
# --------------------------------------------------------------------------
def test_speedup_vs_legacy_on_largest_instance(benchmark):
    """The acceptance gate: >= 5x on the largest seeded instance.

    Both sides solve the identical lexicographic MCMF problem; objective
    equality is asserted before any timing claim.
    """
    cost, feasible = make_instance(*LARGEST, density=0.3, seed=42)

    started = time.perf_counter()
    network, source, sink = _legacy_figure4(cost, feasible)
    legacy_flow, legacy_cost = _legacy_mcmf(network, source, sink)
    legacy_seconds = time.perf_counter() - started

    def solve_new():
        return solve_lexicographic_substrate(cost, feasible)

    started = time.perf_counter()
    pairs = solve_new()
    new_seconds = time.perf_counter() - started
    benchmark.pedantic(solve_new, rounds=1, iterations=1)

    new_cost = sum(cost[w, t] for w, t in pairs)
    assert len(pairs) == legacy_flow
    assert new_cost == pytest.approx(legacy_cost, abs=1e-6)

    speedup = legacy_seconds / new_seconds
    print(
        f"\nlargest instance {LARGEST}: legacy={legacy_seconds:.3f}s "
        f"substrate={new_seconds:.3f}s speedup={speedup:.1f}x "
        f"(flow={legacy_flow}, cost={legacy_cost:.4f})"
    )
    if BENCH_SCALE >= 0.15:
        assert speedup >= 5.0, f"substrate speedup regressed: {speedup:.1f}x < 5x"


def test_dinic_speedup_vs_legacy(benchmark):
    """Secondary: array Dinic vs recursive object-graph Dinic, max flow."""
    _, feasible = make_instance(*LARGEST, density=0.3, seed=42)

    started = time.perf_counter()
    network, source, sink = _legacy_figure4(
        np.zeros(feasible.shape), feasible
    )
    legacy_value = _LegacyDinic(network).max_flow(source, sink)
    legacy_seconds = time.perf_counter() - started

    def solve_new():
        return MTAAssigner._solve_flow(feasible)

    started = time.perf_counter()
    pairs = solve_new()
    new_seconds = time.perf_counter() - started
    benchmark.pedantic(solve_new, rounds=1, iterations=1)

    assert len(pairs) == legacy_value
    print(
        f"\nlargest instance {LARGEST}: legacy dinic={legacy_seconds:.3f}s "
        f"array dinic={new_seconds:.3f}s speedup={legacy_seconds/new_seconds:.1f}x"
    )
