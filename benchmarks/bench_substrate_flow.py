"""Substrate bench: array-native flow core vs the legacy object-graph one.

PR 2 rewrote ``repro.flow`` around flat-CSR arrays (vectorized Dinic BFS,
Johnson-potential shortest paths, and the dense bipartite SSP engine).  To
keep the before/after comparison honest and reproducible, a compact copy of
the *pre-rewrite* solvers (adjacency-list network, recursive Dinic,
per-edge SPFA MCMF) is embedded below as the baseline; the headline test
solves the largest seeded instance with both and asserts the new substrate
is at least 5x faster at equal objective value.

Instance sizes scale with ``REPRO_BENCH_SCALE`` like the rest of the bench
suite (default 0.15 — the paper-scale grid); the speedup assertion only
applies at the default scale or above, since tiny instances under-use the
vectorized kernels.
"""

import os
import time
from collections import deque

import numpy as np
import pytest
from figutil import bench_artifact

from repro.assignment import (
    MTAAssigner,
    solve_lexicographic_dense,
    solve_lexicographic_hungarian,
    solve_lexicographic_mcmf,
    solve_lexicographic_substrate,
)
from repro.assignment.solvers import build_figure4_network
from repro.flow import WarmStart, min_cost_matching
from repro.flow.maxflow import Dinic

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def scaled(base: int) -> int:
    return max(8, int(round(base * BENCH_SCALE / 0.15)))


# --------------------------------------------------------------------------
# Legacy (pre-rewrite) substrate, verbatim in behaviour: object-graph
# residual network, recursive Dinic, SPFA min-cost max-flow.
# --------------------------------------------------------------------------
class _LegacyNetwork:
    def __init__(self, num_nodes):
        self.num_nodes = num_nodes
        self.edge_to = []
        self.edge_cap = []
        self.edge_cost = []
        self.adjacency = [[] for _ in range(num_nodes)]

    def add_edge(self, source, target, capacity, cost=0.0):
        edge_id = len(self.edge_to)
        self.edge_to.append(target)
        self.edge_cap.append(capacity)
        self.edge_cost.append(cost)
        self.adjacency[source].append(edge_id)
        self.edge_to.append(source)
        self.edge_cap.append(0)
        self.edge_cost.append(-cost)
        self.adjacency[target].append(edge_id + 1)
        return edge_id

    def push(self, edge_id, amount):
        self.edge_cap[edge_id] -= amount
        self.edge_cap[edge_id ^ 1] += amount


class _LegacyDinic:
    def __init__(self, network):
        self.network = network
        self._level = []
        self._iter = []

    def _bfs(self, source, sink):
        network = self.network
        self._level = [-1] * network.num_nodes
        self._level[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in network.adjacency[node]:
                target = network.edge_to[edge_id]
                if network.edge_cap[edge_id] > 0 and self._level[target] < 0:
                    self._level[target] = self._level[node] + 1
                    queue.append(target)
        return self._level[sink] >= 0

    def _dfs(self, node, sink, limit):
        if node == sink:
            return limit
        network = self.network
        adjacency = network.adjacency[node]
        while self._iter[node] < len(adjacency):
            edge_id = adjacency[self._iter[node]]
            target = network.edge_to[edge_id]
            if network.edge_cap[edge_id] > 0 and self._level[target] == self._level[node] + 1:
                pushed = self._dfs(target, sink, min(limit, network.edge_cap[edge_id]))
                if pushed > 0:
                    network.push(edge_id, pushed)
                    return pushed
            self._iter[node] += 1
        return 0

    def max_flow(self, source, sink):
        total = 0
        while self._bfs(source, sink):
            self._iter = [0] * self.network.num_nodes
            while True:
                pushed = self._dfs(source, sink, 1 << 60)
                if pushed == 0:
                    break
                total += pushed
        return total


def _legacy_mcmf(network, source, sink):
    infinity = float("inf")
    total_flow, total_cost = 0, 0.0
    while True:
        distance = [infinity] * network.num_nodes
        in_edge = [-1] * network.num_nodes
        in_queue = [False] * network.num_nodes
        distance[source] = 0.0
        queue = deque([source])
        in_queue[source] = True
        while queue:
            node = queue.popleft()
            in_queue[node] = False
            node_distance = distance[node]
            for edge_id in network.adjacency[node]:
                if network.edge_cap[edge_id] <= 0:
                    continue
                target = network.edge_to[edge_id]
                candidate = node_distance + network.edge_cost[edge_id]
                if candidate < distance[target] - 1e-12:
                    distance[target] = candidate
                    in_edge[target] = edge_id
                    if not in_queue[target]:
                        in_queue[target] = True
                        if queue and candidate < distance[queue[0]]:
                            queue.appendleft(target)
                        else:
                            queue.append(target)
        if in_edge[sink] == -1:
            return total_flow, total_cost
        bottleneck = None
        node = sink
        while node != source:
            edge_id = in_edge[node]
            residual = network.edge_cap[edge_id]
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = network.edge_to[edge_id ^ 1]
        node = sink
        while node != source:
            edge_id = in_edge[node]
            network.push(edge_id, bottleneck)
            node = network.edge_to[edge_id ^ 1]
        total_flow += bottleneck
        total_cost += bottleneck * distance[sink]


def _legacy_figure4(cost, mask):
    num_left, num_right = mask.shape
    network = _LegacyNetwork(num_left + num_right + 2)
    sink = num_left + num_right + 1
    for i in range(num_left):
        network.add_edge(0, 1 + i, 1, 0.0)
    for j in range(num_right):
        network.add_edge(1 + num_left + j, sink, 1, 0.0)
    for i, j in zip(*np.nonzero(mask)):
        network.add_edge(1 + int(i), 1 + num_left + int(j), 1, float(cost[i, j]))
    return network, 0, sink


# --------------------------------------------------------------------------
# Instances
# --------------------------------------------------------------------------
def make_instance(num_workers, num_tasks, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    cost = rng.random((num_workers, num_tasks))
    feasible = rng.random((num_workers, num_tasks)) < density
    return cost, feasible


SIZES_SMALL = [(scaled(40), scaled(50)), (scaled(80), scaled(100))]
LARGEST = (scaled(400), scaled(500))


# --------------------------------------------------------------------------
# Engine micro-benchmarks (unchanged contract from the pre-rewrite bench)
# --------------------------------------------------------------------------
@pytest.mark.parametrize("size", SIZES_SMALL)
def test_mcmf_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_mcmf(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", SIZES_SMALL + [LARGEST])
def test_substrate_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_substrate(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", SIZES_SMALL + [LARGEST])
def test_dense_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_dense(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", [(scaled(40), scaled(50)), (scaled(120), scaled(150))])
def test_hungarian_engine(benchmark, size):
    cost, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: solve_lexicographic_hungarian(cost, feasible), rounds=1, iterations=1
    )
    assert pairs


@pytest.mark.parametrize("size", SIZES_SMALL + [LARGEST])
def test_dinic_mta(benchmark, size):
    _, feasible = make_instance(*size)
    pairs = benchmark.pedantic(
        lambda: MTAAssigner._solve_flow(feasible), rounds=1, iterations=1
    )
    assert pairs


def test_engines_equal_objective(benchmark):
    cost, feasible = make_instance(scaled(60), scaled(75), seed=4)

    def run_all():
        return (
            solve_lexicographic_mcmf(cost, feasible),
            solve_lexicographic_substrate(cost, feasible),
            solve_lexicographic_dense(cost, feasible),
            solve_lexicographic_hungarian(cost, feasible),
        )

    mcmf_pairs, substrate_pairs, dense_pairs, hungarian_pairs = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    lengths = {len(p) for p in (mcmf_pairs, substrate_pairs, dense_pairs, hungarian_pairs)}
    assert len(lengths) == 1
    costs = [
        sum(cost[w, t] for w, t in pairs)
        for pairs in (mcmf_pairs, substrate_pairs, dense_pairs, hungarian_pairs)
    ]
    print(f"\ncardinality={len(mcmf_pairs)}, costs={[f'{c:.4f}' for c in costs]}")
    for other in costs[1:]:
        assert costs[0] == pytest.approx(other, abs=1e-6)


# --------------------------------------------------------------------------
# Headline: legacy substrate vs array substrate on the largest instance
# --------------------------------------------------------------------------
def test_speedup_vs_legacy_on_largest_instance(benchmark):
    """The acceptance gate: >= 5x on the largest seeded instance.

    Both sides solve the identical lexicographic MCMF problem; objective
    equality is asserted before any timing claim.
    """
    cost, feasible = make_instance(*LARGEST, density=0.3, seed=42)

    started = time.perf_counter()
    network, source, sink = _legacy_figure4(cost, feasible)
    legacy_flow, legacy_cost = _legacy_mcmf(network, source, sink)
    legacy_seconds = time.perf_counter() - started

    def solve_new():
        return solve_lexicographic_substrate(cost, feasible)

    started = time.perf_counter()
    pairs = solve_new()
    new_seconds = time.perf_counter() - started
    benchmark.pedantic(solve_new, rounds=1, iterations=1)

    new_cost = sum(cost[w, t] for w, t in pairs)
    assert len(pairs) == legacy_flow
    assert new_cost == pytest.approx(legacy_cost, abs=1e-6)

    speedup = legacy_seconds / new_seconds
    print(
        f"\nlargest instance {LARGEST}: legacy={legacy_seconds:.3f}s "
        f"substrate={new_seconds:.3f}s speedup={speedup:.1f}x "
        f"(flow={legacy_flow}, cost={legacy_cost:.4f})"
    )
    if BENCH_SCALE >= 0.15:
        assert speedup >= 5.0, f"substrate speedup regressed: {speedup:.1f}x < 5x"


class _WalkDinic(Dinic):
    """The pre-vectorization Dinic: per-edge Python-walk blocking flow.

    Verbatim behaviour of the previous ``_blocking_flow`` — full
    ``tolist()`` of the CSR/capacity arrays every phase, no level-graph
    compaction, no unit-capacity fast path — kept as the honest baseline
    for the vectorized column.  The level BFS is shared (it was already
    array-native), so the comparison isolates the blocking-flow rewrite.
    """

    def _blocking_flow(self, source: int, sink: int) -> int:
        network = self.network
        indptr_arr, csr_edges_arr = network.csr()
        indptr = indptr_arr.tolist()
        csr_edges = csr_edges_arr.tolist()
        heads = network.edge_to.tolist()
        cap = network.edge_cap.tolist()
        level = self._level.tolist()
        it = indptr[: network.num_nodes]
        total = 0
        path: list[int] = []
        node = source
        while True:
            if node == sink:
                bottleneck = min(cap[edge_id] for edge_id in path)
                for edge_id in path:
                    cap[edge_id] -= bottleneck
                    cap[edge_id ^ 1] += bottleneck
                total += bottleneck
                path = []
                node = source
                continue
            advanced = False
            next_level = level[node] + 1
            end = indptr[node + 1]
            while it[node] < end:
                edge_id = csr_edges[it[node]]
                target = heads[edge_id]
                if cap[edge_id] > 0 and level[target] == next_level:
                    path.append(edge_id)
                    node = target
                    advanced = True
                    break
                it[node] += 1
            if not advanced:
                if node == source:
                    break
                edge_id = path.pop()
                node = heads[edge_id ^ 1]
                it[node] += 1
        network.edge_cap[:] = cap
        return total


def test_blocking_flow_vectorized_vs_walk(benchmark):
    """The Dinic column: compacted/batched blocking flow vs the edge walk.

    Both sides run the identical level BFS over identical Figure-4
    networks; only the blocking-flow phase differs.  The >= 2x gate arms
    at paper scale, where the phases are large enough for the compaction
    to amortize.
    """
    _, feasible = make_instance(*LARGEST, density=0.3, seed=42)

    def best_of(engine, repeats=3):
        """Best-of-N timings of ``max_flow`` alone: the network build is
        identical on both sides and would only dilute the ratio, and single
        runs of tens of milliseconds are noisy under the full session."""
        value, seconds = None, float("inf")
        for _ in range(repeats):
            network, _, _, _ = build_figure4_network(feasible)
            solver = engine(network)
            started = time.perf_counter()
            value = solver.max_flow(0, network.num_nodes - 1)
            seconds = min(seconds, time.perf_counter() - started)
        return value, seconds

    walk_value, walk_seconds = best_of(_WalkDinic)
    new_value, new_seconds = best_of(Dinic)

    def solve_new():
        fresh, _, _, _ = build_figure4_network(feasible)
        return Dinic(fresh).max_flow(0, fresh.num_nodes - 1)

    benchmark.pedantic(solve_new, rounds=1, iterations=1)

    assert new_value == walk_value
    speedup = walk_seconds / new_seconds
    print(
        f"\nlargest instance {LARGEST}: walk dinic={walk_seconds:.3f}s "
        f"vectorized dinic={new_seconds:.3f}s speedup={speedup:.1f}x "
        f"(flow={new_value})"
    )
    bench_artifact(
        "flow_blocking_vectorized",
        {"size": list(LARGEST), "bench_scale": BENCH_SCALE,
         "walk_seconds": walk_seconds, "vectorized_seconds": new_seconds,
         "speedup": speedup, "flow": int(new_value)},
    )
    if BENCH_SCALE >= 0.15:
        assert speedup >= 2.0, (
            f"vectorized blocking flow regressed: {speedup:.1f}x < 2x"
        )


#: District geometry for the warm column: a worker-surplus district and a
#: task-surplus district farther apart than any worker's reach.  Surplus
#: entities survive round after round *in place* — exactly the carry shape
#: whose retired-pair geometry the warm solver prunes (module docstring of
#: ``repro.flow.bipartite``); uniform-turnover worlds leave nothing alive
#: between rounds and warm solves degenerate to cold ones there.
_REACH_KM = 5.0
_DISTRICT_GAP_KM = 12.0


class _DistrictDrift:
    """Streaming-shaped rounds over the two-district city.

    Each round: matched pairs leave the pool, free survivors stay put
    (static geometry — the stream runtime invalidates its carry on any
    relocation), fresh arrivals land 80/20 across the districts, and pool
    caps emulate worker patience / task expiry by retiring the oldest
    free entities.
    """

    def __init__(self, seed=7):
        self.rng = np.random.default_rng(seed)
        self.pool_w, self.pool_t = scaled(500), scaled(350)
        self.fresh_w, self.fresh_t = scaled(120), scaled(120)
        self.w_pos = self._spawn(self.pool_w, 0.0)
        self.t_pos = self._spawn(self.pool_t, _DISTRICT_GAP_KM)
        self.w_ids = list(range(len(self.w_pos)))
        self.t_ids = [10_000_000 + j for j in range(len(self.t_pos))]
        self.next_w = len(self.w_pos)
        self.next_t = len(self.t_pos)

    def _spawn(self, count, heavy_x, heavy_frac=0.8):
        rng = self.rng
        heavy = int(round(count * heavy_frac))
        light_x = _DISTRICT_GAP_KM - heavy_x

        def district(n, cx):
            return np.column_stack(
                [rng.normal(cx, 1.5, n), rng.normal(0.0, 1.5, n)]
            )

        return np.vstack(
            [district(heavy, heavy_x), district(count - heavy, light_x)]
        )

    def instance(self):
        cost = np.hypot(
            self.w_pos[:, None, 0] - self.t_pos[None, :, 0],
            self.w_pos[:, None, 1] - self.t_pos[None, :, 1],
        )
        return cost, cost <= _REACH_KM

    def retire_and_arrive(self, rows, cols):
        keep_w = np.ones(len(self.w_pos), dtype=bool)
        keep_w[rows] = False
        keep_t = np.ones(len(self.t_pos), dtype=bool)
        keep_t[cols] = False
        # Oldest free entities run out of patience / expire first.
        for excess, keep in (
            (int(keep_w.sum()) - self.pool_w, keep_w),
            (int(keep_t.sum()) - self.pool_t, keep_t),
        ):
            if excess > 0:
                keep[np.flatnonzero(keep)[:excess]] = False
        self.w_pos = np.vstack([self.w_pos[keep_w], self._spawn(self.fresh_w, 0.0)])
        self.t_pos = np.vstack(
            [self.t_pos[keep_t], self._spawn(self.fresh_t, _DISTRICT_GAP_KM)]
        )
        self.w_ids = [i for i, k in zip(self.w_ids, keep_w) if k] + [
            self.next_w + n for n in range(self.fresh_w)
        ]
        self.t_ids = [j for j, k in zip(self.t_ids, keep_t) if k] + [
            10_000_000 + self.next_t + n for n in range(self.fresh_t)
        ]
        self.next_w += self.fresh_w
        self.next_t += self.fresh_t


def test_warm_matcher_column(benchmark):
    """The warm column: carried duals + retired-pair geometry vs cold.

    Every round is solved twice on identical inputs — cold and with the
    carried :class:`WarmStart` — and the matchings must be bit-identical
    (distance costs are tie-free) before any timing claim.  Augmentation
    counts are reported for the artifact: the carry cannot reduce them
    (every surviving entity was free, so every new match still needs its
    augmentation); the win is the pruned stale-stale sweep work.
    """
    drift = _DistrictDrift()
    num_rounds = 6
    cold_seconds = warm_seconds = 0.0
    cold_augment = warm_augment = 0
    matched_total = 0
    carry: WarmStart | None = None

    def run_rounds():
        nonlocal cold_seconds, warm_seconds, cold_augment, warm_augment
        nonlocal matched_total, carry
        for _ in range(num_rounds):
            cost, feasible = drift.instance()
            started = time.perf_counter()
            cold = min_cost_matching(cost, feasible)
            cold_seconds += time.perf_counter() - started
            started = time.perf_counter()
            warm = min_cost_matching(
                cost, feasible,
                warm=carry if carry is not None else WarmStart(),
                worker_ids=drift.w_ids, task_ids=drift.t_ids,
            )
            warm_seconds += time.perf_counter() - started
            carry = warm.warm
            assert np.array_equal(warm.rows, cold.rows)
            assert np.array_equal(warm.cols, cold.cols)
            assert warm.total_cost == cold.total_cost
            cold_augment += cold.augmentations
            warm_augment += warm.augmentations
            matched_total += cold.rows.size
            drift.retire_and_arrive(cold.rows, cold.cols)

    benchmark.pedantic(run_rounds, rounds=1, iterations=1)
    assert matched_total > 0
    speedup = cold_seconds / warm_seconds
    print(
        f"\n{num_rounds} district rounds (pool {drift.pool_w}x{drift.pool_t}): "
        f"cold={cold_seconds:.3f}s warm={warm_seconds:.3f}s ({speedup:.2f}x); "
        f"augmentations cold {cold_augment} / warm {warm_augment}, "
        f"{matched_total} matched"
    )
    bench_artifact(
        "flow_warm_matcher",
        {"pool": [drift.pool_w, drift.pool_t], "rounds": num_rounds,
         "bench_scale": BENCH_SCALE, "cold_seconds": cold_seconds,
         "warm_seconds": warm_seconds, "speedup": speedup,
         "cold_augmentations": int(cold_augment),
         "warm_augmentations": int(warm_augment),
         "matched": int(matched_total)},
    )
    if BENCH_SCALE >= 0.15:
        assert speedup >= 1.3, (
            f"warm-started solves regressed: {speedup:.2f}x < 1.3x"
        )


def test_dinic_speedup_vs_legacy(benchmark):
    """Secondary: array Dinic vs recursive object-graph Dinic, max flow."""
    _, feasible = make_instance(*LARGEST, density=0.3, seed=42)

    started = time.perf_counter()
    network, source, sink = _legacy_figure4(
        np.zeros(feasible.shape), feasible
    )
    legacy_value = _LegacyDinic(network).max_flow(source, sink)
    legacy_seconds = time.perf_counter() - started

    def solve_new():
        return MTAAssigner._solve_flow(feasible)

    started = time.perf_counter()
    pairs = solve_new()
    new_seconds = time.perf_counter() - started
    benchmark.pedantic(solve_new, rounds=1, iterations=1)

    assert len(pairs) == legacy_value
    print(
        f"\nlargest instance {LARGEST}: legacy dinic={legacy_seconds:.3f}s "
        f"array dinic={new_seconds:.3f}s speedup={legacy_seconds/new_seconds:.1f}x"
    )
