"""Serve one day as a continuous event stream instead of a fixed day loop.

The batched online simulator replays a day with a precomputed schedule of
hourly rounds.  The streaming runtime consumes the same day as *events* —
worker arrivals, task publications, deadline expiries — and cuts rounds
with pluggable micro-batch triggers.  This example

1. cross-checks that a time-window trigger reproduces the batched
   simulator's assignments exactly,
2. compares trigger policies on wait time vs round cost, and
3. checkpoints a run mid-stream and resumes it bit-identically.
"""

from repro import (
    DITAPipeline,
    IAAssigner,
    PipelineConfig,
    brightkite_like,
    generate_dataset,
)
from repro.framework import OnlineSimulator, day_arrivals
from repro.data import InstanceBuilder
from repro.stream import (
    AdaptiveTrigger,
    CountTrigger,
    HybridTrigger,
    StreamRuntime,
    TimeWindowTrigger,
    day_stream,
)


def pairs(assignment):
    return sorted((p.worker.worker_id, p.task.task_id) for p in assignment.pairs)


def main() -> None:
    dataset = generate_dataset(brightkite_like(scale=0.08, seed=21))
    day = InstanceBuilder(dataset).richest_days(count=1)[0]
    instance, log = day_stream(dataset, day)
    print(f"day {day}: {len(log)} events over {instance.name}")

    config = PipelineConfig(num_topics=15, propagation_mode="fixed",
                            num_rrr_sets=15_000, seed=9)
    influence = DITAPipeline(config).fit(instance).influence_model()

    # 1. Golden cross-check: hourly windows == hourly batched simulator.
    arrivals = day_arrivals(dataset, day)
    online = OnlineSimulator(IAAssigner(), influence, batch_hours=1.0).run(
        instance, arrivals
    )
    runtime = StreamRuntime(
        IAAssigner(), influence, TimeWindowTrigger(1.0), instance, log
    )
    streamed = runtime.run()
    match = pairs(online.assignment) == pairs(streamed.assignment)
    print(f"\nhourly stream == hourly batch: {match} "
          f"({streamed.total_assigned} assignments)")

    # 2. Trigger policies trade wait time against round count.
    policies = {
        "window 1h": TimeWindowTrigger(1.0),
        "count 25": CountTrigger(25),
        "hybrid 25/1h": HybridTrigger(25, 1.0),
        "adaptive 50ms": AdaptiveTrigger(target_seconds=0.05,
                                         initial_window_hours=1.0),
    }
    print(f"\n{'policy':14s} {'rounds':>7s} {'assigned':>9s} {'expired':>8s} "
          f"{'wait p90 (h)':>13s} {'round p99 (s)':>14s}")
    for name, trigger in policies.items():
        summary = StreamRuntime(
            IAAssigner(), influence, trigger, instance, log
        ).run().summary()
        print(f"{name:14s} {summary.rounds:7d} {summary.assigned:9d} "
              f"{summary.expired:8d} {summary.task_wait_p90:13.2f} "
              f"{summary.round_latency_p99:14.4f}")

    # 3. Checkpoint mid-stream, resume, and land on the identical result.
    first = StreamRuntime(
        IAAssigner(), influence, TimeWindowTrigger(1.0), instance, log
    )
    first.run(max_rounds=6)
    saved = first.checkpoint("streaming_day_checkpoint.npz")
    resumed = StreamRuntime.resume(
        saved, IAAssigner(), influence, TimeWindowTrigger(1.0), instance, log
    ).run()
    print(f"\ncheckpoint after 6 rounds -> resume: "
          f"{pairs(resumed.assignment) == pairs(streamed.assignment)} "
          f"(saved to {saved})")


if __name__ == "__main__":
    main()
