"""Run the full pipeline on real SNAP-format dumps (Brightkite layout).

Usage:
    python examples/snap_pipeline.py EDGES CHECKINS [CATEGORIES]

where EDGES is e.g. ``loc-brightkite_edges.txt`` and CHECKINS is
``loc-brightkite_totalCheckins.txt`` from https://snap.stanford.edu/data/.
If no files are given, the script writes a tiny demo dump to a temp
directory and runs on that, so it is executable offline.
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    DITAPipeline,
    IAAssigner,
    InstanceBuilder,
    MTAAssigner,
    PipelineConfig,
    PreparedInstance,
    evaluate_assignment,
    load_dataset_from_snap,
)

DEMO_EDGES = "\n".join(f"{u}\t{v}" for u, v in [
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (5, 6), (6, 7),
    (2, 7), (3, 6), (0, 5),
])

DEMO_CHECKINS = "\n".join(
    f"{user}\t2010-10-{10 + day:02d}T{8 + slot:02d}:15:00Z"
    f"\t{39.7 + 0.01 * venue}\t{-105.0 - 0.01 * venue}\tv{venue}"
    for day in range(6)
    for slot, (user, venue) in enumerate(
        [(u, (u * (day + 2) + slot_seed) % 6) for slot_seed, u in enumerate(range(8))]
    )
)

DEMO_CATEGORIES = "\n".join(
    f"v{v}\t{cats}" for v, cats in enumerate(
        ["cafe,bakery", "bar", "park", "restaurant", "gym", "bookstore"]
    )
)


def demo_files() -> tuple[Path, Path, Path]:
    root = Path(tempfile.mkdtemp(prefix="repro-snap-demo-"))
    (root / "edges.txt").write_text(DEMO_EDGES + "\n")
    (root / "checkins.txt").write_text(DEMO_CHECKINS + "\n")
    (root / "categories.txt").write_text(DEMO_CATEGORIES + "\n")
    return root / "edges.txt", root / "checkins.txt", root / "categories.txt"


def main() -> None:
    if len(sys.argv) >= 3:
        edges, checkins = Path(sys.argv[1]), Path(sys.argv[2])
        categories = Path(sys.argv[3]) if len(sys.argv) > 3 else None
        print(f"loading SNAP dump: {edges} + {checkins}")
    else:
        edges, checkins, categories = demo_files()
        print("no files given - running on a bundled 8-user demo dump")

    dataset = load_dataset_from_snap("snap", edges, checkins, categories)
    print(dataset.describe())

    builder = InstanceBuilder(dataset, valid_hours=8.0, reachable_km=30.0)
    day = builder.richest_days(count=1, min_day=1)[0]
    instance = builder.build_day(day)
    print(f"day {day}: |S| = {instance.num_tasks}, |W| = {instance.num_workers}")

    config = PipelineConfig(num_topics=4, propagation_mode="fixed",
                            num_rrr_sets=4000, seed=2)
    influence = DITAPipeline(config).fit(instance).influence_model()
    prepared = PreparedInstance(instance, influence)

    for assigner in (MTAAssigner(), IAAssigner()):
        metrics = evaluate_assignment(
            assigner.name, assigner.assign(prepared), prepared
        )
        print(f"{metrics.algorithm}: assigned {metrics.num_assigned}, "
              f"AI {metrics.average_influence:.4f}, travel {metrics.average_travel_km:.2f} km")


if __name__ == "__main__":
    main()
