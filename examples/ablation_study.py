"""Which influence component matters most?  (Paper Figures 5-8.)

Runs the IA algorithm with each single component removed (IA-WP = no
affinity, IA-AP = no willingness, IA-AW = no propagation) across a task
sweep and prints the Average Influence series for both synthetic worlds.
"""

from repro import brightkite_like, foursquare_like, generate_dataset
from repro.experiments import (
    ExperimentRunner,
    ExperimentSettings,
    format_series,
    run_ablation_sweep,
)
from repro.framework import PipelineConfig


def main() -> None:
    settings = ExperimentSettings(scale=0.08, num_days=1, seed=7)
    pipeline = PipelineConfig(num_topics=12, propagation_mode="fixed",
                              num_rrr_sets=8_000, seed=7)

    for preset in (brightkite_like, foursquare_like):
        dataset = generate_dataset(preset(scale=0.08))
        runner = ExperimentRunner(dataset, settings, pipeline)
        result = run_ablation_sweep(runner, "num_tasks", settings.task_sweep)
        print()
        print(format_series(
            result, "average_influence",
            title=f"Average Influence vs |S| on {dataset.name}",
        ))
        best = max(
            result.algorithms(),
            key=lambda a: sum(result.metric_series(a, "average_influence")),
        )
        print(f"-> best configuration on {dataset.name}: {best}")


if __name__ == "__main__":
    main()
