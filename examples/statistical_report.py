"""Day-level statistics: how stable are the paper-style averages?

The paper reports plain means over 4 days.  This example runs the five
algorithms over several days, attaches bootstrap confidence intervals to
each mean, tests whether IA's Average-Influence lead over MTA is
statistically solid (paired bootstrap — day effects cancel), and writes a
markdown report of a small sweep.
"""

from repro import (
    DIAAssigner,
    EIAAssigner,
    IAAssigner,
    InstanceBuilder,
    MIAssigner,
    MTAAssigner,
    PipelineConfig,
    brightkite_like,
    generate_dataset,
)
from repro.experiments import (
    ExperimentRunner,
    ExperimentSettings,
    paired_bootstrap_delta,
    run_comparison_sweep,
    summarize_runs,
    write_report,
)
from repro.framework import Simulator


def main() -> None:
    dataset = generate_dataset(brightkite_like(scale=0.08, seed=31))
    builder = InstanceBuilder(dataset)
    days = builder.richest_days(count=4)
    print(f"{dataset.describe()}\nevaluation days: {days}")

    config = PipelineConfig(num_topics=12, propagation_mode="fixed",
                            num_rrr_sets=8000, seed=2)
    simulator = Simulator(config)
    algorithms = [MTAAssigner(), IAAssigner(), EIAAssigner(), DIAAssigner(),
                  MIAssigner()]

    per_day: dict[str, list] = {a.name: [] for a in algorithms}
    for day in days:
        instance = builder.build_day(day)
        for metrics in simulator.run_instance(instance, algorithms):
            per_day[metrics.algorithm].append(metrics)

    print(f"\nAverage Influence, mean [95% bootstrap CI] over {len(days)} days:")
    for name, ci in summarize_runs(per_day, "average_influence", seed=5).items():
        print(f"  {name:4s} {ci}")

    ia_series = [m.average_influence for m in per_day["IA"]]
    mta_series = [m.average_influence for m in per_day["MTA"]]
    delta = paired_bootstrap_delta(ia_series, mta_series, seed=5)
    verdict = "significant" if delta.significant else "not significant"
    print(f"\nIA − MTA on AI: {delta.mean_delta:+.4f} "
          f"[{delta.ci.lower:+.4f}, {delta.ci.upper:+.4f}] — {verdict} "
          f"(P(Δ>0) = {delta.probability_positive:.2f})")

    # A small radius sweep rendered as a markdown report.
    runner = ExperimentRunner(
        dataset,
        ExperimentSettings(scale=0.08, num_days=2, seed=31),
        config,
    )
    sweep = run_comparison_sweep(runner, "reachable_km", (5.0, 15.0, 25.0))
    path = write_report(
        {"Radius sweep (BK-like)": sweep},
        "sweep_report.md",
        heading="ITA reproduction — statistical report",
        preamble="Shapes over absolute numbers; see EXPERIMENTS.md.",
    )
    print(f"\nmarkdown report written to {path}")


if __name__ == "__main__":
    main()
