"""Play one day out online: batched arrivals, workers leave once assigned.

The paper's protocol ("a worker is online until the worker is assigned a
task"; tasks appear at their publication time) is usually collapsed into one
assignment round per day.  This example runs the full intra-day loop with
hourly batches and shows how assignment quality and pool sizes evolve —
including the effect of impatient workers who churn out after three hours
without an assignment.
"""

from repro import (
    DITAPipeline,
    IAAssigner,
    InstanceBuilder,
    PipelineConfig,
    brightkite_like,
    generate_dataset,
)
from repro.framework import OnlineSimulator, day_arrivals


def run_once(instance, arrivals, influence, patience_hours):
    simulator = OnlineSimulator(
        IAAssigner(),
        influence,
        batch_hours=1.0,
        patience_hours=patience_hours,
    )
    return simulator.run(instance, arrivals)


def main() -> None:
    dataset = generate_dataset(brightkite_like(scale=0.08, seed=21))
    builder = InstanceBuilder(dataset, valid_hours=5.0, reachable_km=25.0)
    day = builder.richest_days(count=1)[0]
    instance = builder.build_day(day)
    arrivals = day_arrivals(dataset, day)
    print(f"day {day}: {len(arrivals)} worker arrivals, "
          f"{instance.num_tasks} tasks published over the day")

    config = PipelineConfig(num_topics=15, propagation_mode="fixed",
                            num_rrr_sets=15_000, seed=9)
    influence = DITAPipeline(config).fit(instance).influence_model()

    patient = run_once(instance, arrivals, influence, patience_hours=None)
    impatient = run_once(instance, arrivals, influence, patience_hours=3.0)

    print("\nhour-by-hour (patient workers):")
    print(f"{'t':>6s} {'online':>7s} {'open':>6s} {'assigned':>9s} {'expired':>8s}")
    for step in patient.steps:
        if step.online_workers or step.open_tasks:
            print(f"{step.time:6.1f} {step.online_workers:7d} {step.open_tasks:6d} "
                  f"{step.assigned:9d} {step.expired_tasks:8d}")

    print(f"\n{'scenario':22s} {'assigned':>9s} {'expired':>8s} {'churned':>8s}")
    for name, result in (("online until assigned", patient),
                         ("3 h patience", impatient)):
        print(f"{name:22s} {result.total_assigned:9d} "
              f"{result.total_expired:8d} {result.total_churned:8d}")


if __name__ == "__main__":
    main()
