"""Platform-level seeding: which workers should a campaign inform first?

The paper scores one candidate worker per task; a task issuer running a
city-wide campaign faces the classical influence-maximization question
instead: pick the k workers whose combined cascades reach the most people.
With the library's RRR machinery this is a greedy max-coverage over the
already-sampled reverse-reachable sets (CELF), with the usual (1 - 1/e)
guarantee.

The example selects seed sets of growing size, compares them against both
random seeds and the top-degree heuristic, and validates the RIS estimate
with forward Independent Cascade simulation.
"""

import numpy as np

from repro import InstanceBuilder, brightkite_like, generate_dataset
from repro.propagation import (
    RRRCollection,
    SocialGraph,
    estimate_spread,
    sample_rrr_sets,
    select_seeds,
    spread_of_seeds,
)


def main() -> None:
    dataset = generate_dataset(brightkite_like(scale=0.08, seed=13))
    builder = InstanceBuilder(dataset)
    day = builder.richest_days(count=1)[0]
    instance = builder.build_day(day)

    graph = SocialGraph(instance.all_worker_ids, instance.social_edges)
    print(f"social network: {graph.num_workers} workers, "
          f"{graph.num_edges // 2} friendships")

    rng = np.random.default_rng(3)
    collection = RRRCollection(num_workers=graph.num_workers)
    roots, members = sample_rrr_sets(graph, 60_000, rng)
    collection.extend(roots, members)

    print(f"\n{'k':>3s} {'greedy':>9s} {'degree':>9s} {'random':>9s}")
    degree_order = np.argsort(graph.in_degree)[::-1]
    for k in (1, 2, 5, 10, 20):
        greedy = select_seeds(collection, k)
        degree_seeds = [int(w) for w in degree_order[:k]]
        random_seeds = [int(w) for w in rng.choice(graph.num_workers, k, replace=False)]
        print(f"{k:3d} {greedy.estimated_spread:9.2f} "
              f"{spread_of_seeds(collection, degree_seeds):9.2f} "
              f"{spread_of_seeds(collection, random_seeds):9.2f}")

    # Validate the k=5 greedy estimate with forward IC simulation from each
    # seed independently (an upper bound on the union cascade, close when
    # cascades overlap little).
    greedy5 = select_seeds(collection, 5)
    forward = sum(
        estimate_spread(graph, seed, runs=300, seed=7) for seed in greedy5.seeds
    )
    print(f"\nk=5 greedy: RIS union estimate = {greedy5.estimated_spread:.2f}, "
          f"sum of forward per-seed cascades = {forward:.2f}")
    print(f"seed workers (dense ids): {list(greedy5.seeds)}")


if __name__ == "__main__":
    main()
