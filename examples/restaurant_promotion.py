"""The paper's motivating scenario: promoting new restaurants.

A restaurant owner publishes a leaflet-distribution task and wants the
*most influential* worker — not merely the nearest one — so the promotion
spreads through the social network to people who would actually visit
(paper Section I, Figure 1).

This example contrasts the naive nearest-worker choice with the
influence-aware choice for a batch of "new restaurant" tasks and estimates
how many workers each promotion ultimately reaches.
"""

import numpy as np

from repro import (
    DITAPipeline,
    IAAssigner,
    InstanceBuilder,
    NearestNeighborAssigner,
    PipelineConfig,
    PreparedInstance,
    Task,
    evaluate_assignment,
    foursquare_like,
    generate_dataset,
)
from repro.propagation import estimate_spread


def main() -> None:
    dataset = generate_dataset(foursquare_like(scale=0.08, seed=3))
    builder = InstanceBuilder(dataset, valid_hours=6.0, reachable_km=25.0)
    day = builder.richest_days(count=1)[0]
    instance = builder.build_day(day)

    # Keep only "restaurant-like" tasks: the promotion batch.
    food_tasks = [
        t for t in instance.tasks
        if any(c in ("restaurant", "cafe", "diner", "steakhouse", "pizza_place")
               for c in t.categories)
    ]
    instance = instance.with_tasks(food_tasks[:25])
    print(f"promoting {instance.num_tasks} new restaurants among "
          f"{instance.num_workers} available workers")

    config = PipelineConfig(num_topics=15, propagation_mode="fixed",
                            num_rrr_sets=20_000, seed=5)
    models = DITAPipeline(config).fit(instance)
    influence = models.influence_model()
    prepared = PreparedInstance(instance, influence)

    naive = NearestNeighborAssigner().assign(prepared)
    aware = IAAssigner().assign(prepared)

    naive_metrics = evaluate_assignment("NN", naive, prepared)
    aware_metrics = evaluate_assignment("IA", aware, prepared)

    print(f"\n{'strategy':10s} {'assigned':>9s} {'AI':>9s} {'AP':>9s} {'travel km':>10s}")
    for metrics in (naive_metrics, aware_metrics):
        print(f"{metrics.algorithm:10s} {metrics.num_assigned:9d} "
              f"{metrics.average_influence:9.4f} {metrics.average_propagation:9.3f} "
              f"{metrics.average_travel_km:10.2f}")

    # Ground-truth check with forward IC simulation: how many workers does
    # the average promoter actually reach?
    graph = models.graph
    def average_cascade(assignment) -> float:
        sizes = [
            estimate_spread(graph, graph.index_of(pair.worker.worker_id),
                            runs=300, seed=11)
            for pair in assignment
        ]
        return float(np.mean(sizes)) if sizes else 0.0

    print(f"\nmean simulated cascade size: "
          f"nearest-worker = {average_cascade(naive):.2f}, "
          f"influence-aware = {average_cascade(aware):.2f}")


if __name__ == "__main__":
    main()
