"""Quickstart: generate a world, fit DITA, assign tasks, inspect metrics.

Run with:  python examples/quickstart.py
"""

from repro import (
    DIAAssigner,
    DITAPipeline,
    EIAAssigner,
    IAAssigner,
    InstanceBuilder,
    MIAssigner,
    MTAAssigner,
    PipelineConfig,
    PreparedInstance,
    brightkite_like,
    evaluate_assignment,
    generate_dataset,
)


def main() -> None:
    # 1. A synthetic check-in world standing in for Brightkite (see
    #    DESIGN.md §2 for why the substitution is faithful).
    dataset = generate_dataset(brightkite_like(scale=0.08, seed=7))
    print(dataset.describe())

    # 2. One day of the platform: tasks from today's venues, workers from
    #    today's check-in users, histories from everything before.
    builder = InstanceBuilder(dataset, valid_hours=5.0, reachable_km=25.0)
    day = builder.richest_days(count=1)[0]
    instance = builder.build_day(day)
    print(f"day {day}: |S| = {instance.num_tasks}, |W| = {instance.num_workers}")

    # 3. Fit the three influence components (LDA affinity, HA willingness,
    #    RPO propagation) and combine them.
    config = PipelineConfig(num_topics=15, propagation_mode="rpo",
                            epsilon=0.25, max_rrr_sets=30_000, seed=1)
    models = DITAPipeline(config).fit(instance)
    influence = models.influence_model()
    print(f"propagation: {len(models.propagation)} RRR sets sampled")

    # 4. Assign with every algorithm and compare the paper's five metrics.
    prepared = PreparedInstance(instance, influence)
    print(f"\n{'algo':6s} {'assigned':>9s} {'AI':>9s} {'AP':>8s} {'travel km':>10s}")
    for assigner in (MTAAssigner(), IAAssigner(), EIAAssigner(), DIAAssigner(), MIAssigner()):
        assignment = assigner.assign(prepared)
        metrics = evaluate_assignment(assigner.name, assignment, prepared)
        print(
            f"{metrics.algorithm:6s} {metrics.num_assigned:9d} "
            f"{metrics.average_influence:9.4f} {metrics.average_propagation:8.3f} "
            f"{metrics.average_travel_km:10.2f}"
        )


if __name__ == "__main__":
    main()
