"""Legacy setup shim: lets ``pip install -e .`` work offline (no PEP-517
build isolation, no wheel requirement).  All metadata lives in
``pyproject.toml``."""

from setuptools import setup

setup()
