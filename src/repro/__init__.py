"""repro — a reproduction of "Influence-aware Task Assignment in Spatial
Crowdsourcing" (Chen et al., ICDE 2022).

The library implements the full DITA framework: LDA-based worker-task
affinity, Historical-Acceptance worker willingness, RRR/RPO worker
propagation, and the influence-aware assignment algorithms (IA, EIA, DIA)
with the MTA and MI baselines, on top of from-scratch substrates (LDA,
random walks, independent-cascade sampling, min-cost max-flow) and a
synthetic check-in world standing in for the Brightkite/FourSquare datasets.

Quickstart
----------
>>> from repro import (
...     brightkite_like, generate_dataset, InstanceBuilder,
...     DITAPipeline, PipelineConfig, PreparedInstance, IAAssigner,
... )
>>> dataset = generate_dataset(brightkite_like(scale=0.05))
>>> instance = InstanceBuilder(dataset).build_day(day=5)
>>> models = DITAPipeline(PipelineConfig().fast()).fit(instance)
>>> prepared = PreparedInstance(instance, models.influence_model())
>>> assignment = IAAssigner().assign(prepared)
"""

from repro.entities import Assignment, CheckIn, PerformedTask, Task, TaskHistory, Worker
from repro.geo import BoundingBox, GridIndex, Point
from repro.data import (
    CheckInDataset,
    InstanceBuilder,
    SCInstance,
    SyntheticConfig,
    Venue,
    brightkite_like,
    foursquare_like,
    generate_dataset,
    load_dataset_from_snap,
)
from repro.affinity import AffinityModel
from repro.willingness import HistoricalAcceptance
from repro.propagation import RPO, RRRCollection, SocialGraph
from repro.influence import InfluenceComponents, InfluenceModel, location_entropy
from repro.assignment import (
    Assigner,
    DIAAssigner,
    EIAAssigner,
    IAAssigner,
    MIAssigner,
    MTAAssigner,
    NearestNeighborAssigner,
    PreparedInstance,
)
from repro.framework import (
    DITAPipeline,
    MetricsResult,
    PaperDefaults,
    PipelineConfig,
    Simulator,
    evaluate_assignment,
)
from repro.stream import (
    AdaptiveTrigger,
    CountTrigger,
    EventLog,
    HybridTrigger,
    StreamRuntime,
    TimeWindowTrigger,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # entities & geo
    "Task", "Worker", "CheckIn", "PerformedTask", "TaskHistory", "Assignment",
    "Point", "BoundingBox", "GridIndex",
    # data
    "CheckInDataset", "Venue", "SyntheticConfig", "generate_dataset",
    "brightkite_like", "foursquare_like", "InstanceBuilder", "SCInstance",
    "load_dataset_from_snap",
    # influence components
    "AffinityModel", "HistoricalAcceptance", "SocialGraph", "RPO",
    "RRRCollection", "InfluenceModel", "InfluenceComponents", "location_entropy",
    # assignment
    "Assigner", "PreparedInstance", "MTAAssigner", "IAAssigner", "EIAAssigner",
    "DIAAssigner", "MIAssigner", "NearestNeighborAssigner",
    # framework
    "DITAPipeline", "PipelineConfig", "PaperDefaults", "Simulator",
    "MetricsResult", "evaluate_assignment",
    # streaming runtime
    "StreamRuntime", "EventLog", "CountTrigger", "TimeWindowTrigger",
    "HybridTrigger", "AdaptiveTrigger",
]
