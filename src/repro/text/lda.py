"""Latent Dirichlet Allocation, implemented from scratch.

Two trainers share one interface:

* :class:`GibbsLDA` — collapsed Gibbs sampling (Griffiths & Steyvers 2004).
  Exact in the limit; used as the reference implementation and for tests.
* :class:`VariationalLDA` — batch variational Bayes (Blei et al. 2003,
  with the exp-digamma updates of Hoffman et al. 2010), fully vectorized.
  This is the default engine for the experiment pipeline, where corpora have
  thousands of documents.

Interface
---------
``fit(documents)`` trains on tokenized documents, then

* ``doc_topic_`` is the ``D x K`` matrix of document-topic proportions
  (rows sum to 1) — the paper's ``P(t | d)``;
* ``topic_word_`` is the ``K x V`` matrix of topic-word probabilities
  (rows sum to 1) — the paper's ``P(v | t)``;
* ``infer(document)`` folds in an unseen document and returns its length-K
  topic proportion vector.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np
from scipy.special import digamma

from repro.exceptions import NotFittedError
from repro.text.corpus import Corpus


class LDAModel(abc.ABC):
    """Common base class for the two LDA trainers."""

    def __init__(self, num_topics: int, alpha: float | None = None, beta: float = 0.01, seed: int = 0) -> None:
        if num_topics < 1:
            raise ValueError(f"num_topics must be >= 1, got {num_topics}")
        self.num_topics = num_topics
        #: Dirichlet prior on document-topic proportions; the common
        #: 50/K heuristic unless given explicitly.
        self.alpha = alpha if alpha is not None else 50.0 / num_topics
        #: Dirichlet prior on topic-word distributions.
        self.beta = beta
        self.seed = seed
        self.corpus: Corpus | None = None
        self.doc_topic_: np.ndarray | None = None
        self.topic_word_: np.ndarray | None = None

    def _require_fitted(self) -> Corpus:
        if self.corpus is None or self.topic_word_ is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.corpus

    @abc.abstractmethod
    def fit(self, documents: Sequence[Sequence[str]]) -> "LDAModel":
        """Train on tokenized documents and return ``self``."""

    @abc.abstractmethod
    def infer(self, document: Sequence[str]) -> np.ndarray:
        """Return the topic proportions of an unseen document."""

    def top_words(self, topic: int, count: int = 10) -> list[tuple[str, float]]:
        """The ``count`` highest-probability words of one topic.

        Returns ``(word, probability)`` pairs, descending — the standard
        way to inspect what a topic "means".
        """
        corpus = self._require_fitted()
        assert self.topic_word_ is not None
        if not 0 <= topic < self.num_topics:
            raise ValueError(f"topic {topic} out of range [0, {self.num_topics})")
        row = self.topic_word_[topic]
        order = np.argsort(row)[::-1][:count]
        return [(corpus.vocabulary.word_of(int(i)), float(row[i])) for i in order]

    def held_out_perplexity(self, documents: Sequence[Sequence[str]]) -> float:
        """Per-token perplexity of unseen documents.

        Each document is folded in with :meth:`infer` to get its topic
        proportions, then scored token by token under the trained
        topic-word distributions: ``exp(-mean log p(w | theta, beta))``.
        Lower is better; out-of-vocabulary tokens are skipped (they carry
        no information about the fitted model).
        """
        corpus = self._require_fitted()
        assert self.topic_word_ is not None
        total, count = 0.0, 0
        for document in documents:
            tokens = corpus.encode(document)
            if not len(tokens):
                continue
            theta = self.infer(document)
            probs = theta @ self.topic_word_[:, tokens]
            total += float(np.log(np.maximum(probs, 1e-300)).sum())
            count += len(tokens)
        if count == 0:
            raise ValueError("no in-vocabulary tokens in the held-out documents")
        return float(np.exp(-total / count))

    def perplexity_proxy(self) -> float:
        """A train-set log-likelihood proxy (mean per-token log prob).

        Not a true held-out perplexity; useful to check that training
        monotonically improves and for sanity assertions in tests.
        """
        corpus = self._require_fitted()
        assert self.doc_topic_ is not None and self.topic_word_ is not None
        total, count = 0.0, 0
        for d, tokens in enumerate(corpus.doc_tokens):
            if not len(tokens):
                continue
            probs = self.doc_topic_[d] @ self.topic_word_[:, tokens]
            total += float(np.log(np.maximum(probs, 1e-300)).sum())
            count += len(tokens)
        return total / max(count, 1)


class GibbsLDA(LDAModel):
    """Collapsed Gibbs sampling LDA.

    Maintains the usual count tables (``n_dk``, ``n_kw``, ``n_k``) and
    resamples every token's topic assignment each sweep.  Suited to small
    corpora; complexity is O(iterations * tokens * K).
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float | None = None,
        beta: float = 0.01,
        iterations: int = 200,
        seed: int = 0,
    ) -> None:
        super().__init__(num_topics, alpha, beta, seed)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self._n_kw: np.ndarray | None = None
        self._n_k: np.ndarray | None = None

    def fit(self, documents: Sequence[Sequence[str]]) -> "GibbsLDA":
        corpus = Corpus(documents)
        self.corpus = corpus
        rng = np.random.default_rng(self.seed)
        K, V, D = self.num_topics, corpus.num_words, len(corpus)

        n_dk = np.zeros((D, K), dtype=np.float64)
        n_kw = np.zeros((K, V), dtype=np.float64)
        n_k = np.zeros(K, dtype=np.float64)
        assignments: list[np.ndarray] = []
        for d, tokens in enumerate(corpus.doc_tokens):
            z = rng.integers(K, size=len(tokens))
            assignments.append(z)
            for token, topic in zip(tokens, z):
                n_dk[d, topic] += 1
                n_kw[topic, token] += 1
                n_k[topic] += 1

        alpha, beta = self.alpha, self.beta
        for _ in range(self.iterations):
            for d, tokens in enumerate(corpus.doc_tokens):
                z = assignments[d]
                for i in range(len(tokens)):
                    w = tokens[i]
                    topic = z[i]
                    n_dk[d, topic] -= 1
                    n_kw[topic, w] -= 1
                    n_k[topic] -= 1
                    weights = (n_dk[d] + alpha) * (n_kw[:, w] + beta) / (n_k + V * beta)
                    cumulative = np.cumsum(weights)
                    topic = int(np.searchsorted(cumulative, rng.random() * cumulative[-1]))
                    topic = min(topic, K - 1)
                    z[i] = topic
                    n_dk[d, topic] += 1
                    n_kw[topic, w] += 1
                    n_k[topic] += 1

        self._n_kw = n_kw
        self._n_k = n_k
        self.topic_word_ = (n_kw + beta) / (n_k[:, None] + V * beta)
        doc_topic = n_dk + alpha
        self.doc_topic_ = doc_topic / doc_topic.sum(axis=1, keepdims=True)
        return self

    def infer(self, document: Sequence[str], iterations: int = 50) -> np.ndarray:
        """Fold-in Gibbs sampling for an unseen document."""
        corpus = self._require_fitted()
        assert self._n_kw is not None and self._n_k is not None
        tokens = corpus.encode(document)
        K, V = self.num_topics, corpus.num_words
        alpha, beta = self.alpha, self.beta
        if not len(tokens):
            return np.full(K, 1.0 / K)

        rng = np.random.default_rng(self.seed + 1)
        z = rng.integers(K, size=len(tokens))
        n_k_local = np.zeros(K, dtype=np.float64)
        for topic in z:
            n_k_local[topic] += 1
        for _ in range(iterations):
            for i, w in enumerate(tokens):
                n_k_local[z[i]] -= 1
                weights = (n_k_local + alpha) * (self._n_kw[:, w] + beta) / (self._n_k + V * beta)
                cumulative = np.cumsum(weights)
                topic = int(np.searchsorted(cumulative, rng.random() * cumulative[-1]))
                topic = min(topic, K - 1)
                z[i] = topic
                n_k_local[topic] += 1
        theta = n_k_local + alpha
        return theta / theta.sum()


class VariationalLDA(LDAModel):
    """Batch variational Bayes LDA, fully vectorized.

    The E-step optimizes per-document variational Dirichlets ``gamma`` with
    the exp-digamma fixed point; the M-step updates the topic-word
    variational Dirichlet ``lambda`` from expected counts.  All updates are
    dense matrix operations over the ``D x V`` count matrix, which is
    exactly the right trade-off for our small vocabularies (≈90 categories).
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float | None = None,
        beta: float = 0.01,
        max_iter: int = 60,
        e_step_iter: int = 40,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        super().__init__(num_topics, alpha, beta, seed)
        self.max_iter = max_iter
        self.e_step_iter = e_step_iter
        self.tol = tol
        self._lambda: np.ndarray | None = None
        self._exp_elog_beta: np.ndarray | None = None

    @staticmethod
    def _dirichlet_expectation(matrix: np.ndarray) -> np.ndarray:
        """E[log X] for rows of Dirichlet-distributed ``matrix``."""
        return digamma(matrix) - digamma(matrix.sum(axis=1, keepdims=True))

    def _e_step(self, counts: np.ndarray, exp_elog_beta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Optimize ``gamma`` for all documents; return (gamma, sstats)."""
        D = counts.shape[0]
        K = self.num_topics
        rng = np.random.default_rng(self.seed)
        gamma = rng.gamma(100.0, 0.01, size=(D, K))
        for _ in range(self.e_step_iter):
            exp_elog_theta = np.exp(self._dirichlet_expectation(gamma))
            # phi_norm[d, v] = sum_k exp_elog_theta[d, k] * exp_elog_beta[k, v]
            phi_norm = exp_elog_theta @ exp_elog_beta + 1e-100
            new_gamma = self.alpha + exp_elog_theta * ((counts / phi_norm) @ exp_elog_beta.T)
            change = float(np.abs(new_gamma - gamma).mean())
            gamma = new_gamma
            if change < self.tol:
                break
        exp_elog_theta = np.exp(self._dirichlet_expectation(gamma))
        phi_norm = exp_elog_theta @ exp_elog_beta + 1e-100
        sstats = exp_elog_theta.T @ (counts / phi_norm)
        return gamma, sstats

    def fit(self, documents: Sequence[Sequence[str]]) -> "VariationalLDA":
        corpus = Corpus(documents)
        self.corpus = corpus
        counts = corpus.count_matrix()
        V = corpus.num_words
        rng = np.random.default_rng(self.seed)
        lam = rng.gamma(100.0, 0.01, size=(self.num_topics, V))

        last_bound = -np.inf
        for _ in range(self.max_iter):
            exp_elog_beta = np.exp(self._dirichlet_expectation(lam))
            gamma, sstats = self._e_step(counts, exp_elog_beta)
            lam = self.beta + sstats * exp_elog_beta
            # Cheap convergence proxy: mean absolute change of the
            # normalized topics.
            bound = float(np.log(np.maximum(lam, 1e-300)).mean())
            if abs(bound - last_bound) < self.tol:
                break
            last_bound = bound

        self._lambda = lam
        self._exp_elog_beta = np.exp(self._dirichlet_expectation(lam))
        self.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        gamma, _ = self._e_step(counts, self._exp_elog_beta)
        self.doc_topic_ = gamma / gamma.sum(axis=1, keepdims=True)
        return self

    def infer(self, document: Sequence[str]) -> np.ndarray:
        """Variational fold-in of an unseen document."""
        corpus = self._require_fitted()
        assert self._exp_elog_beta is not None
        tokens = corpus.encode(document)
        K = self.num_topics
        if not len(tokens):
            return np.full(K, 1.0 / K)
        counts = np.zeros((1, corpus.num_words))
        np.add.at(counts[0], tokens, 1.0)
        gamma, _ = self._e_step(counts, self._exp_elog_beta)
        theta = gamma[0]
        return theta / theta.sum()
