"""Vocabulary and corpus containers for the LDA substrate."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DataError


class Vocabulary:
    """A bidirectional word <-> id mapping.

    Ids are dense and assigned in first-seen order, which keeps the
    topic-word matrices small and reproducible.
    """

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: dict[str, int] = {}
        self._id_to_word: list[str] = []
        for word in words:
            self.add(word)

    def add(self, word: str) -> int:
        """Add ``word`` if unseen; return its id either way."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        word_id = len(self._id_to_word)
        self._word_to_id[word] = word_id
        self._id_to_word.append(word)
        return word_id

    def id_of(self, word: str) -> int:
        """Return the id of ``word``; raises :class:`KeyError` if unknown."""
        return self._word_to_id[word]

    def get(self, word: str) -> int | None:
        """Return the id of ``word`` or ``None`` if unknown."""
        return self._word_to_id.get(word)

    def word_of(self, word_id: int) -> str:
        """Return the word with id ``word_id``."""
        return self._id_to_word[word_id]

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)


class Corpus:
    """A tokenized corpus with a shared vocabulary.

    Documents are stored both as id sequences (for Gibbs sampling) and as a
    dense document-term count matrix (for variational inference).  Empty
    documents are allowed — workers with no history simply get the prior.
    """

    def __init__(self, documents: Sequence[Sequence[str]], vocabulary: Vocabulary | None = None) -> None:
        if vocabulary is None:
            vocabulary = Vocabulary()
            freeze = False
        else:
            freeze = True
        self.vocabulary = vocabulary
        self.doc_tokens: list[np.ndarray] = []
        for doc in documents:
            ids = []
            for word in doc:
                if freeze:
                    word_id = vocabulary.get(word)
                    if word_id is None:
                        continue  # out-of-vocabulary words are dropped
                else:
                    word_id = vocabulary.add(word)
                ids.append(word_id)
            self.doc_tokens.append(np.array(ids, dtype=np.int64))
        if len(self.vocabulary) == 0:
            raise DataError("corpus has an empty vocabulary (all documents empty?)")

    def __len__(self) -> int:
        return len(self.doc_tokens)

    @property
    def num_words(self) -> int:
        """Vocabulary size ``V``."""
        return len(self.vocabulary)

    @property
    def num_tokens(self) -> int:
        """Total token instances across documents."""
        return int(sum(len(t) for t in self.doc_tokens))

    def count_matrix(self) -> np.ndarray:
        """Return the dense ``D x V`` document-term count matrix."""
        matrix = np.zeros((len(self.doc_tokens), self.num_words), dtype=np.float64)
        for row, tokens in enumerate(self.doc_tokens):
            if len(tokens):
                np.add.at(matrix[row], tokens, 1.0)
        return matrix

    def encode(self, document: Sequence[str]) -> np.ndarray:
        """Encode an unseen document against the existing vocabulary,
        silently dropping out-of-vocabulary words."""
        ids = [self.vocabulary.get(w) for w in document]
        return np.array([i for i in ids if i is not None], dtype=np.int64)
