"""Text-modeling substrate: vocabulary/corpus handling and LDA.

The paper trains Latent Dirichlet Allocation over "documents" made of the
task categories each worker performed (Figure 3).  This package implements
LDA from scratch twice:

* :class:`GibbsLDA` — collapsed Gibbs sampling, the textbook exact-ish
  sampler, used as the correctness reference on small corpora;
* :class:`VariationalLDA` — batch variational Bayes (Blei et al. 2003 /
  Hoffman et al. 2010), fully vectorized with numpy/scipy and fast enough
  for the full experiment pipeline.

Both expose the same interface (``fit`` / ``infer`` / ``doc_topic_`` /
``topic_word_``), so the affinity layer is agnostic to the trainer.
"""

from repro.text.corpus import Corpus, Vocabulary
from repro.text.lda import GibbsLDA, VariationalLDA, LDAModel

__all__ = ["Corpus", "Vocabulary", "GibbsLDA", "VariationalLDA", "LDAModel"]
