"""Typed stream events and the time-ordered :class:`EventLog`.

The paper's online protocol is a *stream*: workers come online, tasks are
published and later expire, and (beyond the paper) workers may churn out or
tasks be cancelled.  This module gives each of those occurrences a typed
event and merges arbitrary event sources into one deterministic, replayable
log.

Ordering
--------
Events sort by ``(time, phase, entity_id, seq)``.  The phase encodes the
round semantics of :class:`~repro.framework.online.OnlineSimulator` exactly:

* *admission* phases (arrival < publish < cancel) apply at a round whose
  time ``T`` satisfies ``event.time <= T`` — a worker arriving exactly at a
  round boundary participates in that round;
* *deferred* phases (expiry, churn) apply only when ``event.time < T`` —
  a task whose deadline coincides with the boundary is still assignable in
  that round (the simulator's strict ``expiry_time < current`` check).

Because the tie-break ends in the entity id, simultaneous events replay in
the same order no matter how the sources were interleaved before the merge
— provided no two *distinct* events share all of (time, phase, entity id).
Such a degenerate pair (e.g. the same worker arriving twice at the same
instant with different locations) keeps source order under the stable sort,
so streams that need that case replayable must disambiguate timestamps
themselves.

Construction
------------
:meth:`EventLog.merged` heap-merges already-sorted iterables;
:func:`day_stream` turns a :class:`~repro.data.CheckInDataset` day into the
exact event set the batched :class:`OnlineSimulator` plays; and
:func:`synthetic_stream` generates Poisson-style arrival/publication streams
(with optional churn and cancellations) for load tests far beyond the
paper's scale.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.dataset import CheckInDataset
from repro.data.instance import InstanceBuilder, SCInstance
from repro.entities import Task, Worker
from repro.geo import Point

#: Admission phases: the event applies at round time ``T`` when ``time <= T``.
PHASE_ARRIVAL = 0
PHASE_PUBLISH = 1
PHASE_CANCEL = 2
#: Deferred phases: the event applies only when ``time < T`` (strict), so a
#: deadline exactly on a round boundary does not bind in that round.
PHASE_EXPIRY = 3
PHASE_CHURN = 4

#: First deferred phase — the drain cutoff used by the runtime.
DEFERRED_PHASE = PHASE_EXPIRY


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """Base event: a timestamp plus the ordering phase."""

    time: float

    phase: int = -1  # overridden per subclass

    @property
    def entity_id(self) -> int:
        """The worker/task id the event concerns (tie-break component)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class WorkerArrivalEvent(StreamEvent):
    """A worker comes online (re-arrival replaces the pooled worker)."""

    worker: Worker = None  # type: ignore[assignment]
    phase: int = PHASE_ARRIVAL

    @property
    def entity_id(self) -> int:
        return self.worker.worker_id


@dataclass(frozen=True, slots=True)
class TaskPublishEvent(StreamEvent):
    """A task becomes available at its publication time."""

    task: Task = None  # type: ignore[assignment]
    phase: int = PHASE_PUBLISH

    @property
    def entity_id(self) -> int:
        return self.task.task_id


@dataclass(frozen=True, slots=True)
class TaskCancelEvent(StreamEvent):
    """The requester withdraws an open task before its deadline."""

    task_id: int = -1
    phase: int = PHASE_CANCEL

    @property
    def entity_id(self) -> int:
        return self.task_id


@dataclass(frozen=True, slots=True)
class TaskExpiryEvent(StreamEvent):
    """A task's deadline passes; no-op if it was assigned or cancelled."""

    task_id: int = -1
    phase: int = PHASE_EXPIRY

    @property
    def entity_id(self) -> int:
        return self.task_id


@dataclass(frozen=True, slots=True)
class WorkerChurnEvent(StreamEvent):
    """A worker goes offline; no-op if already assigned (or never pooled)."""

    worker_id: int = -1
    phase: int = PHASE_CHURN

    @property
    def entity_id(self) -> int:
        return self.worker_id


def _sort_key(event: StreamEvent) -> tuple[float, int, int]:
    return (event.time, event.phase, event.entity_id)


class EventLog:
    """An immutable, time-ordered sequence of stream events.

    The log is materialized (not a consuming heap) so that a cursor index is
    a complete description of replay progress — checkpoints store the cursor
    and resumed runs re-read the identical tail.
    """

    def __init__(self, events: Iterable[StreamEvent]) -> None:
        staged = list(events)
        staged.sort(key=_sort_key)
        self._events: tuple[StreamEvent, ...] = tuple(staged)

    @classmethod
    def merged(cls, *sources: Iterable[StreamEvent]) -> "EventLog":
        """Combine several event sources into one deterministic log.

        The constructor's single ordering pass (stable sort on
        ``(time, phase, entity_id)``) subsumes any merge, so sources need
        no internal ordering and contribute no extra per-source cost.
        """
        return cls(chain(*sources))

    # -------------------------------------------------------------- sequence
    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> StreamEvent:
        return self._events[index]

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[StreamEvent, ...]:
        """The ordered events (immutable)."""
        return self._events

    # ------------------------------------------------------------ properties
    def start_time(self) -> float | None:
        """Earliest admission-event time (``None`` if no admissions)."""
        times = [
            ev.time for ev in self._events if ev.phase in (PHASE_ARRIVAL, PHASE_PUBLISH)
        ]
        return min(times) if times else None

    def has_arrivals(self) -> bool:
        """Whether any worker-arrival event is present."""
        return any(ev.phase == PHASE_ARRIVAL for ev in self._events)

    def last_deadline(self) -> float | None:
        """Latest expiry-event time (the natural default end of a run)."""
        times = [ev.time for ev in self._events if ev.phase == PHASE_EXPIRY]
        return max(times) if times else None

    def fingerprint(self) -> str:
        """A digest of every event, payloads included.

        Stored in checkpoints so a resume against a different log fails
        fast instead of silently replaying the wrong stream — including
        logs with identical timing but different worker/task attributes
        (e.g. the same day rebuilt with another reachable radius).
        """
        digest = hashlib.sha256()
        for event in self._events:
            digest.update(
                struct.pack("<dqq", event.time, event.phase, event.entity_id)
            )
            if isinstance(event, WorkerArrivalEvent):
                worker = event.worker
                digest.update(
                    struct.pack(
                        "<dddd",
                        worker.location.x,
                        worker.location.y,
                        worker.reachable_km,
                        worker.speed_kmh,
                    )
                )
            elif isinstance(event, TaskPublishEvent):
                task = event.task
                digest.update(
                    struct.pack(
                        "<ddddq",
                        task.location.x,
                        task.location.y,
                        task.publication_time,
                        task.valid_hours,
                        -1 if task.venue_id is None else task.venue_id,
                    )
                )
                for category in task.categories:
                    digest.update(category.encode("utf-8"))
                    digest.update(b"\x00")
        return digest.hexdigest()


def expiry_events(tasks: Sequence[Task]) -> list[TaskExpiryEvent]:
    """One deadline event per task, at ``publication_time + valid_hours``."""
    return [TaskExpiryEvent(time=task.expiry_time, task_id=task.task_id) for task in tasks]


def log_from_arrivals(
    arrivals: Iterable["object"],
    tasks: Sequence[Task],
    extra: Iterable[StreamEvent] = (),
) -> EventLog:
    """Build the log the batched online simulator implicitly plays.

    ``arrivals`` is a sequence of
    :class:`~repro.framework.online.WorkerArrival` (duck-typed: anything with
    ``worker`` and ``arrival_time``); each task contributes a publish and an
    expiry event.  ``extra`` may add churn/cancellation events.
    """
    events: list[StreamEvent] = [
        WorkerArrivalEvent(time=a.arrival_time, worker=a.worker) for a in arrivals
    ]
    events.extend(
        TaskPublishEvent(time=task.publication_time, task=task) for task in tasks
    )
    events.extend(expiry_events(tasks))
    events.extend(extra)
    return EventLog(events)


def day_stream(
    dataset: CheckInDataset,
    day: int,
    valid_hours: float = 5.0,
    reachable_km: float = 25.0,
    speed_kmh: float = 5.0,
) -> tuple[SCInstance, EventLog]:
    """One dataset day as ``(base_instance, event_log)``.

    The base instance supplies histories, the social network and venue
    visits (its worker list is superseded by the arrival events), exactly as
    :meth:`OnlineSimulator.run` consumes
    :func:`~repro.framework.online.day_arrivals`.
    """
    from repro.framework.online import day_arrivals

    builder = InstanceBuilder(
        dataset, valid_hours=valid_hours, reachable_km=reachable_km, speed_kmh=speed_kmh
    )
    instance = builder.build_day(day)
    arrivals = day_arrivals(
        dataset, day, reachable_km=reachable_km, speed_kmh=speed_kmh
    )
    return instance, log_from_arrivals(arrivals, instance.tasks)


def synthetic_stream(
    num_workers: int,
    num_tasks: int,
    duration_hours: float = 24.0,
    area_km: float = 50.0,
    valid_hours: float = 5.0,
    reachable_km: float = 25.0,
    speed_kmh: float = 5.0,
    churn_fraction: float = 0.0,
    cancel_fraction: float = 0.0,
    seed: int = 0,
) -> tuple[SCInstance, EventLog]:
    """A Poisson-style synthetic stream for load tests.

    Workers arrive and tasks publish uniformly over ``[0, duration_hours)``
    on an ``area_km`` square (a homogeneous Poisson process conditioned on
    the totals).  A ``churn_fraction`` of workers goes offline after an
    exponential online period; a ``cancel_fraction`` of tasks is withdrawn
    halfway to its deadline.  Scaling ``num_workers``/``num_tasks`` with the
    duration fixed raises the arrival *rate* — the bench runs 10-100x the
    paper's per-day volumes this way.
    """
    if num_workers < 0 or num_tasks < 0:
        raise ValueError("num_workers and num_tasks must be non-negative")
    if duration_hours <= 0:
        raise ValueError(f"duration_hours must be positive, got {duration_hours}")
    rng = np.random.default_rng(seed)
    events: list[StreamEvent] = []

    worker_times = np.sort(rng.uniform(0.0, duration_hours, size=num_workers))
    worker_xy = rng.uniform(0.0, area_km, size=(num_workers, 2))
    for worker_id in range(num_workers):
        worker = Worker(
            worker_id=worker_id,
            location=Point(float(worker_xy[worker_id, 0]), float(worker_xy[worker_id, 1])),
            reachable_km=reachable_km,
            speed_kmh=speed_kmh,
        )
        events.append(
            WorkerArrivalEvent(time=float(worker_times[worker_id]), worker=worker)
        )

    task_times = np.sort(rng.uniform(0.0, duration_hours, size=num_tasks))
    task_xy = rng.uniform(0.0, area_km, size=(num_tasks, 2))
    tasks = [
        Task(
            task_id=task_id,
            location=Point(float(task_xy[task_id, 0]), float(task_xy[task_id, 1])),
            publication_time=float(task_times[task_id]),
            valid_hours=valid_hours,
        )
        for task_id in range(num_tasks)
    ]
    events.extend(TaskPublishEvent(time=t.publication_time, task=t) for t in tasks)
    events.extend(expiry_events(tasks))

    if churn_fraction > 0.0 and num_workers:
        churners = np.flatnonzero(rng.random(num_workers) < churn_fraction)
        stays = rng.exponential(scale=2.0, size=len(churners))
        for slot, worker_id in enumerate(churners):
            events.append(
                WorkerChurnEvent(
                    time=float(worker_times[worker_id] + stays[slot]),
                    worker_id=int(worker_id),
                )
            )
    if cancel_fraction > 0.0 and num_tasks:
        cancelled = np.flatnonzero(rng.random(num_tasks) < cancel_fraction)
        for task_id in cancelled:
            task = tasks[task_id]
            events.append(
                TaskCancelEvent(
                    time=task.publication_time + 0.5 * task.valid_hours,
                    task_id=int(task_id),
                )
            )

    base = SCInstance(
        name=f"synthetic-stream-{seed}",
        current_time=0.0,
        tasks=[],
        workers=[],
        histories={},
        social_edges=[],
        all_worker_ids=tuple(range(num_workers)),
    )
    return base, EventLog(events)
