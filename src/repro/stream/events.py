"""Typed stream events and the columnar, time-ordered :class:`EventLog`.

The paper's online protocol is a *stream*: workers come online, tasks are
published and later expire, and (beyond the paper) workers may churn out or
tasks be cancelled.  This module gives each of those occurrences a typed
event and merges arbitrary event sources into one deterministic, replayable
log.

Storage model
-------------
The log is **columnar**: one structured numpy array
(:attr:`EventLog.columns` with fields ``time``, ``phase``, ``kind``,
``entity_id``, ``payload``, ``x``, ``y``) plus object payload *side-tables*
holding the :class:`~repro.entities.Worker` / :class:`~repro.entities.Task`
each arrival/publish row introduces.  Building, cursor replay
(:meth:`EventLog.drain_stop`), count scheduling
(:meth:`EventLog.next_count_time`), shard planning
(:meth:`EventLog.cell_keys`) and fingerprinting are array operations; the
per-event dataclass wrappers are materialized lazily, only where object
access is genuinely wanted (``log[i]``, iteration).

Ordering
--------
Events sort by ``(time, phase, entity_id, kind, seq)``.  The phase encodes
the round semantics of :class:`~repro.framework.online.OnlineSimulator`
exactly:

* *admission* phases (arrival < publish < cancel) apply at a round whose
  time ``T`` satisfies ``event.time <= T`` — a worker arriving exactly at a
  round boundary participates in that round;
* *deferred* phases (expiry, churn) apply only when ``time < T`` —
  a task whose deadline coincides with the boundary is still assignable in
  that round (the simulator's strict ``expiry_time < current`` check).

Because the tie-break runs through entity id and kind, simultaneous events
replay in the same order no matter how the sources were interleaved before
the merge — an arrival and a relocation of the same worker at the same
instant deterministically order arrival-first — provided no two *distinct*
events share all of (time, phase, entity id, kind).  Such a degenerate
pair (e.g. the same worker arriving twice at the same instant with
different locations) keeps source order under the stable sort, so streams
that need that case replayable must disambiguate timestamps themselves.

Construction
------------
:meth:`EventLog.merged` heap-merges already-sorted iterables;
:meth:`EventLog.from_columns` builds straight from arrays (no per-event
wrappers at all — the path the high-rate generators use);
:func:`day_stream` turns a :class:`~repro.data.CheckInDataset` day into the
exact event set the batched :class:`OnlineSimulator` plays;
:func:`multi_day_stream` chains several days into one continuous replay
with overnight relocation and churn between them; and
:func:`synthetic_stream` generates Poisson-style arrival/publication streams
(with optional churn, cancellations, spatially separated *clusters* and
multi-day relocation waves) for load tests far beyond the paper's scale.

Relocation
----------
:class:`WorkerRelocateEvent` (kind 5) shares the arrival phase: a live
worker's location update is an admission-time change.  The log synthesizes
the relocated :class:`~repro.entities.Worker` payload at construction by
composing the worker's most recent prior arrival/relocation with the new
coordinates, so every worker row — original or relocated — carries a full
payload: replay applies it directly, :meth:`EventLog.cell_keys` sees the
relocated position (which is how the shard planner's never-split invariant
extends to relocation for free — the layout is planned from *every*
location the log can ever pool), and checkpoints reference it by row index.
A relocation of a worker who is not pooled (already assigned or churned)
applies as a no-op.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.dataset import CheckInDataset
from repro.data.instance import InstanceBuilder, SCInstance
from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.geo import Point

#: Admission phases: the event applies at round time ``T`` when ``time <= T``.
PHASE_ARRIVAL = 0
PHASE_PUBLISH = 1
PHASE_CANCEL = 2
#: Deferred phases: the event applies only when ``time < T`` (strict), so a
#: deadline exactly on a round boundary does not bind in that round.
PHASE_EXPIRY = 3
PHASE_CHURN = 4

#: First deferred phase — the drain cutoff used by the runtime.
DEFERRED_PHASE = PHASE_EXPIRY

#: Event kinds (the ``kind`` column).  Kinds are stored separately from
#: phases so event classes can share a phase: relocation (kind 5) orders
#: like an arrival — a live worker's location update is an admission.
KIND_ARRIVAL = 0
KIND_PUBLISH = 1
KIND_CANCEL = 2
KIND_EXPIRY = 3
KIND_CHURN = 4
KIND_RELOCATE = 5

#: ``phase`` of each kind, indexed by kind code.
KIND_PHASE = np.array(
    [
        PHASE_ARRIVAL,
        PHASE_PUBLISH,
        PHASE_CANCEL,
        PHASE_EXPIRY,
        PHASE_CHURN,
        PHASE_ARRIVAL,  # relocation admits like an arrival
    ],
    dtype=np.int64,
)

#: The columnar layout: one row per event.  ``payload`` indexes the worker
#: side-table (arrivals) or the task side-table (publishes), -1 otherwise;
#: ``x``/``y`` are the payload location (NaN for rows without one).
EVENT_DTYPE = np.dtype(
    [
        ("time", "<f8"),
        ("phase", "<i8"),
        ("kind", "<i8"),
        ("entity_id", "<i8"),
        ("payload", "<i8"),
        ("x", "<f8"),
        ("y", "<f8"),
    ]
)

_EMPTY_INT = np.zeros(0, dtype=np.int64)

#: Packing offset of :meth:`EventLog.cell_keys`: cell indices must satisfy
#: ``|k| < CELL_OFFSET`` so ``(kx, ky)`` packs into one int64 without
#: overflow ((2 * CELL_OFFSET)**2 < 2**63).
CELL_OFFSET = 2**25


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """Base event: a timestamp plus the ordering phase."""

    time: float

    phase: int = -1  # overridden per subclass

    @property
    def entity_id(self) -> int:
        """The worker/task id the event concerns (tie-break component)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class WorkerArrivalEvent(StreamEvent):
    """A worker comes online (re-arrival replaces the pooled worker)."""

    worker: Worker = None  # type: ignore[assignment]
    phase: int = PHASE_ARRIVAL

    @property
    def entity_id(self) -> int:
        return self.worker.worker_id


@dataclass(frozen=True, slots=True)
class TaskPublishEvent(StreamEvent):
    """A task becomes available at its publication time."""

    task: Task = None  # type: ignore[assignment]
    phase: int = PHASE_PUBLISH

    @property
    def entity_id(self) -> int:
        return self.task.task_id


@dataclass(frozen=True, slots=True)
class TaskCancelEvent(StreamEvent):
    """The requester withdraws an open task before its deadline."""

    task_id: int = -1
    phase: int = PHASE_CANCEL

    @property
    def entity_id(self) -> int:
        return self.task_id


@dataclass(frozen=True, slots=True)
class TaskExpiryEvent(StreamEvent):
    """A task's deadline passes; no-op if it was assigned or cancelled."""

    task_id: int = -1
    phase: int = PHASE_EXPIRY

    @property
    def entity_id(self) -> int:
        return self.task_id


@dataclass(frozen=True, slots=True)
class WorkerChurnEvent(StreamEvent):
    """A worker goes offline; no-op if already assigned (or never pooled)."""

    worker_id: int = -1
    phase: int = PHASE_CHURN

    @property
    def entity_id(self) -> int:
        return self.worker_id


@dataclass(frozen=True, slots=True)
class WorkerRelocateEvent(StreamEvent):
    """A live worker moves to a new location (multi-day replay).

    Shares the arrival phase — a location update is an admission-time
    change — but, unlike an arrival, carries no full worker payload and is
    a **no-op when the worker is not pooled** (already assigned or churned).
    The log synthesizes the relocated :class:`~repro.entities.Worker`
    payload at construction time by composing the worker's most recent
    arrival/relocation attributes with the new coordinates, so replay,
    sharding and checkpoints all see ordinary worker payloads.
    """

    worker_id: int = -1
    location: Point = None  # type: ignore[assignment]
    phase: int = PHASE_ARRIVAL

    @property
    def entity_id(self) -> int:
        return self.worker_id


def _event_row(event: StreamEvent) -> tuple[int, int, object]:
    """``(kind, entity_id, payload_or_None)`` of one event object."""
    if isinstance(event, WorkerArrivalEvent):
        return KIND_ARRIVAL, event.worker.worker_id, event.worker
    if isinstance(event, TaskPublishEvent):
        return KIND_PUBLISH, event.task.task_id, event.task
    if isinstance(event, TaskCancelEvent):
        return KIND_CANCEL, event.task_id, None
    if isinstance(event, TaskExpiryEvent):
        return KIND_EXPIRY, event.task_id, None
    if isinstance(event, WorkerChurnEvent):
        return KIND_CHURN, event.worker_id, None
    if isinstance(event, WorkerRelocateEvent):
        return KIND_RELOCATE, event.worker_id, event.location
    raise TypeError(f"unsupported stream event {event!r}")


class EventLog:
    """An immutable, time-ordered, columnar sequence of stream events.

    The log is materialized (not a consuming heap) so that a cursor index is
    a complete description of replay progress — checkpoints store the cursor
    and resumed runs re-read the identical tail.
    """

    #: Whether this log streams in bounded-memory windows.  ``False`` here;
    #: :class:`~repro.stream.segments.SegmentedEventLog` overrides it so the
    #: runtime/checkpoint layers can branch without isinstance probes.
    segmented = False

    def __init__(self, events: Iterable[StreamEvent] = ()) -> None:
        staged = list(events)
        count = len(staged)
        time = np.empty(count, dtype=np.float64)
        kind = np.empty(count, dtype=np.int64)
        entity = np.empty(count, dtype=np.int64)
        payload = np.full(count, -1, dtype=np.int64)
        xs = np.full(count, np.nan)
        ys = np.full(count, np.nan)
        workers: list[Worker] = []
        tasks: list[Task] = []
        for position, event in enumerate(staged):
            event_kind, entity_id, body = _event_row(event)
            time[position] = event.time
            kind[position] = event_kind
            entity[position] = entity_id
            if event_kind == KIND_ARRIVAL:
                payload[position] = len(workers)
                workers.append(body)
            elif event_kind == KIND_PUBLISH:
                payload[position] = len(tasks)
                tasks.append(body)
            elif event_kind == KIND_RELOCATE:
                xs[position], ys[position] = body.x, body.y
        self._init_from_arrays(time, kind, entity, payload, workers, tasks, xs, ys)

    # ----------------------------------------------------------- construction
    @classmethod
    def from_columns(
        cls,
        time: np.ndarray,
        kind: np.ndarray,
        entity_id: np.ndarray,
        payload: np.ndarray | None = None,
        workers: Sequence[Worker] = (),
        tasks: Sequence[Task] = (),
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
    ) -> "EventLog":
        """Build a log straight from column arrays (no event objects).

        ``payload`` holds, per row, the index of the row's worker (arrival
        rows, into ``workers``) or task (publish rows, into ``tasks``) and
        -1 elsewhere; when omitted, arrival/publish rows are matched to the
        side-tables in row order.  Relocation rows come in two forms: with
        payload -1 their new coordinates come from the ``x``/``y`` columns
        (required for such rows) and the relocated worker is synthesized
        from the entity's most recent prior arrival/relocation; with an
        explicit payload ``>= 0`` the row references a post-move
        :class:`Worker` in ``workers`` directly — the form segment slabs
        use so a mid-horizon window is self-contained without replaying
        earlier windows.  Rows may be in any order — the constructor
        applies the canonical ``(time, phase, entity_id)`` stable sort
        itself.

        Malformed input — mismatched column lengths, unknown kind codes,
        non-finite times, NaN relocation coordinates, payload references
        outside the side-tables, or a relocation preceding any arrival of
        its worker — raises :class:`~repro.exceptions.DataError` up front
        instead of surfacing as an index error rounds later.
        """
        time = np.ascontiguousarray(time, dtype=np.float64)
        kind = np.ascontiguousarray(kind, dtype=np.int64)
        entity_id = np.ascontiguousarray(entity_id, dtype=np.int64)
        if not (len(time) == len(kind) == len(entity_id)):
            raise DataError(
                "time, kind and entity_id columns must have equal length, got "
                f"{len(time)}/{len(kind)}/{len(entity_id)}"
            )
        if kind.size and (kind.min() < 0 or kind.max() >= len(KIND_PHASE)):
            bad = np.unique(kind[(kind < 0) | (kind >= len(KIND_PHASE))])
            raise DataError(
                f"kind column contains unknown event kind codes {bad.tolist()} "
                f"(known: 0..{len(KIND_PHASE) - 1})"
            )
        if time.size and not np.isfinite(time).all():
            raise DataError("time column contains non-finite values")
        relocating = kind == KIND_RELOCATE
        if payload is None:
            payload = np.full(len(time), -1, dtype=np.int64)
            payload[kind == KIND_ARRIVAL] = np.arange(
                int((kind == KIND_ARRIVAL).sum()), dtype=np.int64
            )
            payload[kind == KIND_PUBLISH] = np.arange(
                int((kind == KIND_PUBLISH).sum()), dtype=np.int64
            )
        else:
            payload = np.ascontiguousarray(payload, dtype=np.int64)
            if len(payload) != len(time):
                raise DataError("payload column must have the row count")
            for kind_code, table, label in (
                (KIND_ARRIVAL, workers, "workers"),
                (KIND_PUBLISH, tasks, "tasks"),
            ):
                refs = payload[kind == kind_code]
                if refs.size and (refs.min() < 0 or refs.max() >= len(table)):
                    raise DataError(
                        f"payload indices of kind-{kind_code} rows must lie in "
                        f"[0, {len(table)}) — the {label} side-table"
                    )
            refs = payload[relocating]
            if refs.size and (refs.min() < -1 or refs.max() >= len(workers)):
                raise DataError(
                    f"payload indices of kind-{KIND_RELOCATE} rows must be -1 "
                    f"(synthesize from x/y) or lie in [0, {len(workers)}) — "
                    "the workers side-table"
                )
        # Relocations without an explicit payload need coordinates to
        # synthesize the moved worker from.
        synthesized = relocating & (payload < 0)
        if synthesized.any():
            if x is None or y is None:
                raise DataError(
                    "relocation rows require the x and y coordinate columns"
                )
        if x is not None or y is not None:
            if x is None or y is None:
                raise DataError("x and y columns must be given together")
            x = np.ascontiguousarray(x, dtype=np.float64)
            y = np.ascontiguousarray(y, dtype=np.float64)
            if not (len(x) == len(y) == len(time)):
                raise DataError("x and y columns must have the row count")
            bad_coords = synthesized & (np.isnan(x) | np.isnan(y))
            if bad_coords.any():
                raise DataError(
                    "relocation rows "
                    f"{np.flatnonzero(bad_coords).tolist()[:5]} have NaN "
                    "coordinates"
                )
        log = cls.__new__(cls)
        log._init_from_arrays(
            time, kind, entity_id, payload, list(workers), list(tasks), x, y
        )
        return log

    def _init_from_arrays(
        self,
        time: np.ndarray,
        kind: np.ndarray,
        entity: np.ndarray,
        payload: np.ndarray,
        workers: list[Worker],
        tasks: list[Task],
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
    ) -> None:
        count = len(time)
        phase = KIND_PHASE[kind] if count else _EMPTY_INT
        # Kind joins the sort key as the final tie-break so an arrival and
        # a relocation of the same worker at the same instant (both in the
        # arrival phase) order deterministically — arrival first — no
        # matter how the source rows were interleaved.
        order = np.lexsort((kind, entity, phase, time))
        columns = np.zeros(count, dtype=EVENT_DTYPE)
        columns["time"] = time[order]
        columns["phase"] = phase[order]
        columns["kind"] = kind[order]
        columns["entity_id"] = entity[order]

        # Renumber payloads in sorted-row order so the columnar form (and
        # therefore the fingerprint) is independent of the source order.
        # Relocation rows synthesize their payload here: the entity's most
        # recent prior arrival/relocation payload moved to the row's new
        # coordinates — so downstream consumers (replay, shard planning,
        # checkpoints) see ordinary worker payloads on every worker row.
        source_payload = payload[order]
        sorted_kind = columns["kind"]
        sorted_entity = columns["entity_id"]
        sorted_payload = np.full(count, -1, dtype=np.int64)
        xs = np.full(count, np.nan)
        ys = np.full(count, np.nan)
        arrival_rows = np.flatnonzero(sorted_kind == KIND_ARRIVAL)
        publish_rows = np.flatnonzero(sorted_kind == KIND_PUBLISH)
        if not (kind == KIND_RELOCATE).any():
            # Fast path (no relocations — every single-day builder): only
            # arrival/publish rows carry payloads or locations.
            worker_table = [workers[source_payload[row]] for row in arrival_rows]
            task_table = [tasks[source_payload[row]] for row in publish_rows]
            sorted_payload[arrival_rows] = np.arange(
                len(arrival_rows), dtype=np.int64
            )
            sorted_payload[publish_rows] = np.arange(
                len(publish_rows), dtype=np.int64
            )
            for slot, row in enumerate(arrival_rows):
                location = worker_table[slot].location
                xs[row], ys[row] = location.x, location.y
            for slot, row in enumerate(publish_rows):
                location = task_table[slot].location
                xs[row], ys[row] = location.x, location.y
        else:
            source_x = x[order] if x is not None else None
            source_y = y[order] if y is not None else None
            worker_table = []
            task_table = []
            latest_worker: dict[int, Worker] = {}
            for row in range(count):
                row_kind = sorted_kind[row]
                if row_kind == KIND_ARRIVAL:
                    worker = workers[source_payload[row]]
                    latest_worker[int(sorted_entity[row])] = worker
                elif row_kind == KIND_RELOCATE:
                    if source_payload[row] >= 0:
                        # Self-contained form: the post-move worker ships in
                        # the side-table (segment slabs) — no prior arrival
                        # needs to exist in this log.
                        worker = workers[source_payload[row]]
                    else:
                        previous = latest_worker.get(int(sorted_entity[row]))
                        if previous is None:
                            raise DataError(
                                f"relocation of worker {int(sorted_entity[row])} "
                                f"at t={float(columns['time'][row])} precedes any "
                                "arrival of that worker"
                            )
                        worker = previous.moved_to(
                            Point(float(source_x[row]), float(source_y[row]))
                        )
                    latest_worker[int(sorted_entity[row])] = worker
                elif row_kind == KIND_PUBLISH:
                    task = tasks[source_payload[row]]
                    sorted_payload[row] = len(task_table)
                    task_table.append(task)
                    xs[row], ys[row] = task.location.x, task.location.y
                    continue
                else:
                    continue
                sorted_payload[row] = len(worker_table)
                worker_table.append(worker)
                xs[row], ys[row] = worker.location.x, worker.location.y
        self._workers: tuple[Worker, ...] = tuple(worker_table)
        self._tasks: tuple[Task, ...] = tuple(task_table)
        columns["payload"] = sorted_payload
        columns["x"] = xs
        columns["y"] = ys
        columns.setflags(write=False)
        self.columns: np.ndarray = columns

        self._worker_attrs = np.array(
            [
                (w.location.x, w.location.y, w.reachable_km, w.speed_kmh)
                for w in self._workers
            ],
            dtype=np.float64,
        ).reshape(len(self._workers), 4)
        self._task_attrs = np.array(
            [
                (t.location.x, t.location.y, t.publication_time, t.valid_hours)
                for t in self._tasks
            ],
            dtype=np.float64,
        ).reshape(len(self._tasks), 4)
        for attrs, label in ((self._worker_attrs, "worker"),
                             (self._task_attrs, "task")):
            if len(attrs) and np.isnan(attrs[:, :2]).any():
                raise DataError(
                    f"{label} payloads contain NaN coordinates — the live "
                    "index and shard planner require finite locations"
                )
        self._task_venues = np.array(
            [-1 if t.venue_id is None else t.venue_id for t in self._tasks],
            dtype=np.int64,
        )
        self._admissions = np.flatnonzero(columns["phase"] <= PHASE_PUBLISH)
        self._event_cache: list[StreamEvent | None] = [None] * count
        self._events_tuple: tuple[StreamEvent, ...] | None = None
        self._payload_ids: tuple[np.ndarray, np.ndarray] | None = None
        self._slot_cache: tuple[dict, dict, dict, dict] | None = None

    @classmethod
    def merged(cls, *sources: Iterable[StreamEvent]) -> "EventLog":
        """Combine several event sources into one deterministic log.

        The constructor's single ordering pass (stable sort on
        ``(time, phase, entity_id)``) subsumes any merge, so sources need
        no internal ordering and contribute no extra per-source cost.
        """
        return cls(chain(*sources))

    # -------------------------------------------------------------- sequence
    def __len__(self) -> int:
        return len(self.columns)

    def __getitem__(self, index: int) -> StreamEvent:
        event = self._event_cache[index]
        if event is None:
            event = self._materialize(index)
            self._event_cache[index] = event
        return event

    def __iter__(self) -> Iterator[StreamEvent]:
        for index in range(len(self.columns)):
            yield self[index]

    def _materialize(self, index: int) -> StreamEvent:
        row = self.columns[index]
        kind = int(row["kind"])
        time = float(row["time"])
        if kind == KIND_ARRIVAL:
            return WorkerArrivalEvent(time=time, worker=self._workers[row["payload"]])
        if kind == KIND_PUBLISH:
            return TaskPublishEvent(time=time, task=self._tasks[row["payload"]])
        entity = int(row["entity_id"])
        if kind == KIND_CANCEL:
            return TaskCancelEvent(time=time, task_id=entity)
        if kind == KIND_EXPIRY:
            return TaskExpiryEvent(time=time, task_id=entity)
        if kind == KIND_RELOCATE:
            return WorkerRelocateEvent(
                time=time,
                worker_id=entity,
                location=Point(float(row["x"]), float(row["y"])),
            )
        return WorkerChurnEvent(time=time, worker_id=entity)

    @property
    def events(self) -> tuple[StreamEvent, ...]:
        """The ordered events, materialized once and cached (immutable)."""
        if self._events_tuple is None:
            self._events_tuple = tuple(self[index] for index in range(len(self)))
        return self._events_tuple

    # ------------------------------------------------------------ column API
    @property
    def times(self) -> np.ndarray:
        """The ``time`` column (sorted ascending, read-only)."""
        return self.columns["time"]

    @property
    def phases(self) -> np.ndarray:
        """The ``phase`` column (read-only)."""
        return self.columns["phase"]

    @property
    def kinds(self) -> np.ndarray:
        """The ``kind`` column (read-only)."""
        return self.columns["kind"]

    @property
    def entity_ids(self) -> np.ndarray:
        """The ``entity_id`` column (read-only)."""
        return self.columns["entity_id"]

    def worker_at(self, index: int) -> Worker:
        """The worker payload of the arrival/relocation event at ``index``.

        For relocation rows this is the synthesized relocated worker — the
        most recent prior arrival's attributes at the row's new location.
        """
        slot = int(self.columns["payload"][index])
        if (
            int(self.columns["kind"][index]) not in (KIND_ARRIVAL, KIND_RELOCATE)
            or slot < 0
        ):
            raise IndexError(f"event {index} is not a worker arrival/relocation")
        return self._workers[slot]

    def task_at(self, index: int) -> Task:
        """The task payload of the publish event at ``index``."""
        slot = int(self.columns["payload"][index])
        if int(self.columns["kind"][index]) != KIND_PUBLISH or slot < 0:
            raise IndexError(f"event {index} is not a task publish")
        return self._tasks[slot]

    # --------------------------------------------------- shared-memory slabs
    def payload_slabs(self) -> dict[str, np.ndarray]:
        """The numeric payload side-tables, ready for shared publication.

        Everything a solver needs to rebuild a worker/task from its payload
        slot, as four flat arrays: ``worker_attrs`` (x, y, reachable_km,
        speed_kmh per row), ``worker_ids``, ``task_attrs`` (x, y,
        publication_time, valid_hours) and ``task_ids``.  Together with
        :meth:`worker_slot_of` / :meth:`task_slot_of` this lets an executor
        ship payload *slots* instead of pickled entities.
        """
        if self._payload_ids is None:
            self._payload_ids = (
                np.fromiter(
                    (w.worker_id for w in self._workers),
                    dtype=np.int64, count=len(self._workers),
                ),
                np.fromiter(
                    (t.task_id for t in self._tasks),
                    dtype=np.int64, count=len(self._tasks),
                ),
            )
        worker_ids, task_ids = self._payload_ids
        return {
            "worker_attrs": self._worker_attrs,
            "worker_ids": worker_ids,
            "task_attrs": self._task_attrs,
            "task_ids": task_ids,
        }

    def _slot_maps(self) -> tuple[dict, dict, dict, dict]:
        if self._slot_cache is None:
            worker_identity: dict[int, int] = {}
            worker_equal: dict[Worker, int] = {}
            for slot, worker in enumerate(self._workers):
                worker_identity[id(worker)] = slot
                worker_equal[worker] = slot
            task_identity: dict[int, int] = {}
            task_equal: dict[Task, int] = {}
            for slot, task in enumerate(self._tasks):
                task_identity[id(task)] = slot
                task_equal[task] = slot
            self._slot_cache = (
                worker_identity, worker_equal, task_identity, task_equal
            )
        return self._slot_cache

    def worker_slot_of(self, worker: Worker) -> int:
        """The payload-table slot holding ``worker``.

        Pooled workers *are* side-table members (pools are fed only through
        :meth:`worker_at`, including relocation rows and checkpoint
        restores), so an identity probe resolves them without hashing; the
        equality fallback covers reconstructed-but-equal copies.
        """
        identity, equal, _, _ = self._slot_maps()
        slot = identity.get(id(worker))
        if slot is None:
            slot = equal.get(worker)
        if slot is None:
            raise DataError(
                f"worker {worker.worker_id} is not present in the event "
                "log's payload tables"
            )
        return slot

    def task_slot_of(self, task: Task) -> int:
        """The payload-table slot holding ``task`` (see :meth:`worker_slot_of`)."""
        _, _, identity, equal = self._slot_maps()
        slot = identity.get(id(task))
        if slot is None:
            slot = equal.get(task)
        if slot is None:
            raise DataError(
                f"task {task.task_id} is not present in the event log's "
                "payload tables"
            )
        return slot

    def drain_stop(self, cursor: int, fire_time: float) -> int:
        """First undrained index for a round at ``fire_time`` (array op).

        Everything strictly before ``fire_time`` drains; at the boundary
        itself only admission phases do (deferred expiry/churn wait for the
        next round) — exactly the runtime's event-by-event scan, as two
        ``searchsorted`` calls on the sorted ``(time, phase)`` key.
        """
        times = self.columns["time"]
        lo = int(np.searchsorted(times, fire_time, side="left"))
        hi = int(np.searchsorted(times, fire_time, side="right"))
        cut = lo + int(
            np.searchsorted(self.columns["phase"][lo:hi], DEFERRED_PHASE, side="left")
        )
        return max(cursor, cut)

    def slices(
        self, start: int, stop: int
    ) -> Iterator[tuple["EventLog", int, int, int]]:
        """Yield ``(log, local_start, local_stop, base)`` slabs covering
        global rows ``[start, stop)``.

        The uniform cursor-walk API shared with
        :class:`~repro.stream.segments.SegmentedEventLog`: a materialized
        log is a single slab at base 0, a segmented log yields one tuple
        per touched segment.  Consumers index ``log`` with local positions
        and recover the global position as ``base + local``.
        """
        if start < stop:
            yield self, start, stop, 0

    def cell_key_counts(self, cell_km: float) -> tuple[np.ndarray, np.ndarray]:
        """``(occupied_packed_keys, counts)`` over the located event rows.

        The shard planner's aggregate input, answered without exposing the
        full per-row key column — which lets
        :class:`~repro.stream.segments.SegmentedEventLog` union the same
        occupancy per segment under bounded memory.
        """
        packed = self.cell_keys(cell_km)
        located = ~np.isnan(self.columns["x"])
        return np.unique(packed[located], return_counts=True)

    def next_count_time(
        self, cursor: int, count: int, limit_time: float
    ) -> float | None:
        """When the ``count``-th admission at or after ``cursor`` occurs.

        Returns ``None`` when fewer than ``count`` admissions remain or the
        count-th one lies beyond ``limit_time`` — the count-trigger
        scheduling query, answered from the precomputed admission-position
        index instead of an event scan.
        """
        start = int(np.searchsorted(self._admissions, cursor, side="left"))
        target = start + count - 1
        if target >= len(self._admissions):
            return None
        fire = float(self.columns["time"][self._admissions[target]])
        return fire if fire <= limit_time else None

    def admissions_after(self, cursor: int) -> int:
        """How many admission rows lie at or after ``cursor``.

        The per-segment count :class:`~repro.stream.segments.SegmentedEventLog`
        aggregates to answer :meth:`next_count_time` across seams.
        """
        return int(
            len(self._admissions)
            - np.searchsorted(self._admissions, cursor, side="left")
        )

    def cell_keys(self, cell_km: float) -> np.ndarray:
        """Grid-cell key per event row, quantizing ``x``/``y`` by ``cell_km``.

        Rows without a location (cancel/expiry/churn) get the
        out-of-range sentinel cell ``(CELL_OFFSET, CELL_OFFSET)``.  Keys
        pack ``(kx, ky)`` into one int64 (each offset by ``CELL_OFFSET``,
        valid for ``|k| < CELL_OFFSET`` — tens of millions of cells per
        axis), matching :func:`repro.geo.cell_key` on the payload
        locations — the shard planner's input.

        Raises :class:`DataError` when any located row quantizes outside
        ``|k| < CELL_OFFSET``: such keys would silently alias distinct
        cells (or the unlocated sentinel), which can merge unrelated shard
        components or break the never-split invariant.
        """
        if cell_km <= 0:
            raise ValueError(f"cell_km must be positive, got {cell_km}")
        xs = self.columns["x"]
        ys = self.columns["y"]
        located = ~np.isnan(xs)
        kx = np.full(len(xs), CELL_OFFSET, dtype=np.int64)
        ky = np.full(len(ys), CELL_OFFSET, dtype=np.int64)
        with np.errstate(invalid="ignore"):
            fx = np.floor(xs[located] / cell_km)
            fy = np.floor(ys[located] / cell_km)
        bad = (np.abs(fx) >= CELL_OFFSET) | (np.abs(fy) >= CELL_OFFSET)
        if bad.any():
            row = int(np.flatnonzero(located)[np.flatnonzero(bad)[0]])
            raise DataError(
                f"event row {row} at ({xs[row]}, {ys[row]}) quantizes to cell "
                f"({math.floor(xs[row] / cell_km)}, {math.floor(ys[row] / cell_km)}) "
                f"outside |k| < {CELL_OFFSET} at cell_km={cell_km}"
            )
        kx[located] = fx.astype(np.int64)
        ky[located] = fy.astype(np.int64)
        return (kx + CELL_OFFSET) * (2 * CELL_OFFSET) + (ky + CELL_OFFSET)

    def max_reachable_km(self) -> float:
        """Largest worker radius in the log (0.0 without arrivals)."""
        if not len(self._worker_attrs):
            return 0.0
        return float(self._worker_attrs[:, 2].max())

    # ------------------------------------------------------------ properties
    def start_time(self) -> float | None:
        """Earliest admission-event time (``None`` if no admissions)."""
        if not len(self._admissions):
            return None
        return float(self.columns["time"][self._admissions[0]])

    def has_arrivals(self) -> bool:
        """Whether any worker-arrival event is present."""
        return bool(len(self._workers))

    def last_deadline(self) -> float | None:
        """Latest expiry-event time (the natural default end of a run)."""
        expiries = self.columns["time"][self.columns["kind"] == KIND_EXPIRY]
        return float(expiries.max()) if len(expiries) else None

    def fingerprint(self) -> str:
        """A digest of the columnar buffers, payload attributes included.

        Stored in checkpoints so a resume against a different log fails
        fast instead of silently replaying the wrong stream — including
        logs with identical timing but different worker/task attributes
        (e.g. the same day rebuilt with another reachable radius).  Hashes
        the structured-array buffer and the payload attribute tables
        directly (no per-event serialization); the exact digests are pinned
        by a regression test.
        """
        digest = hashlib.sha256()
        digest.update(b"repro-eventlog-v2")
        digest.update(
            struct.pack("<qqq", len(self), len(self._workers), len(self._tasks))
        )
        digest.update(np.ascontiguousarray(self.columns).tobytes())
        digest.update(np.ascontiguousarray(self._worker_attrs).tobytes())
        digest.update(np.ascontiguousarray(self._task_attrs).tobytes())
        digest.update(np.ascontiguousarray(self._task_venues).tobytes())
        for task in self._tasks:
            for category in task.categories:
                digest.update(category.encode("utf-8"))
                digest.update(b"\x00")
            digest.update(b"\x01")
        return digest.hexdigest()


def expiry_events(tasks: Sequence[Task]) -> list[TaskExpiryEvent]:
    """One deadline event per task, at ``publication_time + valid_hours``."""
    return [TaskExpiryEvent(time=task.expiry_time, task_id=task.task_id) for task in tasks]


def log_from_arrivals(
    arrivals: Iterable["object"],
    tasks: Sequence[Task],
    extra: Iterable[StreamEvent] = (),
) -> EventLog:
    """Build the log the batched online simulator implicitly plays.

    ``arrivals`` is a sequence of
    :class:`~repro.framework.online.WorkerArrival` (duck-typed: anything with
    ``worker`` and ``arrival_time``); each task contributes a publish and an
    expiry event.  ``extra`` may add churn/cancellation events.
    """
    events: list[StreamEvent] = [
        WorkerArrivalEvent(time=a.arrival_time, worker=a.worker) for a in arrivals
    ]
    events.extend(
        TaskPublishEvent(time=task.publication_time, task=task) for task in tasks
    )
    events.extend(expiry_events(tasks))
    events.extend(extra)
    return EventLog(events)


def day_stream(
    dataset: CheckInDataset,
    day: int,
    valid_hours: float = 5.0,
    reachable_km: float = 25.0,
    speed_kmh: float = 5.0,
) -> tuple[SCInstance, EventLog]:
    """One dataset day as ``(base_instance, event_log)``.

    The base instance supplies histories, the social network and venue
    visits (its worker list is superseded by the arrival events), exactly as
    :meth:`OnlineSimulator.run` consumes
    :func:`~repro.framework.online.day_arrivals`.
    """
    from repro.framework.online import day_arrivals

    builder = InstanceBuilder(
        dataset, valid_hours=valid_hours, reachable_km=reachable_km, speed_kmh=speed_kmh
    )
    instance = builder.build_day(day)
    arrivals = day_arrivals(
        dataset, day, reachable_km=reachable_km, speed_kmh=speed_kmh
    )
    return instance, log_from_arrivals(arrivals, instance.tasks)


def multi_day_stream(
    dataset: CheckInDataset,
    days: Sequence[int],
    valid_hours: float = 5.0,
    reachable_km: float = 25.0,
    speed_kmh: float = 5.0,
) -> tuple[SCInstance, EventLog]:
    """Several dataset days as one continuous ``(base_instance, event_log)``.

    Multi-day replay follows the paper's "online until assigned" protocol
    over the whole horizon: a worker **arrives** once, at their first
    check-in of their first active day; on each *later* active day they
    **relocate** at that day's first check-in to that day's location (a
    no-op if they were assigned in the meantime — an assigned worker is
    done for the horizon); and they **churn overnight** at the start of
    the next replayed day after their *last* active day (they left the
    platform — relocations never resurrect a churned worker).  Each day
    contributes its task set; task ids are renumbered sequentially across
    the horizon so same-venue tasks on different days stay distinct.

    The base instance is the first day's (histories, social network, venue
    visits are fitted once, exactly as a single-day run fits them).
    """
    from dataclasses import replace

    from repro.framework.online import day_arrivals

    days = list(days)
    if not days:
        raise DataError("multi_day_stream needs at least one day")
    if sorted(set(days)) != days:
        raise DataError(f"days must be strictly increasing, got {days}")

    builder = InstanceBuilder(
        dataset, valid_hours=valid_hours, reachable_km=reachable_km, speed_kmh=speed_kmh
    )
    base = builder.build_day(days[0])

    per_day_arrivals = [
        day_arrivals(
            dataset, day, reachable_km=reachable_km, speed_kmh=speed_kmh,
            builder=builder,
        )
        for day in days
    ]
    last_active: dict[int, int] = {}
    for position, arrivals in enumerate(per_day_arrivals):
        for arrival in arrivals:
            last_active[arrival.worker.worker_id] = position

    events: list[StreamEvent] = []
    all_tasks: list[Task] = []
    next_task_id = 0
    seen: set[int] = set()
    for position, (day, arrivals) in enumerate(zip(days, per_day_arrivals)):
        day_instance = base if position == 0 else builder.build_day(day)
        for task in sorted(day_instance.tasks, key=lambda t: t.task_id):
            all_tasks.append(replace(task, task_id=next_task_id))
            next_task_id += 1

        for arrival in arrivals:
            worker_id = arrival.worker.worker_id
            if worker_id in seen:
                events.append(
                    WorkerRelocateEvent(
                        time=arrival.arrival_time,
                        worker_id=worker_id,
                        location=arrival.worker.location,
                    )
                )
            else:
                seen.add(worker_id)
                events.append(
                    WorkerArrivalEvent(time=arrival.arrival_time, worker=arrival.worker)
                )
        if position + 1 < len(days):
            boundary = 24.0 * days[position + 1]
            events.extend(
                WorkerChurnEvent(time=boundary, worker_id=worker_id)
                for worker_id in sorted(
                    worker_id
                    for worker_id, last in last_active.items()
                    if last == position
                )
            )

    events.extend(
        TaskPublishEvent(time=task.publication_time, task=task) for task in all_tasks
    )
    events.extend(expiry_events(all_tasks))
    return base.with_tasks(all_tasks), EventLog(events)


def synthetic_stream(
    num_workers: int,
    num_tasks: int,
    duration_hours: float = 24.0,
    area_km: float = 50.0,
    valid_hours: float = 5.0,
    reachable_km: float = 25.0,
    speed_kmh: float = 5.0,
    churn_fraction: float = 0.0,
    cancel_fraction: float = 0.0,
    clusters: int = 1,
    cluster_gap_km: float | None = None,
    days: int = 1,
    relocate_fraction: float = 0.0,
    overnight_churn_fraction: float = 0.0,
    relocate_span: str = "cluster",
    seed: int = 0,
) -> tuple[SCInstance, EventLog]:
    """A Poisson-style synthetic stream for load tests.

    Workers arrive and tasks publish uniformly over ``[0, duration_hours)``
    on an ``area_km`` square (a homogeneous Poisson process conditioned on
    the totals).  A ``churn_fraction`` of workers goes offline after an
    exponential online period; a ``cancel_fraction`` of tasks is withdrawn
    halfway to its deadline.  Scaling ``num_workers``/``num_tasks`` with the
    duration fixed raises the arrival *rate* — the bench runs 10-100x the
    paper's per-day volumes this way.

    ``clusters > 1`` models a multi-city world: entities are split across
    ``clusters`` ``area_km`` squares laid out on a grid whose squares are
    separated by ``cluster_gap_km`` (default ``3 * reachable_km``, wide
    enough that the conservative cell-granularity shard planner provably
    separates them), so no feasible (worker, task) pair ever crosses
    clusters — the decomposition the sharded round executor exploits.
    ``clusters=1`` reproduces the historical single-square stream
    draw-for-draw.

    ``days > 1`` turns the stream into a multi-day replay: arrivals and
    publications spread over ``days * duration_hours`` and, at every day
    boundary, each already-arrived worker independently churns overnight
    (probability ``overnight_churn_fraction``) or relocates (probability
    ``relocate_fraction``) — a :class:`WorkerRelocateEvent` at the exact
    boundary time, drawn within the worker's own cluster square
    (``relocate_span="cluster"``) or anywhere in the multi-city world
    (``relocate_span="world"``, the mass-migration shape that stresses the
    shard planner's never-split invariant).  ``days=1`` draws exactly the
    historical single-day stream.
    """
    if num_workers < 0 or num_tasks < 0:
        raise ValueError("num_workers and num_tasks must be non-negative")
    if duration_hours <= 0:
        raise ValueError(f"duration_hours must be positive, got {duration_hours}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    if cluster_gap_km is None:
        cluster_gap_km = 3.0 * reachable_km
    elif cluster_gap_km <= 0:
        raise ValueError(f"cluster_gap_km must be positive, got {cluster_gap_km}")
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    if not (0.0 <= relocate_fraction <= 1.0):
        raise ValueError(f"relocate_fraction must lie in [0, 1], got {relocate_fraction}")
    if not (0.0 <= overnight_churn_fraction <= 1.0):
        raise ValueError(
            f"overnight_churn_fraction must lie in [0, 1], got {overnight_churn_fraction}"
        )
    if relocate_fraction + overnight_churn_fraction > 1.0:
        raise ValueError(
            "relocate_fraction + overnight_churn_fraction must not exceed 1"
        )
    if relocate_span not in ("cluster", "world"):
        raise ValueError(
            f"relocate_span must be 'cluster' or 'world', got {relocate_span!r}"
        )
    rng = np.random.default_rng(seed)
    horizon_hours = duration_hours * days

    grid_side = int(np.ceil(np.sqrt(clusters)))
    pitch = area_km + cluster_gap_km

    def cluster_origins(assignments: np.ndarray) -> np.ndarray:
        return np.column_stack(
            (assignments % grid_side, assignments // grid_side)
        ) * pitch

    worker_times = np.sort(rng.uniform(0.0, horizon_hours, size=num_workers))
    worker_xy = rng.uniform(0.0, area_km, size=(num_workers, 2))
    worker_clusters = np.zeros(num_workers, dtype=np.int64)
    if clusters > 1:
        worker_clusters = rng.integers(clusters, size=num_workers)
        worker_xy = worker_xy + cluster_origins(worker_clusters)
    workers = [
        Worker(
            worker_id=worker_id,
            location=Point(float(worker_xy[worker_id, 0]), float(worker_xy[worker_id, 1])),
            reachable_km=reachable_km,
            speed_kmh=speed_kmh,
        )
        for worker_id in range(num_workers)
    ]

    task_times = np.sort(rng.uniform(0.0, horizon_hours, size=num_tasks))
    task_xy = rng.uniform(0.0, area_km, size=(num_tasks, 2))
    if clusters > 1:
        task_xy = task_xy + cluster_origins(rng.integers(clusters, size=num_tasks))
    tasks = [
        Task(
            task_id=task_id,
            location=Point(float(task_xy[task_id, 0]), float(task_xy[task_id, 1])),
            publication_time=float(task_times[task_id]),
            valid_hours=valid_hours,
        )
        for task_id in range(num_tasks)
    ]

    # Columns, assembled without per-event wrapper objects: arrivals,
    # publishes, expiries, then optional churn/cancel rows.
    times = [worker_times, task_times, task_times + valid_hours]
    kinds = [
        np.full(num_workers, KIND_ARRIVAL, dtype=np.int64),
        np.full(num_tasks, KIND_PUBLISH, dtype=np.int64),
        np.full(num_tasks, KIND_EXPIRY, dtype=np.int64),
    ]
    entities = [
        np.arange(num_workers, dtype=np.int64),
        np.arange(num_tasks, dtype=np.int64),
        np.arange(num_tasks, dtype=np.int64),
    ]

    if churn_fraction > 0.0 and num_workers:
        churners = np.flatnonzero(rng.random(num_workers) < churn_fraction)
        stays = rng.exponential(scale=2.0, size=len(churners))
        times.append(worker_times[churners] + stays)
        kinds.append(np.full(len(churners), KIND_CHURN, dtype=np.int64))
        entities.append(churners.astype(np.int64))
    if cancel_fraction > 0.0 and num_tasks:
        cancelled = np.flatnonzero(rng.random(num_tasks) < cancel_fraction)
        times.append(task_times[cancelled] + 0.5 * valid_hours)
        kinds.append(np.full(len(cancelled), KIND_CANCEL, dtype=np.int64))
        entities.append(cancelled.astype(np.int64))

    relocation_xy: list[np.ndarray] = []
    if days > 1 and num_workers:
        alive = np.ones(num_workers, dtype=bool)
        for boundary_day in range(1, days):
            boundary = boundary_day * duration_hours
            present = alive & (worker_times < boundary)
            draws = rng.random(num_workers)
            churns = present & (draws < overnight_churn_fraction)
            moves = (
                present
                & ~churns
                & (draws < overnight_churn_fraction + relocate_fraction)
            )
            new_xy = rng.uniform(0.0, area_km, size=(num_workers, 2))
            if clusters > 1:
                span_clusters = (
                    rng.integers(clusters, size=num_workers)
                    if relocate_span == "world"
                    else worker_clusters
                )
                new_xy = new_xy + cluster_origins(span_clusters)
            alive[churns] = False
            if churns.any():
                ids = np.flatnonzero(churns)
                times.append(np.full(len(ids), boundary))
                kinds.append(np.full(len(ids), KIND_CHURN, dtype=np.int64))
                entities.append(ids.astype(np.int64))
                relocation_xy.append(np.full((len(ids), 2), np.nan))
            if moves.any():
                ids = np.flatnonzero(moves)
                times.append(np.full(len(ids), boundary))
                kinds.append(np.full(len(ids), KIND_RELOCATE, dtype=np.int64))
                entities.append(ids.astype(np.int64))
                relocation_xy.append(new_xy[ids])

    all_times = np.concatenate(times)
    coords = None
    if relocation_xy:
        base_rows = len(all_times) - sum(len(block) for block in relocation_xy)
        coords = np.vstack(
            [np.full((base_rows, 2), np.nan), *relocation_xy]
        )
    log = EventLog.from_columns(
        all_times,
        np.concatenate(kinds),
        np.concatenate(entities),
        workers=workers,
        tasks=tasks,
        x=coords[:, 0] if coords is not None else None,
        y=coords[:, 1] if coords is not None else None,
    )
    base = SCInstance(
        name=f"synthetic-stream-{seed}",
        current_time=0.0,
        tasks=[],
        workers=[],
        histories={},
        social_edges=[],
        all_worker_ids=tuple(range(num_workers)),
    )
    return base, log
