"""Streaming metrics: wait times, round latency percentiles, throughput.

The batched online simulator reports per-round pool sizes and CPU time; a
serving runtime additionally needs *latency distributions* — how long tasks
wait between publication and assignment, how expensive rounds are at the
tail, and how fast the runtime drains its event stream.
:class:`StreamMetrics` collects all of it incrementally and serializes to a
checkpointable state dict.

The distributions live in bounded
:class:`~repro.obs.histo.LogHistogram` buckets, not sample lists: a
multi-day horizon assigns O(rounds·tasks) pairs, and the per-sample lists
this module used to keep grew without bound while every consumer only ever
asked for percentiles.  Waits record in *simulated hours* (deterministic,
so the histograms checkpoint/replay bit-exactly and ride in the checkpoint
meta); round latency records measured wall-clock seconds and is rebuilt
from the ``rounds`` rows on restore rather than persisted separately —
the rows are the source of truth the crash-recovery comparison already
normalizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.obs.histo import LogHistogram, SECONDS_HISTOGRAM, WAIT_HOURS_HISTOGRAM


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Everything observed about one assignment round.

    ``online_workers`` / ``open_tasks`` are the pool sizes *before* the
    round's assignment (matching
    :class:`~repro.framework.online.OnlineStep`); ``drained_events`` counts
    the log events consumed since the previous round; ``round_seconds`` is
    the wall-clock cost of the assignment computation alone.
    ``relocated_workers`` counts live-worker relocations applied in the
    round's drain; ``deferred_tasks`` / ``shed_tasks`` count publish events
    diverted by the admission controller (both stay 0 without one).

    The phase timings attribute the round's cost: ``drain_seconds`` covers
    the event-cursor scan that fed the round, and
    ``prepare_seconds`` / ``solve_seconds`` / ``merge_seconds`` split the
    assignment block.  They are *cumulative per-phase spans* — under a
    pipelined executor the shards' prepare/solve spans overlap, so the
    phase sums can exceed the ``round_seconds`` wall clock (that gap is
    exactly the pipelining win).  ``repacks`` counts shard-layout repacks
    applied at this round's boundary (0 or 1 without custom rebalancers).
    """

    index: int
    time: float
    online_workers: int
    open_tasks: int
    drained_events: int
    assigned: int
    expired_tasks: int
    churned_workers: int
    cancelled_tasks: int
    round_seconds: float
    relocated_workers: int = 0
    deferred_tasks: int = 0
    shed_tasks: int = 0
    drain_seconds: float = 0.0
    prepare_seconds: float = 0.0
    solve_seconds: float = 0.0
    merge_seconds: float = 0.0
    repacks: int = 0


@dataclass(frozen=True, slots=True)
class StreamSummary:
    """Aggregate view of a finished (or in-flight) streaming run."""

    rounds: int
    assigned: int
    expired: int
    churned: int
    cancelled: int
    relocated: int
    deferred: int
    shed: int
    events_drained: int
    sim_hours: float
    wall_seconds: float
    task_wait_p50: float
    task_wait_p90: float
    task_wait_p99: float
    round_latency_p50: float
    round_latency_p99: float
    events_per_second: float
    assigned_per_sim_hour: float
    expiry_rate: float
    churn_rate: float
    shed_rate: float

    def as_text(self) -> str:
        """A compact multi-line report for CLIs and examples."""
        lines = [
            f"rounds:            {self.rounds}",
            f"events drained:    {self.events_drained}"
            f" ({self.events_per_second:,.0f} events/s)",
            f"assigned:          {self.assigned}"
            f" ({self.assigned_per_sim_hour:.1f} per sim hour)",
            f"expired:           {self.expired} (rate {self.expiry_rate:.2f})",
            f"churned:           {self.churned} (rate {self.churn_rate:.2f})",
            f"cancelled:         {self.cancelled}",
        ]
        if self.relocated:
            lines.append(f"relocated:         {self.relocated}")
        if self.deferred or self.shed:
            lines.append(
                f"admission:         deferred {self.deferred}, "
                f"shed {self.shed} (rate {self.shed_rate:.2f})"
            )
        lines.extend(
            [
                f"task wait (h):     p50 {self.task_wait_p50:.2f}"
                f"  p90 {self.task_wait_p90:.2f}  p99 {self.task_wait_p99:.2f}",
                f"round latency (s): p50 {self.round_latency_p50:.4f}"
                f"  p99 {self.round_latency_p99:.4f}",
            ]
        )
        return "\n".join(lines)


class StreamMetrics:
    """Incrementally collected streaming statistics.

    Counters and per-round records are exact; wait and round-latency
    distributions are bounded :class:`~repro.obs.histo.LogHistogram`\\ s, so
    memory stays fixed over arbitrarily long horizons while percentiles
    keep a ~3.7 % relative-error bound.  :meth:`state_dict` /
    :meth:`load_state_dict` round-trip the whole collector exactly.
    """

    def __init__(self) -> None:
        self.rounds: list[RoundRecord] = []
        self.task_wait_histogram = LogHistogram(**WAIT_HOURS_HISTOGRAM)
        self.worker_wait_histogram = LogHistogram(**WAIT_HOURS_HISTOGRAM)
        self.round_latency_histogram = LogHistogram(**SECONDS_HISTOGRAM)
        self.total_assigned = 0
        self.total_expired = 0
        self.total_churned = 0
        self.total_cancelled = 0
        self.total_relocated = 0
        self.total_deferred = 0
        self.total_shed = 0
        self.total_drained = 0
        self.total_repacks = 0
        self.wall_seconds = 0.0

    # ------------------------------------------------------------ recording
    def on_round(self, record: RoundRecord) -> None:
        """Record one completed round."""
        self.rounds.append(record)
        self.round_latency_histogram.record(record.round_seconds)
        self.total_assigned += record.assigned
        self.total_expired += record.expired_tasks
        self.total_churned += record.churned_workers
        self.total_cancelled += record.cancelled_tasks
        self.total_relocated += record.relocated_workers
        self.total_deferred += record.deferred_tasks
        self.total_shed += record.shed_tasks
        self.total_drained += record.drained_events
        self.total_repacks += record.repacks

    def on_assigned(self, task_wait_hours: float, worker_wait_hours: float) -> None:
        """Record one matched pair's waits (publication/arrival to round)."""
        self.task_wait_histogram.record(task_wait_hours)
        self.worker_wait_histogram.record(worker_wait_hours)

    def add_wall_seconds(self, seconds: float) -> None:
        """Accumulate wall-clock time spent inside ``run`` (drain + rounds)."""
        self.wall_seconds += seconds

    # ------------------------------------------------------------- summaries
    def round_latency_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> dict[float, float]:
        """Percentiles of per-round assignment latency in seconds."""
        return self.round_latency_histogram.percentiles(qs)

    def phase_totals(self) -> dict[str, float]:
        """Cumulative per-phase seconds across all recorded rounds.

        Sums can exceed ``wall_seconds`` under a pipelined executor — the
        phases are measured as per-shard spans, which overlap in time.
        """
        return {
            phase: sum(getattr(r, f"{phase}_seconds") for r in self.rounds)
            for phase in ("drain", "prepare", "solve", "merge")
        }

    def task_wait_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> dict[float, float]:
        """Percentiles of publication-to-assignment wait in sim hours."""
        return self.task_wait_histogram.percentiles(qs)

    @property
    def sim_hours(self) -> float:
        """Simulated time covered by the recorded rounds."""
        if not self.rounds:
            return 0.0
        return self.rounds[-1].time - self.rounds[0].time

    def summary(self) -> StreamSummary:
        """Freeze the current counters into a :class:`StreamSummary`."""
        latency = self.round_latency_percentiles((50.0, 99.0))
        waits = self.task_wait_percentiles((50.0, 90.0, 99.0))
        sim_hours = self.sim_hours
        seen_tasks = (
            self.total_assigned + self.total_expired + self.total_cancelled
            + self.total_shed
        )
        seen_workers = self.total_assigned + self.total_churned
        return StreamSummary(
            rounds=len(self.rounds),
            assigned=self.total_assigned,
            expired=self.total_expired,
            churned=self.total_churned,
            cancelled=self.total_cancelled,
            relocated=self.total_relocated,
            deferred=self.total_deferred,
            shed=self.total_shed,
            events_drained=self.total_drained,
            sim_hours=sim_hours,
            wall_seconds=self.wall_seconds,
            task_wait_p50=waits[50.0],
            task_wait_p90=waits[90.0],
            task_wait_p99=waits[99.0],
            round_latency_p50=latency[50.0],
            round_latency_p99=latency[99.0],
            events_per_second=(
                self.total_drained / self.wall_seconds if self.wall_seconds > 0 else 0.0
            ),
            assigned_per_sim_hour=(
                self.total_assigned / sim_hours if sim_hours > 0 else 0.0
            ),
            expiry_rate=(self.total_expired / seen_tasks if seen_tasks else 0.0),
            churn_rate=(self.total_churned / seen_workers if seen_workers else 0.0),
            shed_rate=(self.total_shed / seen_tasks if seen_tasks else 0.0),
        )

    # ----------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """All collector state for checkpoints.

        ``rounds`` is a dense float array; the wait histograms serialize as
        their JSON-safe :meth:`~repro.obs.histo.LogHistogram.state_dict`
        snapshots.  The round-latency histogram is deliberately *not*
        included: it is a pure function of the ``rounds`` rows (replayed by
        :meth:`load_state_dict` through :meth:`on_round`), and keeping it
        out of the persisted state keeps checkpoint metadata free of
        wall-clock timing noise for the crash-recovery comparison.
        """
        fields = RoundRecord.__slots__
        return {
            "rounds": np.array(
                [[getattr(r, name) for name in fields] for r in self.rounds],
                dtype=float,
            ).reshape(len(self.rounds), len(fields)),
            "task_waits": self.task_wait_histogram.state_dict(),
            "worker_waits": self.worker_wait_histogram.state_dict(),
            "wall_seconds": self.wall_seconds,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output bit-exactly.

        Raises :class:`~repro.exceptions.DataError` when a saved wait
        histogram's bucket configuration does not match the current build's.
        """
        fields = RoundRecord.__slots__
        float_fields = {
            "time", "round_seconds", "drain_seconds", "prepare_seconds",
            "solve_seconds", "merge_seconds",
        }
        int_fields = {name for name in fields if name not in float_fields}
        self.__init__()
        for row in np.asarray(state["rounds"], dtype=float).reshape(-1, len(fields)):
            values = {
                name: (int(value) if name in int_fields else float(value))
                for name, value in zip(fields, row)
            }
            self.on_round(RoundRecord(**values))
        self.task_wait_histogram.load_state_dict(state["task_waits"])
        self.worker_wait_histogram.load_state_dict(state["worker_waits"])
        self.wall_seconds = float(state["wall_seconds"])
