"""Cell-partitioned shard planning for the streaming runtime.

:class:`ShardLayout` splits the plane of a run into *shards*: groups of
:func:`~repro.geo.cell_key` grid cells such that **no feasible (worker,
task) pair is ever split across shards**.  Two cells are linked whenever
the minimum distance between them (:func:`~repro.geo.cell_gap_km`) does not
exceed the largest worker radius appearing anywhere in the event log — a
radius-aware halo — and shards are unions of the resulting connected
components.  Any pair with ``d(w.l, s.l) <= w.r`` therefore lands in one
shard, so running the assigner per shard and merging in sorted shard order
(the :func:`~repro.assignment.partitioned.merge_assignments` core shared
with the offline :class:`~repro.assignment.PartitionedAssigner`) is an
*exact* decomposition of the round, not a border-lossy approximation.

The layout is planned once per run from the full columnar
:class:`~repro.stream.events.EventLog` (every location that can ever enter
the pools is known upfront), stays fixed for the run, and serializes into
checkpoints so a resumed run shards identically.

**Relocation and the never-split invariant.**  Relocation rows carry their
new coordinates in the log's ``x``/``y`` columns, so
:meth:`EventLog.cell_keys` — and therefore the set of occupied cells the
planner unions — includes every position a worker can ever occupy, not
just where it first arrived.  That is the layout refresh rule for
multi-day replay: the layout need not change mid-run because it was
planned against all relocation targets upfront; a relocated worker lands
in a planned cell whose halo links it to every task within its radius.
:meth:`ShardLayout.covers` makes the rule checkable.

The flip side of exactness: a world whose occupied cells form one connected
blob yields one component, and the planner honestly reports that nothing
can be split (``num_shards`` collapses to 1).  Sharding pays off on worlds
with spatial structure — multiple cities/clusters separated by more than
the worker radius — which is what
:func:`~repro.stream.events.synthetic_stream` models with ``clusters > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.geo import Point, cell_gap_km, cell_key

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.stream.events import EventLog

#: Fallback cell size when the log names no worker radius (no arrivals).
DEFAULT_CELL_KM = 25.0


def unpack_cell(packed: int) -> tuple[int, int]:
    """Invert the int64 cell packing of :meth:`EventLog.cell_keys`."""
    from repro.stream.events import CELL_OFFSET

    base = 2 * CELL_OFFSET
    return (int(packed) // base - CELL_OFFSET, int(packed) % base - CELL_OFFSET)


class _UnionFind:
    """Plain union-find by index, path-halving, union by size."""

    def __init__(self, count: int) -> None:
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, node: int) -> int:
        parent = self.parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.size[root_a] < self.size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        self.size[root_a] += self.size[root_b]


@dataclass
class ShardLayout:
    """A fixed cell→shard map with the no-split-pair guarantee.

    Attributes
    ----------
    cell_km:
        Side length of the planning cells.
    num_shards:
        Number of shard bins actually used (``<=`` the requested count —
        a world with fewer connected components cannot use more shards).
    max_radius_km:
        The radius the halo was planned for; pairs within this distance
        are guaranteed unsplit.
    cells:
        Occupied planning cell → shard id.
    """

    cell_km: float
    num_shards: int
    max_radius_km: float
    cells: dict[tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def plan(
        cls,
        log: "EventLog",
        num_shards: int,
        cell_km: float | None = None,
    ) -> "ShardLayout":
        """Plan a layout for ``log`` aiming for ``num_shards`` shards.

        Occupied cells come from every arrival/publish location in the
        log; cells whose gap is within the log's largest worker radius are
        unioned; the resulting components are packed into at most
        ``num_shards`` bins, largest-load first onto the least-loaded bin
        (ties by bin index) — fully deterministic for a given log.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        radius = log.max_reachable_km()
        if cell_km is None:
            # Half the radius: cell-gap linking overestimates closeness by
            # up to two cell widths, so R/2 cells split any two regions
            # separated by more than 2R (R cells would need 3R).
            cell_km = radius / 2.0 if radius > 0 else DEFAULT_CELL_KM
        if cell_km <= 0:
            raise ValueError(f"cell_km must be positive, got {cell_km}")

        packed = log.cell_keys(cell_km)
        located = ~np.isnan(log.columns["x"])
        occupied, loads = np.unique(packed[located], return_counts=True)
        keys = [unpack_cell(value) for value in occupied]
        if not keys:
            return cls(cell_km=cell_km, num_shards=1, max_radius_km=radius)

        index_of = {key: position for position, key in enumerate(keys)}
        reach = int(np.ceil(radius / cell_km)) + 1
        offsets = [
            (dx, dy)
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
            if (dx, dy) > (0, 0)  # half-plane: each unordered pair once
            if cell_gap_km((0, 0), (dx, dy), cell_km) <= radius
        ]
        union = _UnionFind(len(keys))
        for position, (kx, ky) in enumerate(keys):
            for dx, dy in offsets:
                neighbor = index_of.get((kx + dx, ky + dy))
                if neighbor is not None:
                    union.union(position, neighbor)

        components: dict[int, list[int]] = {}
        for position in range(len(keys)):
            components.setdefault(union.find(position), []).append(position)
        # Deterministic packing: heaviest component first, onto the
        # least-loaded bin, ties broken by the component's smallest cell.
        ordered = sorted(
            components.values(),
            key=lambda members: (-int(loads[members].sum()), min(members)),
        )
        bins = min(num_shards, len(ordered))
        bin_load = [0] * bins
        cells: dict[tuple[int, int], int] = {}
        for members in ordered:
            shard = min(range(bins), key=lambda b: (bin_load[b], b))
            bin_load[shard] += int(loads[members].sum())
            for member in members:
                cells[keys[member]] = shard
        return cls(
            cell_km=cell_km,
            num_shards=bins,
            max_radius_km=radius,
            cells=cells,
        )

    # --------------------------------------------------------------- queries
    def shard_of_cell(self, key: tuple[int, int]) -> int:
        """Shard of a planning cell (deterministic hash for unseen cells).

        Every location reachable through the event log is in ``cells``;
        the hash fallback only exists so hand-mutated pools cannot crash
        the executor, and is as deterministic as the map itself.
        """
        shard = self.cells.get(key)
        if shard is not None:
            return shard
        return ((key[0] * 73856093) ^ (key[1] * 19349663)) % self.num_shards

    def shard_of(self, location: Point) -> int:
        """Shard owning a planar location."""
        return self.shard_of_cell(cell_key(location.x, location.y, self.cell_km))

    def component_count(self) -> int:
        """Distinct shards that actually own at least one cell."""
        return len(set(self.cells.values())) if self.cells else 1

    def covers(self, log: "EventLog") -> bool:
        """Whether every located event row of ``log`` maps to a planned cell.

        True for any layout planned (with this ``cell_km``) from a log
        containing these rows — arrival, publish *and relocation* positions
        are all planning inputs — so the deterministic-hash fallback of
        :meth:`shard_of_cell` never fires during replay.  False means the
        log was not the one this layout was planned for.
        """
        packed = log.cell_keys(self.cell_km)
        located = ~np.isnan(log.columns["x"])
        return all(
            unpack_cell(int(value)) in self.cells
            for value in np.unique(packed[located])
        )

    # ----------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable description (checkpoint payload)."""
        return {
            "cell_km": self.cell_km,
            "num_shards": self.num_shards,
            "max_radius_km": self.max_radius_km,
            "cells": [[kx, ky, shard] for (kx, ky), shard in sorted(self.cells.items())],
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "ShardLayout":
        """Rebuild a layout from :meth:`state_dict` output."""
        return cls(
            cell_km=float(state["cell_km"]),
            num_shards=int(state["num_shards"]),
            max_radius_km=float(state["max_radius_km"]),
            cells={
                (int(kx), int(ky)): int(shard) for kx, ky, shard in state["cells"]
            },
        )
