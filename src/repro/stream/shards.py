"""Cell-partitioned shard planning for the streaming runtime.

:class:`ShardLayout` splits the plane of a run into *shards*: groups of
:func:`~repro.geo.cell_key` grid cells such that **no feasible (worker,
task) pair is ever split across shards**.  Two cells are linked whenever
the minimum distance between them (:func:`~repro.geo.cell_gap_km`) does not
exceed the largest worker radius appearing anywhere in the event log — a
radius-aware halo — and shards are unions of the resulting connected
components.  Any pair with ``d(w.l, s.l) <= w.r`` therefore lands in one
shard, so running the assigner per shard and merging in sorted shard order
(the :func:`~repro.assignment.partitioned.merge_assignments` core shared
with the offline :class:`~repro.assignment.PartitionedAssigner`) is an
*exact* decomposition of the round, not a border-lossy approximation.

The layout is planned once per run from the full columnar
:class:`~repro.stream.events.EventLog` (every location that can ever enter
the pools is known upfront), stays fixed for the run, and serializes into
checkpoints so a resumed run shards identically.

**Relocation and the never-split invariant.**  Relocation rows carry their
new coordinates in the log's ``x``/``y`` columns, so
:meth:`EventLog.cell_keys` — and therefore the set of occupied cells the
planner unions — includes every position a worker can ever occupy, not
just where it first arrived.  That is the layout refresh rule for
multi-day replay: the layout need not change mid-run because it was
planned against all relocation targets upfront; a relocated worker lands
in a planned cell whose halo links it to every task within its radius.
:meth:`ShardLayout.covers` makes the rule checkable.

The flip side of exactness: a world whose occupied cells form one connected
blob yields one component, and the planner honestly reports that nothing
can be split (``num_shards`` collapses to 1).  Sharding pays off on worlds
with spatial structure — multiple cities/clusters separated by more than
the worker radius — which is what
:func:`~repro.stream.events.synthetic_stream` models with ``clusters > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro.geo import Point, cell_gap_km, cell_key

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.stream.events import EventLog

#: Fallback cell size when the log names no worker radius (no arrivals).
DEFAULT_CELL_KM = 25.0


def unpack_cell(packed: int) -> tuple[int, int]:
    """Invert the int64 cell packing of :meth:`EventLog.cell_keys`."""
    from repro.stream.events import CELL_OFFSET

    base = 2 * CELL_OFFSET
    return (int(packed) // base - CELL_OFFSET, int(packed) % base - CELL_OFFSET)


class _UnionFind:
    """Plain union-find by index, path-halving, union by size."""

    def __init__(self, count: int) -> None:
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, node: int) -> int:
        parent = self.parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.size[root_a] < self.size[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        self.size[root_a] += self.size[root_b]


@dataclass
class ShardLayout:
    """A fixed cell→shard map with the no-split-pair guarantee.

    Attributes
    ----------
    cell_km:
        Side length of the planning cells.
    num_shards:
        Number of shard bins actually used (``<=`` the requested count —
        a world with fewer connected components cannot use more shards).
    max_radius_km:
        The radius the halo was planned for; pairs within this distance
        are guaranteed unsplit.
    cells:
        Occupied planning cell → shard id.
    components:
        Occupied planning cell → connected-component id.  Components are
        the never-split units; ids are assigned in the planner's packing
        order (heaviest first) so they are stable for a given log.  Only
        the component→shard packing may change over a run (see
        :meth:`repacked` and :class:`ShardRebalancer`); the component
        partition itself is immutable.
    """

    cell_km: float
    num_shards: int
    max_radius_km: float
    cells: dict[tuple[int, int], int] = field(default_factory=dict)
    components: dict[tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def plan(
        cls,
        log: "EventLog",
        num_shards: int,
        cell_km: float | None = None,
    ) -> "ShardLayout":
        """Plan a layout for ``log`` aiming for ``num_shards`` shards.

        Occupied cells come from every arrival/publish location in the
        log; cells whose gap is within the log's largest worker radius are
        unioned; the resulting components are packed into at most
        ``num_shards`` bins, largest-load first onto the least-loaded bin
        (ties by bin index) — fully deterministic for a given log.

        The planner consumes only the *aggregate* cell occupancy
        (``log.cell_key_counts``), so a
        :class:`~repro.stream.segments.SegmentedEventLog` plans the same
        layout by unioning per-segment occupancy up front — O(occupied
        cells) memory, never the materialized horizon — and the
        never-split invariant holds across every window.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        radius = log.max_reachable_km()
        if cell_km is None:
            # Half the radius: cell-gap linking overestimates closeness by
            # up to two cell widths, so R/2 cells split any two regions
            # separated by more than 2R (R cells would need 3R).
            cell_km = radius / 2.0 if radius > 0 else DEFAULT_CELL_KM
        if cell_km <= 0:
            raise ValueError(f"cell_km must be positive, got {cell_km}")

        occupied, loads = log.cell_key_counts(cell_km)
        keys = [unpack_cell(value) for value in occupied]
        if not keys:
            return cls(cell_km=cell_km, num_shards=1, max_radius_km=radius)

        index_of = {key: position for position, key in enumerate(keys)}
        reach = int(np.ceil(radius / cell_km)) + 1
        offsets = [
            (dx, dy)
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
            if (dx, dy) > (0, 0)  # half-plane: each unordered pair once
            if cell_gap_km((0, 0), (dx, dy), cell_km) <= radius
        ]
        union = _UnionFind(len(keys))
        for position, (kx, ky) in enumerate(keys):
            for dx, dy in offsets:
                neighbor = index_of.get((kx + dx, ky + dy))
                if neighbor is not None:
                    union.union(position, neighbor)

        components: dict[int, list[int]] = {}
        for position in range(len(keys)):
            components.setdefault(union.find(position), []).append(position)
        # Deterministic packing: heaviest component first, onto the
        # least-loaded bin, ties broken by the component's smallest cell.
        ordered = sorted(
            components.values(),
            key=lambda members: (-int(loads[members].sum()), min(members)),
        )
        bins = min(num_shards, len(ordered))
        bin_load = [0] * bins
        cells: dict[tuple[int, int], int] = {}
        component_of: dict[tuple[int, int], int] = {}
        for component, members in enumerate(ordered):
            shard = min(range(bins), key=lambda b: (bin_load[b], b))
            bin_load[shard] += int(loads[members].sum())
            for member in members:
                cells[keys[member]] = shard
                component_of[keys[member]] = component
        return cls(
            cell_km=cell_km,
            num_shards=bins,
            max_radius_km=radius,
            cells=cells,
            components=component_of,
        )

    # --------------------------------------------------------------- queries
    def shard_of_cell(self, key: tuple[int, int]) -> int:
        """Shard of a planning cell (deterministic hash for unseen cells).

        Every location reachable through the event log is in ``cells``;
        the hash fallback only exists so hand-mutated pools cannot crash
        the executor, and is as deterministic as the map itself.
        """
        shard = self.cells.get(key)
        if shard is not None:
            return shard
        return ((key[0] * 73856093) ^ (key[1] * 19349663)) % self.num_shards

    def shard_of(self, location: Point) -> int:
        """Shard owning a planar location."""
        return self.shard_of_cell(cell_key(location.x, location.y, self.cell_km))

    def component_count(self) -> int:
        """Distinct shards that actually own at least one cell."""
        return len(set(self.cells.values())) if self.cells else 1

    def component_of_cell(self, key: tuple[int, int]) -> int:
        """Component of a planning cell, ``-1`` for cells never planned."""
        return self.components.get(key, -1)

    def component_of(self, location: Point) -> int:
        """Component owning a planar location (``-1`` if unplanned)."""
        return self.component_of_cell(cell_key(location.x, location.y, self.cell_km))

    def component_bins(self) -> dict[int, int]:
        """The current component→shard packing, derived from ``cells``."""
        bins: dict[int, int] = {}
        for key, component in self.components.items():
            bins[component] = self.cells[key]
        return bins

    def repacked(self, assignment: dict[int, int]) -> "ShardLayout":
        """A new layout with the same cells/components under a new packing.

        ``assignment`` maps every component id to a shard bin in
        ``range(num_shards)``.  Cells, components, ``cell_km`` and the halo
        radius are untouched, so the never-split-a-feasible-pair guarantee
        carries over verbatim — only which bin solves each component moves.
        """
        missing = set(self.components.values()) - set(assignment)
        if missing:
            raise ValueError(f"assignment misses components {sorted(missing)}")
        bad = [b for b in assignment.values() if not 0 <= b < self.num_shards]
        if bad:
            raise ValueError(
                f"assignment targets out-of-range bins {sorted(set(bad))}"
            )
        return ShardLayout(
            cell_km=self.cell_km,
            num_shards=self.num_shards,
            max_radius_km=self.max_radius_km,
            cells={
                key: assignment[component]
                for key, component in self.components.items()
            },
            components=dict(self.components),
        )

    def covers(self, log: "EventLog") -> bool:
        """Whether every located event row of ``log`` maps to a planned cell.

        True for any layout planned (with this ``cell_km``) from a log
        containing these rows — arrival, publish *and relocation* positions
        are all planning inputs — so the deterministic-hash fallback of
        :meth:`shard_of_cell` never fires during replay.  False means the
        log was not the one this layout was planned for.
        """
        occupied, _ = log.cell_key_counts(self.cell_km)
        return all(unpack_cell(int(value)) in self.cells for value in occupied)

    # ----------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable description (checkpoint payload)."""
        return {
            "cell_km": self.cell_km,
            "num_shards": self.num_shards,
            "max_radius_km": self.max_radius_km,
            "cells": [
                [kx, ky, shard, self.components.get((kx, ky), -1)]
                for (kx, ky), shard in sorted(self.cells.items())
            ],
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "ShardLayout":
        """Rebuild a layout from :meth:`state_dict` output."""
        cells: dict[tuple[int, int], int] = {}
        components: dict[tuple[int, int], int] = {}
        for row in state["cells"]:
            kx, ky, shard = int(row[0]), int(row[1]), int(row[2])
            cells[(kx, ky)] = shard
            component = int(row[3]) if len(row) > 3 else -1
            if component >= 0:
                components[(kx, ky)] = component
        return cls(
            cell_km=float(state["cell_km"]),
            num_shards=int(state["num_shards"]),
            max_radius_km=float(state["max_radius_km"]),
            cells=cells,
            components=components,
        )


def pack_components(weights: Mapping[int, float], bins: int) -> dict[int, int]:
    """Greedy component→bin packing, heaviest component first.

    The exact packing rule of :meth:`ShardLayout.plan` — components sorted
    by ``(-weight, component_id)``, each placed on the least-loaded bin with
    ties broken by bin index — applied to arbitrary weights instead of
    entity counts.  Fully deterministic for a given weight map.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    ordered = sorted(weights, key=lambda component: (-weights[component], component))
    bin_load = [0.0] * bins
    assignment: dict[int, int] = {}
    for component in ordered:
        shard = min(range(bins), key=lambda b: (bin_load[b], b))
        bin_load[shard] += float(weights[component])
        assignment[component] = shard
    return assignment


class ShardRebalancer:
    """Latency-driven shard repacking on an EWMA of per-component cost.

    The planner packs components by *entity count*, a proxy that can be
    badly off when per-entity solve cost varies across regions.  The
    rebalancer folds each round's observed per-shard solve latency into a
    per-component EWMA (a shard's latency is attributed to its components
    proportionally to their entity counts) and, at deterministic round
    boundaries (``round_index % interval == 0`` — never wall-clock),
    proposes a fresh :func:`pack_components` packing.  The repack is
    applied only when it improves the predicted bottleneck-bin latency by
    more than ``hysteresis`` (relative), so near-ties never thrash.

    Repacking moves whole components between bins; the never-split
    invariant lives in the component partition, which is immutable, so any
    packing — including every intermediate one a resumed run replays —
    yields assignment-equivalent rounds.

    ``latency_of(shard, entities, seconds)`` converts an attributed
    observation into the EWMA sample; the default returns the measured
    seconds.  Tests inject deterministic shapes (e.g. ``lambda s, n, sec:
    float(n)``) to pin repack decisions independent of wall-clock.
    """

    def __init__(
        self,
        interval: int = 16,
        alpha: float = 0.25,
        hysteresis: float = 0.1,
        latency_of: Callable[[int, int, float], float] | None = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if hysteresis < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        self.interval = int(interval)
        self.alpha = float(alpha)
        self.hysteresis = float(hysteresis)
        self.latency_of = latency_of
        self.ewma: dict[int, float] = {}
        self.last_repack = -1
        self.observed_rounds = 0
        #: Telemetry for the most recent *applied* repack: round index and
        #: predicted bottleneck-bin latency before/after.  Observational
        #: only — deliberately absent from :meth:`state_dict`, since the
        #: bottleneck figures derive from wall-clock EWMA samples and the
        #: checkpoint meta must stay timing-free.
        self.last_decision: dict[str, float] | None = None

    # --------------------------------------------------------------- observe
    def observe(
        self,
        layout: ShardLayout,
        shard_seconds: Mapping[int, float],
        component_entities: Mapping[int, int],
    ) -> None:
        """Fold one round's per-shard solve spans into the component EWMA.

        A bin's measured seconds are split across its populated components
        proportionally to entity count — the best attribution available
        without per-component timers inside the solver.
        """
        bins = layout.component_bins()
        bin_entities: dict[int, int] = {}
        for component, entities in component_entities.items():
            shard = bins.get(component)
            if shard is not None and entities > 0:
                bin_entities[shard] = bin_entities.get(shard, 0) + int(entities)
        for component in sorted(component_entities):
            entities = int(component_entities[component])
            shard = bins.get(component)
            if shard is None or entities <= 0:
                continue
            share = shard_seconds.get(shard, 0.0) * entities / bin_entities[shard]
            sample = (
                float(self.latency_of(shard, entities, share))
                if self.latency_of is not None
                else float(share)
            )
            previous = self.ewma.get(component)
            self.ewma[component] = (
                sample
                if previous is None
                else previous + self.alpha * (sample - previous)
            )
        self.observed_rounds += 1

    # ---------------------------------------------------------------- repack
    def maybe_repack(self, round_index: int, layout: ShardLayout) -> ShardLayout | None:
        """A repacked layout for this round boundary, or ``None``.

        Deterministic given the EWMA state: fires only when ``round_index``
        is a positive multiple of ``interval``, the candidate packing
        differs, and the predicted max-bin latency drops by more than
        ``hysteresis`` (relative).
        """
        if round_index <= 0 or round_index % self.interval:
            return None
        if layout.num_shards <= 1 or not self.ewma:
            return None
        current = layout.component_bins()
        weights = {component: self.ewma.get(component, 0.0) for component in current}
        candidate = pack_components(weights, layout.num_shards)
        if candidate == current:
            return None

        def max_bin(assignment: Mapping[int, int]) -> float:
            load: dict[int, float] = {}
            for component, shard in assignment.items():
                load[shard] = load.get(shard, 0.0) + weights[component]
            return max(load.values(), default=0.0)

        current_max = max_bin(current)
        if current_max <= 0.0:
            return None
        candidate_max = max_bin(candidate)
        if (current_max - candidate_max) / current_max <= self.hysteresis:
            return None
        self.last_repack = int(round_index)
        self.last_decision = {
            "round": int(round_index),
            "bottleneck_before": float(current_max),
            "bottleneck_after": float(candidate_max),
        }
        return layout.repacked(candidate)

    # ----------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable EWMA state (checkpoint payload)."""
        return {
            "interval": self.interval,
            "alpha": self.alpha,
            "hysteresis": self.hysteresis,
            "ewma": [
                [component, value] for component, value in sorted(self.ewma.items())
            ],
            "last_repack": self.last_repack,
            "observed_rounds": self.observed_rounds,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output bit-exactly (config untouched)."""
        self.ewma = {
            int(component): float(value) for component, value in state["ewma"]
        }
        self.last_repack = int(state["last_repack"])
        self.observed_rounds = int(state["observed_rounds"])
