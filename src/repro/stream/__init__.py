"""repro.stream — the event-driven streaming runtime.

The paper's online protocol (workers online until assigned, tasks live
until expiry) as a continuous-serving subsystem rather than a precomputed
day loop:

* :mod:`repro.stream.events` — typed arrival/publish/expiry/churn/cancel
  events in a deterministic, replayable :class:`EventLog` (built from
  dataset days or synthetic generators);
* :mod:`repro.stream.scheduler` — pluggable micro-batch triggers (count,
  time window, hybrid, latency-adaptive);
* :mod:`repro.stream.state` — live worker/task pools with an incrementally
  maintained spatial index, reusing the PR-1 round caches;
* :mod:`repro.stream.metrics` — wait-time/latency percentiles (backed by
  the mergeable, checkpointable :mod:`repro.obs` histograms), throughput,
  expiry/churn rates;
* :mod:`repro.stream.runtime` — :class:`StreamRuntime`, the loop tying it
  together (bit-identical to the batched ``OnlineSimulator`` under
  equivalent boundaries), plus :class:`ShardExecutor`, the cell-sharded
  round executor (serial / thread-pool / process-pool backends);
* :mod:`repro.stream.shards` — :class:`ShardLayout`, the radius-aware
  cell partition that never splits a feasible (worker, task) pair;
* :mod:`repro.stream.segments` — :class:`SegmentedEventLog`, the
  bounded-memory drop-in for :class:`EventLog`: the horizon is built
  lazily in time-window segments, cached under a small LRU budget and
  released as the cursor passes, with replay bit-identical to the
  materialized log;
* :mod:`repro.stream.checkpoint` — atomic, content-addressed chunked
  snapshots (v7 manifest + sha256 chunk store) with bit-identical resume
  (including shard layout, per-shard RNG state, wait-histogram state and
  the segmented-log fingerprint chain in the manifest meta);
* :mod:`repro.stream.sharedmem` — fork-once shared-memory slabs backing
  the process executor (entity tables published once per run, per-shard
  round rectangles shipped through reusable scratch buffers).
"""

from repro.stream.checkpoint import (
    CHECKPOINT_SUFFIX,
    canonical_checkpoint_path,
    chunk_store_path,
    load_checkpoint,
    load_checkpoint_manifest,
    load_checkpoint_meta,
    restore_runtime,
    save_checkpoint,
    validate_checkpoint_meta,
)
from repro.stream.events import (
    EventLog,
    StreamEvent,
    TaskCancelEvent,
    TaskExpiryEvent,
    TaskPublishEvent,
    WorkerArrivalEvent,
    WorkerChurnEvent,
    WorkerRelocateEvent,
    day_stream,
    expiry_events,
    log_from_arrivals,
    multi_day_stream,
    synthetic_stream,
)
from repro.stream.metrics import RoundRecord, StreamMetrics, StreamSummary
from repro.stream.segments import SegmentedEventLog, SegmentInfo
from repro.stream.runtime import (
    ADMISSION_POLICIES,
    EXECUTOR_BACKENDS,
    AdmissionController,
    ShardExecutor,
    StreamResult,
    StreamRuntime,
)
from repro.stream.shards import ShardLayout, ShardRebalancer, pack_components
from repro.stream.scheduler import (
    AdaptiveTrigger,
    CountTrigger,
    HybridTrigger,
    TimeWindowTrigger,
    Trigger,
)
from repro.stream.state import StreamState

__all__ = [
    # events
    "StreamEvent",
    "WorkerArrivalEvent",
    "TaskPublishEvent",
    "TaskCancelEvent",
    "TaskExpiryEvent",
    "WorkerChurnEvent",
    "WorkerRelocateEvent",
    "EventLog",
    "SegmentedEventLog",
    "SegmentInfo",
    "expiry_events",
    "log_from_arrivals",
    "day_stream",
    "multi_day_stream",
    "synthetic_stream",
    # scheduling
    "Trigger",
    "CountTrigger",
    "TimeWindowTrigger",
    "HybridTrigger",
    "AdaptiveTrigger",
    # state & metrics
    "StreamState",
    "RoundRecord",
    "StreamMetrics",
    "StreamSummary",
    # runtime, sharding & checkpoints
    "StreamRuntime",
    "StreamResult",
    "AdmissionController",
    "ADMISSION_POLICIES",
    "ShardExecutor",
    "ShardLayout",
    "ShardRebalancer",
    "pack_components",
    "EXECUTOR_BACKENDS",
    "CHECKPOINT_SUFFIX",
    "canonical_checkpoint_path",
    "chunk_store_path",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_manifest",
    "load_checkpoint_meta",
    "validate_checkpoint_meta",
    "restore_runtime",
]
