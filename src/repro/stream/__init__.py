"""repro.stream — the event-driven streaming runtime.

The paper's online protocol (workers online until assigned, tasks live
until expiry) as a continuous-serving subsystem rather than a precomputed
day loop:

* :mod:`repro.stream.events` — typed arrival/publish/expiry/churn/cancel
  events in a deterministic, replayable :class:`EventLog` (built from
  dataset days or synthetic generators);
* :mod:`repro.stream.scheduler` — pluggable micro-batch triggers (count,
  time window, hybrid, latency-adaptive);
* :mod:`repro.stream.state` — live worker/task pools with an incrementally
  maintained spatial index, reusing the PR-1 round caches;
* :mod:`repro.stream.metrics` — wait-time/latency percentiles, throughput,
  expiry/churn rates;
* :mod:`repro.stream.runtime` — :class:`StreamRuntime`, the loop tying it
  together (bit-identical to the batched ``OnlineSimulator`` under
  equivalent boundaries);
* :mod:`repro.stream.checkpoint` — npz snapshot + bit-identical resume.
"""

from repro.stream.checkpoint import load_checkpoint, restore_runtime, save_checkpoint
from repro.stream.events import (
    EventLog,
    StreamEvent,
    TaskCancelEvent,
    TaskExpiryEvent,
    TaskPublishEvent,
    WorkerArrivalEvent,
    WorkerChurnEvent,
    day_stream,
    expiry_events,
    log_from_arrivals,
    synthetic_stream,
)
from repro.stream.metrics import RoundRecord, StreamMetrics, StreamSummary
from repro.stream.runtime import StreamResult, StreamRuntime
from repro.stream.scheduler import (
    AdaptiveTrigger,
    CountTrigger,
    HybridTrigger,
    TimeWindowTrigger,
    Trigger,
)
from repro.stream.state import StreamState

__all__ = [
    # events
    "StreamEvent",
    "WorkerArrivalEvent",
    "TaskPublishEvent",
    "TaskCancelEvent",
    "TaskExpiryEvent",
    "WorkerChurnEvent",
    "EventLog",
    "expiry_events",
    "log_from_arrivals",
    "day_stream",
    "synthetic_stream",
    # scheduling
    "Trigger",
    "CountTrigger",
    "TimeWindowTrigger",
    "HybridTrigger",
    "AdaptiveTrigger",
    # state & metrics
    "StreamState",
    "RoundRecord",
    "StreamMetrics",
    "StreamSummary",
    # runtime & checkpoints
    "StreamRuntime",
    "StreamResult",
    "save_checkpoint",
    "load_checkpoint",
    "restore_runtime",
]
