"""Fork-once shared-memory workers for the process executor backend.

The legacy process backend pickled every prepared sub-instance — workers,
tasks, histories, matrices — to the pool on every round, which caps world
size long before "millions of users".  This module replaces the shipping
with :mod:`multiprocessing.shared_memory`:

* :class:`SharedSlabs` publishes the columnar :class:`~repro.stream.events.EventLog`
  payload side-tables (worker/task attribute rectangles + id vectors) as
  read-only shared blocks **once per run**; pool workers attach them in
  their initializer and rebuild entities from payload *slots*.
* :class:`ShardScratch` is one reusable shared block per shard holding the
  round's :class:`~repro.assignment.RoundState` rectangles (distance,
  feasibility mask, influence, entropy) plus the slot vectors.  It grows
  geometrically and is rewritten in place each round, so the per-round
  message to a worker shrinks to a tiny header dict — block name, shapes
  and the round clock.
* :func:`solve_shared_shard` runs in the worker: it maps the scratch
  views zero-copy into a :class:`~repro.assignment.PreparedInstance`,
  solves, and returns plain ``(row, column)`` index pairs; the caller
  rebuilds the full-fidelity assignment against its own prepared instance
  via ``build_assignment`` (which re-validates feasibility), keeping the
  merged round bit-identical to the serial backend.

Preparation always stays in the calling process — the incremental round
caches and the influence model's column caches live there — so the solve,
the CPU-bound part, is all that crosses the process boundary.
"""

from __future__ import annotations

import os
import threading
import time
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.assignment.base import Assigner, FeasiblePairs, PreparedInstance
from repro.data.instance import SCInstance
from repro.entities import Task, Worker
from repro.geo import Point
from repro.stream.events import EventLog

__all__ = [
    "SharedSlabs",
    "ShardScratch",
    "fork_capable_context",
    "init_shared_worker",
    "solve_shared_shard",
]


def fork_capable_context():
    """The ``fork`` start method when the platform has it, else the default.

    Fork lets the pool inherit the parent's loaded modules (no re-import
    per worker) and is what makes "fork-once" cheap; spawn platforms still
    work — the initializer re-attaches the published slabs by name.
    """
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without adopting cleanup responsibility.

    Ownership stays with the :class:`SharedSlabs`/:class:`ShardScratch`
    publisher; attachments here are read-only leases.  On Python 3.13+
    ``track=False`` expresses that directly.  On older versions the attach
    re-registers the name with the resource tracker — harmless here: the
    pool is forked from the publisher, so both sides talk to the *same*
    tracker process, whose per-name cache is a set (the duplicate register
    is a no-op and the publisher's eventual unlink unregisters it once).
    Explicitly unregistering from the worker instead would corrupt that
    shared cache and make the publisher's unlink raise.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _block_of(array: np.ndarray) -> shared_memory.SharedMemory:
    block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    view[...] = array
    del view
    return block


class SharedSlabs:
    """The event log's payload side-tables, published once as shared blocks."""

    def __init__(self, log: EventLog) -> None:
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        specs = []
        for key, array in log.payload_slabs().items():
            array = np.ascontiguousarray(array)
            block = _block_of(array)
            self._blocks[key] = block
            specs.append((key, block.name, array.dtype.str, array.shape))
        #: What a worker initializer needs to re-attach every slab:
        #: ``(key, shm name, dtype, shape)`` per slab — plain picklables.
        self.specs: tuple = tuple(specs)

    def close(self) -> None:
        """Release and unlink every published slab (idempotent)."""
        blocks, self._blocks = self._blocks, {}
        for block in blocks.values():
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


def _scratch_fields(workers: int, tasks: int, inline: bool):
    """Field layout of one shard's scratch block, in buffer order.

    Two variants share the common rectangles; what follows them differs:

    * legacy (``inline=False``): per-round *slot vectors* naming rows of
      the per-run :class:`SharedSlabs` payload tables (materialized logs,
      whose side-tables exist for the whole run);
    * inline (``inline=True``): the entity attribute rectangles and id
      vectors themselves, in shard-row order.  Segmented logs use this —
      their payload tables live inside transient per-segment slabs, so no
      stable run-wide slot space exists to point into.
    """
    fields = [
        ("distance", np.float64, (workers, tasks)),
        ("influence", np.float64, (workers, tasks)),
        ("entropy", np.float64, (tasks,)),
    ]
    if inline:
        fields += [
            ("worker_attrs", np.float64, (workers, 4)),
            ("task_attrs", np.float64, (tasks, 4)),
            ("worker_ids", np.int64, (workers,)),
            ("task_ids", np.int64, (tasks,)),
        ]
    else:
        fields += [
            ("worker_slots", np.int64, (workers,)),
            ("task_slots", np.int64, (tasks,)),
        ]
    fields.append(("mask", np.bool_, (workers, tasks)))
    return fields


def _scratch_views(
    buffer, workers: int, tasks: int, inline: bool = False
) -> dict[str, np.ndarray]:
    """Deterministic layout of one shard's round rectangles in a buffer.

    Publisher and solver both derive the views from ``(workers, tasks,
    inline)`` alone, so no offsets travel in the per-round message.  The
    8-byte dtypes come first, the byte-wide mask last, keeping every view
    aligned.
    """
    offset = 0
    views: dict[str, np.ndarray] = {}
    for name, dtype, shape in _scratch_fields(workers, tasks, inline):
        view = np.ndarray(shape, dtype=dtype, buffer=buffer, offset=offset)
        views[name] = view
        offset += view.nbytes
    return views


def _scratch_bytes(workers: int, tasks: int, inline: bool = False) -> int:
    return sum(
        np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64))
        for _, dtype, shape in _scratch_fields(workers, tasks, inline)
    )


class ShardScratch:
    """One shard's reusable shared block for per-round rectangles.

    ``publish`` rewrites the block in place each round and only allocates
    a fresh (larger) segment when the shard outgrows it — the common round
    ships zero new shared memory, just a header dict.
    """

    def __init__(self) -> None:
        self._block: shared_memory.SharedMemory | None = None

    def publish(
        self,
        *,
        shard: int,
        now: float,
        distance: np.ndarray,
        mask: np.ndarray,
        influence: np.ndarray,
        entropy: np.ndarray,
        worker_slots: np.ndarray | None = None,
        task_slots: np.ndarray | None = None,
        worker_attrs: np.ndarray | None = None,
        worker_ids: np.ndarray | None = None,
        task_attrs: np.ndarray | None = None,
        task_ids: np.ndarray | None = None,
    ) -> dict:
        """Copy one round's rectangles in and return the solve header.

        Exactly one entity addressing mode must be supplied: the legacy
        slot vectors (rows into the run-wide :class:`SharedSlabs`), or the
        inline attribute rectangles + id vectors for logs whose payload
        tables are transient (segmented replay).  The header's ``inline``
        flag tells :func:`solve_shared_shard` which layout to map.
        """
        inline = worker_attrs is not None
        workers, tasks = distance.shape
        needed = _scratch_bytes(workers, tasks, inline)
        if self._block is None or self._block.size < needed:
            self.close()
            self._block = shared_memory.SharedMemory(
                create=True, size=max(needed, 4096)
            )
        views = _scratch_views(self._block.buf, workers, tasks, inline)
        views["distance"][...] = distance
        views["influence"][...] = influence
        views["entropy"][...] = entropy
        if inline:
            views["worker_attrs"][...] = worker_attrs
            views["task_attrs"][...] = task_attrs
            views["worker_ids"][...] = worker_ids
            views["task_ids"][...] = task_ids
        else:
            views["worker_slots"][...] = worker_slots
            views["task_slots"][...] = task_slots
        views["mask"][...] = mask
        del views
        return {
            "shard": shard,
            "name": self._block.name,
            "workers": workers,
            "tasks": tasks,
            "now": now,
            "inline": inline,
        }

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        block, self._block = self._block, None
        if block is not None:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


# --------------------------------------------------------------------------
# Worker-process side.  Module globals are per-process: the initializer
# fills the slab views once, and scratch attachments are cached per shard
# (re-attached only when a shard's block was regrown under a new name).
_worker_slabs: dict[str, np.ndarray] = {}
_worker_blocks: list[shared_memory.SharedMemory] = []
_scratch_cache: dict[int, tuple[str, shared_memory.SharedMemory]] = {}


def init_shared_worker(specs) -> None:
    """Pool initializer: attach every published slab by name."""
    _worker_slabs.clear()
    _worker_blocks.clear()
    _scratch_cache.clear()
    for key, name, dtype, shape in specs:
        block = _attach(name)
        _worker_blocks.append(block)
        _worker_slabs[key] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)


def _attach_scratch(shard: int, name: str) -> shared_memory.SharedMemory:
    cached = _scratch_cache.get(shard)
    if cached is not None:
        if cached[0] == name:
            return cached[1]
        cached[1].close()
    block = _attach(name)
    _scratch_cache[shard] = (name, block)
    return block


def solve_shared_shard(
    assigner: Assigner,
    header: dict,
    warm=None,
    use_warm: bool = False,
) -> tuple[
    int, tuple[np.ndarray, np.ndarray], float, tuple[int, int, int, int], object
]:
    """One shard's solve against shared state; runs in the pool worker.

    Entities are rebuilt from the slab rows the header's slot vectors
    name — or, when the header carries ``inline=True`` (segmented logs,
    which have no run-wide payload slabs), from the attribute rectangles
    shipped inside the scratch block itself.  The rebuilt ``Task`` drops
    ``categories``/``venue_id`` — no
    assigner consults them at solve time (they only read the feasibility/
    influence/entropy rectangles, ids and publication times, all of which
    ride along) — and the caller materializes the returned index pairs
    against its own full-fidelity prepared instance anyway.

    ``use_warm=True`` routes the solve through the assigner's
    ``assign_warm`` with the (possibly ``None``) carried ``warm`` state —
    warm dicts are keyed by real worker/task ids, which the rebuilt
    entities preserve, so carry-over is process-safe.  The final element
    is then ``(warm_out, augmentations, seeded, matched)`` for the
    caller's per-shard carry and solver-effort metrics; ``None`` on cold
    solves.

    The ``(start_ns, end_ns, pid, tid)`` tuple is the solve span on the
    worker's wall clock: the parent's tracer (when one is live) replays it
    onto the shared timeline, attributed to the worker process.
    """
    block = _attach_scratch(header["shard"], header["name"])
    workers_n, tasks_n = header["workers"], header["tasks"]
    inline = bool(header.get("inline"))
    views = _scratch_views(block.buf, workers_n, tasks_n, inline)
    if inline:
        # Segmented logs ship the entity rows in the scratch block itself
        # (shard-row order), so the rows are addressed directly.
        worker_attrs = views["worker_attrs"]
        worker_ids = views["worker_ids"]
        task_attrs = views["task_attrs"]
        task_ids = views["task_ids"]
        worker_rows = range(workers_n)
        task_rows = range(tasks_n)
    else:
        worker_attrs = _worker_slabs["worker_attrs"]
        worker_ids = _worker_slabs["worker_ids"]
        task_attrs = _worker_slabs["task_attrs"]
        task_ids = _worker_slabs["task_ids"]
        worker_rows = views["worker_slots"]
        task_rows = views["task_slots"]
    workers = tuple(
        Worker(
            worker_id=int(worker_ids[slot]),
            location=Point(worker_attrs[slot, 0], worker_attrs[slot, 1]),
            reachable_km=float(worker_attrs[slot, 2]),
            speed_kmh=float(worker_attrs[slot, 3]),
        )
        for slot in worker_rows
    )
    tasks = tuple(
        Task(
            task_id=int(task_ids[slot]),
            location=Point(task_attrs[slot, 0], task_attrs[slot, 1]),
            publication_time=float(task_attrs[slot, 2]),
            valid_hours=float(task_attrs[slot, 3]),
        )
        for slot in task_rows
    )
    instance = SCInstance(
        name=f"shard-{header['shard']}",
        current_time=float(header["now"]),
        tasks=list(tasks),
        workers=list(workers),
        histories={},
        social_edges=[],
        all_worker_ids=(),
    )
    prepared = PreparedInstance(instance, None)
    # Inject the shared rectangles zero-copy, exactly like RoundState does
    # for its incremental caches — the lazy properties never recompute.
    prepared.__dict__["feasible"] = FeasiblePairs(
        workers=workers,
        tasks=tasks,
        distance_km=views["distance"],
        mask=views["mask"],
    )
    prepared.__dict__["influence_matrix"] = views["influence"]
    prepared.__dict__["entropy_by_task"] = {
        task.task_id: float(value)
        for task, value in zip(tasks, views["entropy"])
    }
    started = time.perf_counter()
    start_ns = time.time_ns()
    stats = None
    if use_warm:
        part, matching = assigner.assign_warm(prepared, warm)
        stats = (
            matching.warm,
            matching.augmentations,
            matching.seeded,
            int(matching.rows.size),
        )
    else:
        part = assigner.assign(prepared)
    solved = time.perf_counter() - started
    span = (start_ns, time.time_ns(), os.getpid(), threading.get_ident())
    row_of = {worker.worker_id: row for row, worker in enumerate(workers)}
    column_of = {task.task_id: column for column, task in enumerate(tasks)}
    rows = np.empty(len(part), dtype=np.int64)
    cols = np.empty(len(part), dtype=np.int64)
    for index, pair in enumerate(part):
        rows[index] = row_of[pair.worker.worker_id]
        cols[index] = column_of[pair.task.task_id]
    # Views die here; only the cached SharedMemory handles persist, so a
    # regrown scratch block can be re-attached without BufferError.
    del views, prepared, part
    return header["shard"], (rows, cols), solved, span, stats
