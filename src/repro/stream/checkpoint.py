"""Checkpoint/replay: chunked, content-addressed snapshots with resume.

A checkpoint captures everything the runtime needs to continue
*bit-identically* from where it stopped:

* the **event cursor** and simulation clock — the log itself is not copied;
  a fingerprint of its ``(time, phase, entity)`` triples is stored instead,
  and :func:`restore_runtime` refuses to resume against a different log;
* the **pools**, stored as indices of the arrival/relocation/publish
  events that introduced each pooled entity (entities are rebuilt from the
  log, so the snapshot stays numeric — no pickled objects; a relocated
  worker resolves to the relocation row whose synthesized payload it is,
  so mid-relocation resumes are event-for-event identical);
* the **accumulated result** (assignment pairs as event-index pairs, all
  metrics arrays) so the resumed runtime's final result equals the
  uninterrupted run's, not just its tail;
* **trigger adaptation state** (plus the trigger's policy kind, so a
  resume under a different policy fails with a clear message) and the
  **RNG state** of the runtime's generator, keeping adaptive policies and
  stochastic extensions on the same trajectory;
* for sharded runs, the **shard layout** and the **per-shard RNG states**,
  so a resumed run partitions its rounds identically; with latency-driven
  rebalancing, the layout may be a repack of the planned one and the
  rebalancer's **EWMA state** rides along, so repack decisions replay
  exactly — the pipeline flag and rebalance config are validated up front
  with fast mismatch errors;
* for admission-controlled runs, the **controller state** — overload flag,
  deferred backlog (as publish event indices) and cumulative counters — so
  a resumed run defers/sheds exactly as the uninterrupted one.

Round wall-clock timings are data (they are part of the metrics arrays) but
never inputs to control flow in deterministic triggers, so replay equality
holds for everything except the timings themselves.

**On-disk format (v6).**  A checkpoint is a small binary *manifest* plus a
shared content-addressed *chunk store* directory (``repro-chunks/``) next
to it.  Each state array's contiguous bytes are split into fixed-size
chunks keyed by their sha256 digest; a chunk is written (atomically, via
:func:`repro.ioutil.atomic_write_bytes`) only if the store does not
already hold it, so successive snapshots of a multi-day run share every
chunk whose bytes did not change — append-mostly arrays like the metrics
rows re-use their entire prefix, making periodic saves cheap.  Arrays are
chunked *independently* (never concatenated first) precisely so growth in
one array cannot shift — and thus invalidate — the chunks of every array
behind it.  The manifest is one struct-packed blob::

    header   ``<4sHHQQQ``: magic ``RPCK``, version, flags,
             meta-JSON length, index-JSON length, digest count
    meta     JSON — the same compatibility/meta dict checkpoint v4 stored
    index    JSON — per-array name / dtype / shape / nbytes / chunk refs
    digests  ``digest count`` × 32 raw sha256 bytes (deduplicated)
    trailer  sha256 over all preceding bytes

and is itself published with an atomic temp-file + fsync +
:func:`os.replace`, so every save is all-or-nothing: a crash mid-save
leaves the previous manifest valid and its chunks untouched (chunk files
are content-addressed, hence never rewritten in place).  Loads verify the
trailer and every chunk digest before handing bytes to numpy.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import DataError
from repro.ioutil import atomic_write_bytes
from repro.stream.events import KIND_ARRIVAL, KIND_PUBLISH, KIND_RELOCATE, EventLog
from repro.stream.shards import ShardLayout

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.stream.runtime import StreamRuntime

#: Format marker; bumped on incompatible layout changes.
#: v2: columnar event-log fingerprints, trigger kinds, shard layout + RNGs.
#: v3: relocation-aware pool/assignment event indices, admission-controller
#:     state, and the wider per-round metrics rows
#:     (relocated/deferred/shed columns).
#: v4: pipeline flag, rebalancer config + EWMA state, component ids in the
#:     shard-layout cells, and per-phase timing / repack columns in the
#:     metrics rows.
#: v5: content-addressed chunked layout — struct-packed manifest + sha256
#:     chunk store replacing the monolithic npz archive.
#: v6: bounded wait histograms — the metrics wait distributions serialize
#:     as LogHistogram state dicts in the manifest meta instead of
#:     unbounded per-sample arrays in the chunk store (the round-latency
#:     histogram is rebuilt from the metrics rows on restore).
#: v7: segmented event logs — when the run streamed a
#:     :class:`~repro.stream.segments.SegmentedEventLog` the meta gains a
#:     ``segments`` block (boundaries, per-segment fingerprint chain and
#:     the global cursor as ``(segment, offset)``), and the top-level
#:     fingerprint is the chain digest.  Resume fails fast on a
#:     segmented/materialized mode mismatch, naming the first mismatching
#:     segment when the chain disagrees.
CHECKPOINT_VERSION = 7

#: Canonical checkpoint suffix, appended when the user supplies none —
#: save, load and the CLI pre-flight all agree on this one path.
CHECKPOINT_SUFFIX = ".ckpt"

#: Directory (next to the manifest) holding the content-addressed chunks.
#: Shared by all checkpoints saved into the same directory.
CHUNK_DIR_NAME = "repro-chunks"

#: Default chunk size.  Small enough that an appended metrics row only
#: rewrites the final partial chunk, large enough that a paper-scale
#: checkpoint stays in the tens of chunks.
DEFAULT_CHUNK_BYTES = 1 << 16

_MANIFEST_MAGIC = b"RPCK"
_MANIFEST_HEADER = struct.Struct("<4sHHQQQ")
_DIGEST_BYTES = 32

_EMPTY = np.zeros(0, dtype=np.int64)


def canonical_checkpoint_path(path: str | Path) -> Path:
    """The one manifest path save/load/CLI all use for ``path``.

    A bare path gains :data:`CHECKPOINT_SUFFIX`; an explicit suffix (any
    suffix — ``.ckpt``, ``.npz``, …) is respected as-is.
    """
    path = Path(path)
    return path if path.suffix else path.with_suffix(CHECKPOINT_SUFFIX)


def chunk_store_path(path: str | Path) -> Path:
    """The chunk-store directory serving the manifest at ``path``."""
    return canonical_checkpoint_path(path).parent / CHUNK_DIR_NAME


def _json_default(value):
    """Make RNG bit-generator state JSON-safe (Philox/SFC64 carry arrays)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    raise TypeError(f"cannot serialize {type(value).__name__} in checkpoint meta")


def _entity_event_indices(log: EventLog, cursor: int) -> tuple[dict, dict]:
    """Map each worker/task payload (≤ cursor) to its last event index.

    Workers and tasks are frozen, hashable dataclasses, so equal payloads
    collapse onto one index — any equal event rebuilds an identical entity.
    Relocation rows carry the synthesized relocated worker, so a pooled (or
    assigned) worker that moved resolves to the relocation row that last
    produced its current state.

    The scan runs slab-by-slab (:meth:`EventLog.slices`) so a segmented
    log resolves its payloads from whichever segment slab holds each row —
    the recorded indices are global, exactly what ``worker_at``/``task_at``
    accept on restore.
    """
    worker_index: dict = {}
    task_index: dict = {}
    for slab, local_start, local_stop, base in log.slices(0, cursor):
        kinds = slab.kinds
        for position in range(local_start, local_stop):
            kind = int(kinds[position])
            if kind == KIND_ARRIVAL or kind == KIND_RELOCATE:
                worker_index[slab.worker_at(position)] = base + position
            elif kind == KIND_PUBLISH:
                task_index[slab.task_at(position)] = base + position
    return worker_index, task_index


def save_checkpoint(
    runtime: "StreamRuntime",
    path: str | Path,
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Path:
    """Write the runtime's complete state to ``path`` (v7 manifest + chunks).

    Atomic: the manifest is replaced in one :func:`os.replace` after every
    chunk it references is durable, so a crash at any point leaves the
    previous checkpoint (if any) fully resumable.  Returns the canonical
    manifest path.

    When the runtime carries a live tracer, the save emits a
    ``checkpoint.save`` span annotated with the chunk-store reuse stats
    (chunks written vs referenced, bytes written), and the registry's
    checkpoint counters advance.
    """
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    path = canonical_checkpoint_path(path)
    with runtime.obs.tracer.span(
        "checkpoint.save", cat="checkpoint", path=str(path)
    ) as span:
        stats = _save_checkpoint(runtime, path, chunk_bytes)
        span.note(**stats)
    registry = runtime.obs.registry
    if registry.enabled:
        registry.counter(
            "repro_checkpoint_saves_total", "Checkpoint manifests written."
        ).inc()
        registry.counter(
            "repro_checkpoint_chunks_written_total",
            "New chunk files published to the checkpoint store.",
        ).inc(stats["chunks_written"])
        registry.counter(
            "repro_checkpoint_bytes_written_total",
            "Bytes of new chunk data written to the checkpoint store.",
        ).inc(stats["bytes_written"])
    return path


def _save_checkpoint(
    runtime: "StreamRuntime", path: Path, chunk_bytes: int
) -> dict:
    """Build meta + arrays and publish them; returns the chunk-write stats."""
    state = runtime.state
    worker_events, task_events = _entity_event_indices(runtime.log, runtime.cursor)

    pool_worker_ids = sorted(state.workers)
    pool_task_ids = sorted(state.tasks)
    try:
        pool_worker_events = np.array(
            [worker_events[state.workers[i]] for i in pool_worker_ids], dtype=np.int64
        ) if pool_worker_ids else _EMPTY
        pool_task_events = np.array(
            [task_events[state.tasks[i]] for i in pool_task_ids], dtype=np.int64
        ) if pool_task_ids else _EMPTY
        pairs = runtime.result.assignment.pairs
        assigned_worker_events = np.array(
            [worker_events[p.worker] for p in pairs], dtype=np.int64
        ) if pairs else _EMPTY
        assigned_task_events = np.array(
            [task_events[p.task] for p in pairs], dtype=np.int64
        ) if pairs else _EMPTY
    except KeyError as error:  # pragma: no cover - guards state/log mismatch
        raise DataError(
            f"runtime state references an entity absent from the log: {error}"
        ) from error

    metrics_state = runtime.result.metrics.state_dict()
    meta = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": runtime.log.fingerprint(),
        "cursor": runtime.cursor,
        "clock": runtime.clock,
        "start_time": runtime._start_time,
        "end_time": runtime._end_time,
        "started": runtime._started,
        "done": runtime._done,
        "pending_start_round": runtime._pending_start_round,
        "patience_hours": runtime.patience_hours,
        "trigger_kind": runtime.trigger.kind,
        "trigger": runtime.trigger.state_dict(),
        "pipeline": runtime.pipeline,
        "rng_state": (
            runtime.rng.bit_generator.state if runtime.rng is not None else None
        ),
        "shards": (
            {**runtime.shard_executor.state_dict(), "requested": runtime.shard_request}
            if runtime.shard_executor is not None
            else None
        ),
        "admission": (
            runtime.admission.state_dict()
            if runtime.admission is not None
            else None
        ),
        # Segmented runs record the seam geometry and the per-segment
        # fingerprint chain, so a resume can name the first segment whose
        # synthesized content drifted instead of a bare chain mismatch.
        "segments": (
            {
                "count": runtime.log.segment_count,
                "boundaries": list(runtime.log.boundaries),
                "fingerprints": list(runtime.log.segment_fingerprints),
                "cursor": list(runtime.log.locate(runtime.cursor)),
            }
            if runtime.log.segmented
            else None
        ),
        # Wait histograms are simulated-time state (deterministic across
        # replays), so they live in the meta; wall-clock values stay in the
        # chunked arrays, keeping the meta timing-free for replay checks.
        "metrics": {
            "task_waits": metrics_state["task_waits"],
            "worker_waits": metrics_state["worker_waits"],
        },
    }
    arrays = {
        "pool_worker_events": pool_worker_events,
        "pool_worker_arrived_at": np.array(
            [state.arrived_at[i] for i in pool_worker_ids], dtype=float
        ),
        "pool_task_events": pool_task_events,
        "pool_task_published_at": np.array(
            [state.published_at[i] for i in pool_task_ids], dtype=float
        ),
        "assigned_worker_events": assigned_worker_events,
        "assigned_task_events": assigned_task_events,
        "metrics_rounds": np.asarray(metrics_state["rounds"]),
        "metrics_wall_seconds": np.asarray(metrics_state["wall_seconds"]),
    }
    return _write_manifest(path, meta, arrays, chunk_bytes)


def _write_manifest(
    path: Path, meta: dict, arrays: dict[str, np.ndarray], chunk_bytes: int
) -> dict:
    """Publish ``arrays`` to the chunk store and atomically replace ``path``.

    Returns the chunk-store write accounting for this save: how many of the
    manifest's (deduplicated) chunks already existed vs were newly written,
    and the byte volumes on both axes — the numbers behind the
    ``checkpoint.save`` span's reuse ratio.
    """
    store = path.parent / CHUNK_DIR_NAME
    store.mkdir(parents=True, exist_ok=True)
    digests: list[bytes] = []
    digest_position: dict[bytes, int] = {}
    entries = []
    chunks_written = 0
    bytes_written = 0
    bytes_total = 0
    for name, value in arrays.items():
        data = np.ascontiguousarray(value).tobytes()
        bytes_total += len(data)
        refs = []
        for offset in range(0, len(data), chunk_bytes):
            chunk = data[offset : offset + chunk_bytes]
            digest = hashlib.sha256(chunk).digest()
            position = digest_position.get(digest)
            if position is None:
                position = len(digests)
                digest_position[digest] = position
                digests.append(digest)
                # Content-addressed: an existing file already holds these
                # exact bytes — skipping it is what makes successive
                # snapshots share their unchanged chunks.
                target = store / f"{digest.hex()}.chunk"
                if not target.exists():
                    atomic_write_bytes(target, chunk)
                    chunks_written += 1
                    bytes_written += len(chunk)
            refs.append(position)
        entries.append(
            {
                "name": name,
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "nbytes": len(data),
                "chunks": refs,
            }
        )
    meta_blob = json.dumps(meta, default=_json_default).encode("utf-8")
    index_blob = json.dumps(
        {"chunk_bytes": chunk_bytes, "arrays": entries}
    ).encode("utf-8")
    header = _MANIFEST_HEADER.pack(
        _MANIFEST_MAGIC,
        CHECKPOINT_VERSION,
        0,
        len(meta_blob),
        len(index_blob),
        len(digests),
    )
    body = b"".join((header, meta_blob, index_blob, *digests))
    atomic_write_bytes(path, body + hashlib.sha256(body).digest())
    chunks_total = len(digests)
    return {
        "chunks_total": chunks_total,
        "chunks_written": chunks_written,
        "chunk_reuse_ratio": (
            (chunks_total - chunks_written) / chunks_total if chunks_total else 0.0
        ),
        "bytes_total": bytes_total,
        "bytes_written": bytes_written,
    }


def _read_manifest(path: str | Path) -> tuple[Path, dict, dict, list[str]]:
    """Parse and verify a manifest; returns (path, meta, index, digests)."""
    path = canonical_checkpoint_path(path)
    blob = path.read_bytes()
    if blob[:2] == b"PK":
        raise DataError(
            f"unsupported checkpoint version (legacy npz archive at {path}; "
            f"expected a v{CHECKPOINT_VERSION} chunked manifest — re-save "
            "from a current runtime)"
        )
    if len(blob) < _MANIFEST_HEADER.size + _DIGEST_BYTES or blob[:4] != _MANIFEST_MAGIC:
        raise DataError(f"not a stream checkpoint manifest: {path}")
    magic, version, _flags, meta_len, index_len, digest_count = (
        _MANIFEST_HEADER.unpack_from(blob)
    )
    if version != CHECKPOINT_VERSION:
        raise DataError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    body_len = _MANIFEST_HEADER.size + meta_len + index_len
    body_len += digest_count * _DIGEST_BYTES
    if len(blob) != body_len + _DIGEST_BYTES:
        raise DataError(f"truncated checkpoint manifest: {path}")
    if hashlib.sha256(blob[:body_len]).digest() != blob[body_len:]:
        raise DataError(f"corrupt checkpoint manifest (hash mismatch): {path}")
    offset = _MANIFEST_HEADER.size
    meta = json.loads(blob[offset : offset + meta_len].decode("utf-8"))
    offset += meta_len
    index = json.loads(blob[offset : offset + index_len].decode("utf-8"))
    offset += index_len
    digests = [
        blob[offset + i * _DIGEST_BYTES : offset + (i + 1) * _DIGEST_BYTES].hex()
        for i in range(digest_count)
    ]
    return path, meta, index, digests


def load_checkpoint_manifest(path: str | Path) -> dict:
    """Inspect a checkpoint without touching its chunks.

    Returns ``{"meta", "chunk_bytes", "arrays", "digests"}`` — the tool/
    test surface for chunk-reuse accounting (``digests`` is the manifest's
    deduplicated sha256 hex list; intersect two manifests' sets to measure
    how much of a snapshot was shared with its predecessor).
    """
    _, meta, index, digests = _read_manifest(path)
    return {
        "meta": meta,
        "chunk_bytes": index["chunk_bytes"],
        "arrays": index["arrays"],
        "digests": digests,
    }


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint into a plain dict of meta + arrays.

    Every chunk is re-hashed against its digest before its bytes reach
    numpy, so silent store corruption surfaces as :class:`DataError`
    rather than as wrong state.
    """
    path, meta, index, digests = _read_manifest(path)
    store = path.parent / CHUNK_DIR_NAME
    chunks: dict[str, bytes] = {}
    payload: dict = {"meta": meta}
    for entry in index["arrays"]:
        parts = []
        for position in entry["chunks"]:
            digest = digests[position]
            data = chunks.get(digest)
            if data is None:
                target = store / f"{digest}.chunk"
                try:
                    data = target.read_bytes()
                except FileNotFoundError as error:
                    raise DataError(
                        f"checkpoint chunk {digest} missing from {store}"
                    ) from error
                if hashlib.sha256(data).hexdigest() != digest:
                    raise DataError(f"corrupt checkpoint chunk: {target}")
                chunks[digest] = data
            parts.append(data)
        raw = b"".join(parts)
        if len(raw) != entry["nbytes"]:
            raise DataError(
                f"checkpoint array {entry['name']!r} reassembled to "
                f"{len(raw)} bytes, manifest expects {entry['nbytes']}"
            )
        payload[entry["name"]] = np.frombuffer(
            raw, dtype=np.dtype(entry["dtype"])
        ).reshape(entry["shape"])
    return payload


def load_checkpoint_meta(path: str | Path) -> dict:
    """Read only a checkpoint's meta dict (no metrics/pool arrays).

    The cheap pre-flight read for :func:`validate_checkpoint_meta` callers
    — only the manifest is read; the chunk store stays untouched.
    """
    _, meta, _, _ = _read_manifest(path)
    return meta


def validate_checkpoint_meta(
    meta: dict,
    trigger_kind: str,
    patience_hours: float | None,
    sharded: bool,
    shard_request: dict | None = None,
    admission: dict | None = None,
    pipeline: bool = False,
    rebalance: dict | None = None,
    segmented: bool | None = None,
) -> None:
    """Check a checkpoint's meta against a run configuration.

    The single source of the compatibility rules: :func:`restore_runtime`
    enforces them before touching any state, and the ``stream`` CLI calls
    this *before* datasets are built and influence models fitted, so a
    mismatched ``--resume`` fails in milliseconds with the same message
    instead of after minutes of fitting.  Raises :class:`DataError` on the
    first mismatch.

    ``segmented`` (when not ``None``) asserts the event-log mode: a
    checkpoint taken against a segmented log must resume against one and
    vice versa — their cursors index the same global row space, but the
    fingerprint disciplines differ (chain digest vs whole-log hash), so a
    silent cross-mode resume could never verify it replays the same world.
    """
    if segmented is not None and (meta.get("segments") is not None) != segmented:
        saved = "a segmented" if meta.get("segments") is not None else "a materialized"
        built = "segmented" if segmented else "materialized"
        raise DataError(
            f"checkpoint was taken from {saved} event-log run, this run "
            f"streams {built} events — pass the same --segment-days "
            "configuration"
        )
    if meta["trigger_kind"] != trigger_kind:
        raise DataError(
            f"checkpoint was taken with a {meta['trigger_kind']!r} trigger, "
            f"this run uses {trigger_kind!r} — resume with the same "
            "trigger policy"
        )
    if meta["patience_hours"] != patience_hours:
        raise DataError(
            f"checkpoint used patience_hours={meta['patience_hours']}, "
            f"this run uses {patience_hours}"
        )
    if (meta.get("shards") is None) != (not sharded):
        saved = "an unsharded" if meta.get("shards") is None else "a sharded"
        built = "sharded" if sharded else "unsharded"
        raise DataError(
            f"checkpoint was taken from {saved} run, this run is "
            f"{built} — pass the same shards/executor configuration"
        )
    if sharded and shard_request is not None:
        saved_request = meta["shards"].get("requested")
        if saved_request is not None and saved_request != shard_request:
            raise DataError(
                f"checkpoint was taken with shards={saved_request['shards']}, "
                f"cell_km={saved_request['cell_km']}; this run requests "
                f"shards={shard_request['shards']}, "
                f"cell_km={shard_request['cell_km']}"
            )
    if bool(meta.get("pipeline")) != bool(pipeline):
        saved = "a pipelined" if meta.get("pipeline") else "a non-pipelined"
        built = "pipelined" if pipeline else "non-pipelined"
        raise DataError(
            f"checkpoint was taken from {saved} run, this run is {built} — "
            "pass the same pipeline configuration"
        )
    saved_rebalance = (meta.get("shards") or {}).get("rebalance")
    if (saved_rebalance is None) != (rebalance is None):
        saved = "without" if saved_rebalance is None else "with"
        built = "with" if rebalance is not None else "without"
        raise DataError(
            f"checkpoint was taken {saved} shard rebalancing, this run is "
            f"{built} it — pass the same rebalance configuration"
        )
    if saved_rebalance is not None and rebalance is not None:
        for field in ("interval", "alpha", "hysteresis"):
            if saved_rebalance.get(field) != rebalance.get(field):
                raise DataError(
                    f"checkpoint rebalance {field}={saved_rebalance.get(field)!r} "
                    f"does not match this run's {rebalance.get(field)!r}"
                )
    saved_admission = meta.get("admission")
    if (saved_admission is None) != (admission is None):
        saved = "without" if saved_admission is None else "with"
        built = "with" if admission is not None else "without"
        raise DataError(
            f"checkpoint was taken {saved} admission control, this run is "
            f"{built} it — pass the same admission configuration"
        )
    if saved_admission is not None and admission is not None:
        for field in ("policy", "budget_seconds"):
            if saved_admission.get(field) != admission.get(field):
                raise DataError(
                    f"checkpoint admission {field}={saved_admission.get(field)!r} "
                    f"does not match this run's {admission.get(field)!r}"
                )


def restore_runtime(runtime: "StreamRuntime", path: str | Path) -> "StreamRuntime":
    """Load ``path`` into a freshly constructed runtime (in place).

    The runtime must have been built with the same log (fingerprint
    checked) and equivalent deterministic collaborators; trigger and RNG
    state are overwritten from the snapshot.
    """
    with runtime.obs.tracer.span(
        "checkpoint.load", cat="checkpoint", path=str(path)
    ):
        return _restore_runtime(runtime, path)


def _restore_runtime(runtime: "StreamRuntime", path: str | Path) -> "StreamRuntime":
    payload = load_checkpoint(path)
    meta = payload["meta"]
    saved_segments = meta.get("segments")
    if (saved_segments is not None) != runtime.log.segmented:
        saved = "a segmented" if saved_segments is not None else "a materialized"
        built = "segmented" if runtime.log.segmented else "materialized"
        raise DataError(
            f"checkpoint was taken from {saved} event-log run, this run "
            f"streams {built} events — pass the same --segment-days "
            "configuration"
        )
    if meta["fingerprint"] != runtime.log.fingerprint():
        if saved_segments is not None:
            current = runtime.log.segment_fingerprints
            saved_chain = saved_segments["fingerprints"]
            for index, (before, after) in enumerate(zip(saved_chain, current)):
                if before != after:
                    raise DataError(
                        f"checkpoint segment {index} (starting at t="
                        f"{saved_segments['boundaries'][index]}) has "
                        "fingerprint "
                        f"{before[:12]}…, this run synthesized {after[:12]}… "
                        "— the segmented horizon is not the checkpointed one"
                    )
            raise DataError(
                f"checkpoint was taken over {saved_segments['count']} "
                f"segments at boundaries {saved_segments['boundaries']}, "
                f"this run built {runtime.log.segment_count} at "
                f"{list(runtime.log.boundaries)} — pass the same "
                "--segment-days configuration"
            )
        raise DataError(
            "checkpoint was taken against a different event log "
            "(fingerprint mismatch)"
        )
    validate_checkpoint_meta(
        meta,
        trigger_kind=runtime.trigger.kind,
        patience_hours=runtime.patience_hours,
        sharded=runtime.shard_executor is not None,
        shard_request=runtime.shard_request,
        admission=(
            {
                "policy": runtime.admission.policy,
                "budget_seconds": runtime.admission.budget_seconds,
            }
            if runtime.admission is not None
            else None
        ),
        pipeline=runtime.pipeline,
        rebalance=(
            runtime.shard_executor.rebalancer.state_dict()
            if runtime.shard_executor is not None
            and runtime.shard_executor.rebalancer is not None
            else None
        ),
    )
    shard_meta = meta.get("shards")
    if shard_meta is not None:
        saved_layout = ShardLayout.from_state_dict(shard_meta["layout"])
        planned_layout = runtime.shard_executor.layout
        if runtime.shard_executor.rebalancer is not None:
            # Under rebalancing the saved layout may be a repack of the
            # planned one: same cells, components and halo, different
            # component→bin packing.  Validate the immutable parts, then
            # adopt the saved packing so the resumed run buckets exactly
            # like the interrupted one.
            if (
                saved_layout.cell_km != planned_layout.cell_km
                or saved_layout.max_radius_km != planned_layout.max_radius_km
                or saved_layout.num_shards != planned_layout.num_shards
                or saved_layout.components != planned_layout.components
            ):
                raise DataError(
                    "checkpoint shard layout does not match the runtime's "
                    "(different shard count, planning cell size or "
                    "component partition?)"
                )
            runtime.shard_executor.layout = saved_layout
        elif saved_layout != planned_layout:
            raise DataError(
                "checkpoint shard layout does not match the runtime's "
                "(different shard count or planning cell size?)"
            )
        runtime.shard_executor.load_state_dict(shard_meta)
    admission_meta = meta.get("admission")
    if admission_meta is not None:
        runtime.admission.load_state_dict(admission_meta)

    state = runtime.state
    log = runtime.log
    for event_index, arrived in zip(
        payload["pool_worker_events"], payload["pool_worker_arrived_at"]
    ):
        worker = log.worker_at(int(event_index))
        state.workers[worker.worker_id] = worker
        state.arrived_at[worker.worker_id] = float(arrived)
    for event_index, published in zip(
        payload["pool_task_events"], payload["pool_task_published_at"]
    ):
        task = log.task_at(int(event_index))
        state.tasks[task.task_id] = task
        state.published_at[task.task_id] = float(published)
        state.task_index.insert(task.location, task.task_id)

    for worker_index, task_index in zip(
        payload["assigned_worker_events"], payload["assigned_task_events"]
    ):
        runtime.result.assignment.add(
            log.task_at(int(task_index)), log.worker_at(int(worker_index))
        )
    runtime.result.metrics.load_state_dict(
        {
            "rounds": payload["metrics_rounds"],
            "task_waits": meta["metrics"]["task_waits"],
            "worker_waits": meta["metrics"]["worker_waits"],
            "wall_seconds": float(payload["metrics_wall_seconds"]),
        }
    )

    runtime._cursor = int(meta["cursor"])
    runtime._clock = float(meta["clock"])
    runtime._start_time = float(meta["start_time"])
    runtime._end_time = (
        float(meta["end_time"]) if meta["end_time"] is not None else None
    )
    runtime._started = bool(meta["started"])
    runtime._done = bool(meta["done"])
    runtime._pending_start_round = bool(meta["pending_start_round"])
    if meta["trigger"]:
        runtime.trigger.load_state_dict(meta["trigger"])
    if meta["rng_state"] is not None and runtime.rng is not None:
        runtime.rng.bit_generator.state = meta["rng_state"]
    return runtime
