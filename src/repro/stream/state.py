"""Live runtime state: worker/task pools with a live spatial index.

:class:`StreamState` is the mutable heart of the streaming runtime.  It
keeps the online worker pool and the open task pool, applies drained events
to them, and maintains two acceleration structures incrementally:

* a :class:`~repro.geo.GridIndex` over the open tasks, updated on every
  publish/assign/expire/cancel, so "which tasks could this worker reach" is
  an output-sensitive lookup at any instant (:meth:`tasks_near`) instead of
  a pool scan;
* the PR-1 round caches — a shared :class:`~repro.assignment.RoundState`
  whose distance/influence rectangles (and the
  :class:`~repro.influence.InfluenceModel` per-task columns behind them)
  persist across rounds, so each round only pays for newly arrived workers
  and newly published tasks.

Pool mutation semantics mirror
:class:`~repro.framework.online.OnlineSimulator` exactly (re-arrival
replaces the pooled worker, expiry and churn are strict-inequality sweeps),
which is what makes the runtime's golden cross-check bit-identical.
"""

from __future__ import annotations

from typing import Iterator

from repro.assignment.base import Assigner, PreparedInstance, RoundState
from repro.data.instance import SCInstance
from repro.entities import Assignment, Task, Worker
from repro.geo import GridIndex, Point
from repro.influence import InfluenceModel
from repro.stream.events import (
    KIND_ARRIVAL,
    KIND_CANCEL,
    KIND_CHURN,
    KIND_EXPIRY,
    KIND_PUBLISH,
    KIND_RELOCATE,
    EventLog,
    StreamEvent,
    TaskCancelEvent,
    TaskExpiryEvent,
    TaskPublishEvent,
    WorkerArrivalEvent,
    WorkerChurnEvent,
    WorkerRelocateEvent,
)


class StreamState:
    """Mutable pools + incremental indexes between assignment rounds.

    Parameters
    ----------
    base_instance:
        Supplies the immutable context every round instance shares —
        histories, social network, venue visits, ``all_worker_ids``.
    influence:
        The fitted influence model reused by every round (or ``None``).
    incremental:
        When True, rounds are prepared through a shared
        :class:`~repro.assignment.RoundState`; False rebuilds each round
        from scratch (the regression reference, exactly as in the online
        simulator).
    index_cell_km:
        Cell size of the live task index; defaults to the paper's 25 km
        reachable radius so a range query touches O(9) cells.
    """

    def __init__(
        self,
        base_instance: SCInstance,
        influence: InfluenceModel | None,
        incremental: bool = True,
        index_cell_km: float = 25.0,
    ) -> None:
        self.base_instance = base_instance
        self.influence = influence
        self.incremental = incremental
        self.round_state = RoundState(influence)
        self.workers: dict[int, Worker] = {}
        self.tasks: dict[int, Task] = {}
        self.arrived_at: dict[int, float] = {}
        self.published_at: dict[int, float] = {}
        self.task_index: GridIndex[int] = GridIndex(index_cell_km)
        self._index_cell_km = index_cell_km

    # -------------------------------------------------------------- pools
    @property
    def num_online_workers(self) -> int:
        """Workers currently online."""
        return len(self.workers)

    @property
    def num_open_tasks(self) -> int:
        """Tasks currently open."""
        return len(self.tasks)

    def _index_remove(self, task: Task) -> None:
        self.task_index.remove(task.location, task.task_id)

    def apply(self, event: StreamEvent) -> tuple[bool, bool]:
        """Apply one drained event to the pools and the live index.

        Returns ``(removed_task, removed_worker)`` — whether the event
        actually retired a pooled entity (expiry/cancel/churn of something
        no longer pooled is a no-op), so callers count outcomes from the
        single dispatch that produced them.
        """
        if isinstance(event, WorkerArrivalEvent):
            return self.apply_kind(
                KIND_ARRIVAL, event.time, event.worker.worker_id, worker=event.worker
            )
        if isinstance(event, TaskPublishEvent):
            return self.apply_kind(
                KIND_PUBLISH, event.time, event.task.task_id, task=event.task
            )
        if isinstance(event, TaskCancelEvent):
            return self.apply_kind(KIND_CANCEL, event.time, event.task_id)
        if isinstance(event, TaskExpiryEvent):
            return self.apply_kind(KIND_EXPIRY, event.time, event.task_id)
        if isinstance(event, WorkerChurnEvent):
            return self.apply_kind(KIND_CHURN, event.time, event.worker_id)
        if isinstance(event, WorkerRelocateEvent):
            pooled = self.workers.get(event.worker_id)
            if pooled is None:
                return False, False
            return self.apply_kind(
                KIND_RELOCATE,
                event.time,
                event.worker_id,
                worker=pooled.moved_to(event.location),
            )
        raise TypeError(f"unsupported stream event {event!r}")

    def apply_kind(
        self,
        kind: int,
        time: float,
        entity_id: int,
        worker: Worker | None = None,
        task: Task | None = None,
    ) -> tuple[bool, bool]:
        """Kind-coded :meth:`apply` — the columnar replay entry point."""
        if kind == KIND_ARRIVAL:
            self.workers[entity_id] = worker
            self.arrived_at[entity_id] = time
        elif kind == KIND_PUBLISH:
            previous = self.tasks.get(entity_id)
            if previous is not None:
                self._index_remove(previous)
            self.tasks[entity_id] = task
            self.published_at[entity_id] = time
            self.task_index.insert(task.location, entity_id)
        elif kind == KIND_CANCEL or kind == KIND_EXPIRY:
            pooled = self.tasks.pop(entity_id, None)
            if pooled is not None:
                self._index_remove(pooled)
                self.published_at.pop(entity_id, None)
                return True, False
        elif kind == KIND_CHURN:
            if self.workers.pop(entity_id, None) is not None:
                self.arrived_at.pop(entity_id, None)
                return False, True
        elif kind == KIND_RELOCATE:
            # A live worker's location update: the pooled worker object is
            # replaced (arrival time unchanged — the wait keeps accruing).
            # The task grid index holds tasks only, so nothing spatial moves
            # here; the RoundState rectangles invalidate themselves because
            # the same id now maps to a different (frozen) Worker.
            if entity_id in self.workers:
                self.workers[entity_id] = worker
        else:  # pragma: no cover - new event kinds must be wired explicitly
            raise TypeError(f"unsupported stream event kind {kind!r}")
        return False, False

    def apply_log_slice(
        self, log: EventLog, start: int, stop: int, admission=None, offset: int = 0
    ) -> tuple[int, int, int, int]:
        """Apply log rows ``[start, stop)`` straight from the columns.

        Returns ``(expired, churned, cancelled, relocated)`` counts; the
        drained-event count is simply ``stop - start``.  Payload objects
        (workers/tasks) come from the log's side-tables — no per-event
        wrappers are materialized.

        ``admission`` is an optional gate (duck-typed —
        :class:`~repro.stream.runtime.AdmissionController`): publish rows
        are offered to it first (``offer(position, task, time)`` returning
        False diverts the task away from the pool), and expiry/cancel rows
        first discard any backlog entry (``discard(task_id)``), counting
        the retirement even though the task never reached the pool.  With
        ``admission=None`` the path is exactly the ungated replay.

        ``offset`` shifts the positions *offered to the gate* (only): when
        the runtime drains a segmented log slab-by-slab, ``start``/``stop``
        are slab-local but backlog entries must carry global cursor
        positions so deferred re-admission and checkpoints stay exact
        across segment seams.
        """
        kinds = log.kinds
        times = log.times
        entities = log.entity_ids
        expired = churned = cancelled = relocated = 0
        for position in range(start, stop):
            kind = int(kinds[position])
            entity_id = int(entities[position])
            worker = task = None
            if kind == KIND_ARRIVAL or kind == KIND_RELOCATE:
                worker = log.worker_at(position)
            elif kind == KIND_PUBLISH:
                task = log.task_at(position)
                if admission is not None and not admission.offer(
                    offset + position, task, float(times[position])
                ):
                    continue
            elif admission is not None and kind in (KIND_EXPIRY, KIND_CANCEL):
                if admission.discard(entity_id):
                    if kind == KIND_EXPIRY:
                        expired += 1
                    else:
                        cancelled += 1
                    continue
            if kind == KIND_RELOCATE and entity_id in self.workers:
                relocated += 1
            removed_task, removed_worker = self.apply_kind(
                kind,
                float(times[position]),
                entity_id,
                worker=worker,
                task=task,
            )
            if removed_task:
                if kind == KIND_EXPIRY:
                    expired += 1
                elif kind == KIND_CANCEL:
                    cancelled += 1
            if removed_worker and kind == KIND_CHURN:
                churned += 1
        return expired, churned, cancelled, relocated

    # -------------------------------------------------------------- sweeps
    def expire_tasks(self, now: float) -> list[Task]:
        """Remove and return open tasks whose deadline strictly passed.

        The safety net behind explicit :class:`TaskExpiryEvent`\\ s: logs
        built by :func:`~repro.stream.events.log_from_arrivals` carry one
        expiry event per task (making this sweep find nothing), but
        hand-built logs without them still expire correctly.
        """
        expired = [task for task in self.tasks.values() if task.expiry_time < now]
        for task in expired:
            del self.tasks[task.task_id]
            self._index_remove(task)
            self.published_at.pop(task.task_id, None)
        return expired

    def churn_workers(self, now: float, patience_hours: float | None) -> list[int]:
        """Remove and return workers whose patience strictly ran out."""
        if patience_hours is None:
            return []
        churned = [
            worker_id
            for worker_id, since in self.arrived_at.items()
            if worker_id in self.workers and now - since > patience_hours
        ]
        for worker_id in churned:
            del self.workers[worker_id]
            self.arrived_at.pop(worker_id, None)
        return churned

    # ------------------------------------------------------------- queries
    def tasks_near(self, center: Point, radius_km: float) -> Iterator[Task]:
        """Open tasks within ``radius_km`` of ``center`` (live index)."""
        for _, task_id in self.task_index.query_radius(center, radius_km):
            yield self.tasks[task_id]

    # -------------------------------------------------------------- rounds
    def round_instance(self, now: float) -> SCInstance:
        """The current pools as a deterministic :class:`SCInstance`."""
        instance = self.base_instance.with_workers(
            sorted(self.workers.values(), key=lambda w: w.worker_id)
        ).with_tasks(sorted(self.tasks.values(), key=lambda t: t.task_id))
        instance.current_time = now
        return instance

    def prepare_round(self, now: float) -> PreparedInstance:
        """A prepared instance for an assignment round at ``now``."""
        instance = self.round_instance(now)
        if self.incremental:
            return self.round_state.prepare(instance)
        return PreparedInstance(instance, self.influence)

    def run_assignment(
        self, assigner: Assigner, now: float
    ) -> tuple[Assignment, list[tuple[float, float]]]:
        """Run one assignment round and retire the matched pairs.

        Returns the assignment plus the per-pair ``(task_wait,
        worker_wait)`` hours (publication/arrival to ``now``), in pair
        order — the pools and timestamp maps stay consistent because every
        retirement path (assign, expire, cancel, churn) clears its entries
        here in the state layer.
        """
        assignment = assigner.assign(self.prepare_round(now))
        return assignment, self.retire_pairs(assignment, now)

    def retire_pairs(
        self, assignment: Assignment, now: float
    ) -> list[tuple[float, float]]:
        """Retire matched pairs from the pools; returns per-pair waits.

        Shared by the plain and sharded round paths — however an
        assignment was produced, retirement (pools, live index, timestamp
        maps) happens here so the state stays consistent.
        """
        waits: list[tuple[float, float]] = []
        for pair in assignment:
            del self.workers[pair.worker.worker_id]
            task = self.tasks.pop(pair.task.task_id)
            self._index_remove(task)
            waits.append(
                (
                    now - self.published_at.pop(pair.task.task_id),
                    now - self.arrived_at.pop(pair.worker.worker_id),
                )
            )
        return waits
