"""Bounded-memory event-log segments: stream a horizon without holding it.

:class:`SegmentedEventLog` presents the same replay surface as a columnar
:class:`~repro.stream.events.EventLog` — global integer cursor,
``drain_stop``/``next_count_time`` scheduling queries, ``worker_at``/
``task_at`` payload access, a fingerprint — while the horizon itself lives
behind *builders*: deterministic zero-argument callables, one per time
window, each producing a full columnar :class:`EventLog` slab on demand.
Segment ``s`` owns the half-open window ``[starts[s], starts[s+1])`` (the
last is unbounded above), which is exactly the per-day structure
:func:`~repro.stream.events.multi_day_stream` produces, so a 30-day world
is thirty one-day slabs of which only a couple exist in memory at once.

**Seam exactness.**  The columnar sort key is ``(time, phase, entity,
kind)`` with time primary, and windows partition events by time, so the
concatenation of per-segment sorted slabs *is* the globally sorted log —
every global row index, admission count and drain boundary is recoverable
from per-segment metadata plus at most one or two live slabs:

* ``drain_stop(cursor, T)``: the target segment is the one whose window
  contains ``T``.  Every earlier segment drains completely (all its times
  are strictly below its window end, hence strictly below ``T`` — deferred
  expiry/churn rows included), every later segment not at all, and the cut
  inside the target segment is the materialized ``drain_stop`` on that one
  slab.
* ``next_count_time``: admission counts per segment are recorded by the
  construction-time scan, so the query walks metadata and builds only the
  segment containing the answer.

**Memory model.**  Construction runs one bounded scan: each segment is
built once, validated against its window, reduced to a
:class:`SegmentInfo` (row/admission counts, fingerprint, aggregates) and
released.  After that at most ``max_cached`` slabs are alive at a time
(LRU), and :meth:`release_before` lets the runtime drop everything behind
its cursor as replay advances.  Peak memory is therefore a few windows,
not the horizon — the whole point.

**Fingerprints.**  :meth:`fingerprint` chains the per-segment EventLog
fingerprints with the window boundaries, so checkpoints can fail fast on
the *first mismatching segment* without ever materializing the horizon.
"""

from __future__ import annotations

import hashlib
import math
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.entities import Task, Worker
from repro.exceptions import DataError
from repro.stream.events import (
    KIND_ARRIVAL,
    KIND_PUBLISH,
    KIND_RELOCATE,
    EventLog,
)

__all__ = ["SegmentInfo", "SegmentedEventLog"]

#: Domain separator of the segmented fingerprint chain.
_CHAIN_DOMAIN = b"repro-eventlog-segments-v1"


@dataclass(frozen=True)
class SegmentInfo:
    """Construction-scan metadata of one segment (slab released after)."""

    start: float
    rows: int
    admissions: int
    workers: int
    tasks: int
    fingerprint: str
    first_admission_time: float | None
    last_expiry_time: float | None
    max_reachable_km: float


def _slice_log(log: EventLog, lo: int, hi: int) -> EventLog:
    """Rows ``[lo, hi)`` of a materialized log as a self-contained slab.

    Worker rows (arrivals *and* relocations — the source log synthesized
    relocated payloads at construction) and task rows reference compacted
    copies of the source side-tables; relocation rows keep their explicit
    post-move payloads so the slab replays without the preceding horizon.
    """
    columns = log.columns[lo:hi]
    kind = np.ascontiguousarray(columns["kind"])
    payload = columns["payload"]
    worker_rows = np.flatnonzero((kind == KIND_ARRIVAL) | (kind == KIND_RELOCATE))
    publish_rows = np.flatnonzero(kind == KIND_PUBLISH)
    workers = [log._workers[int(payload[row])] for row in worker_rows]
    tasks = [log._tasks[int(payload[row])] for row in publish_rows]
    compact = np.full(hi - lo, -1, dtype=np.int64)
    compact[worker_rows] = np.arange(len(worker_rows), dtype=np.int64)
    compact[publish_rows] = np.arange(len(publish_rows), dtype=np.int64)
    return EventLog.from_columns(
        columns["time"],
        kind,
        columns["entity_id"],
        payload=compact,
        workers=workers,
        tasks=tasks,
        x=columns["x"],
        y=columns["y"],
    )


class SegmentedEventLog:
    """A horizon of :class:`EventLog` windows, built lazily and released.

    Parameters
    ----------
    builders:
        One deterministic zero-argument callable per segment, each
        returning the segment's :class:`EventLog`.  Determinism is the
        contract that makes release-and-rebuild exact: a rebuilt slab must
        be identical to the scanned one (row counts are re-checked on
        every rebuild; fingerprints pin it end-to-end via checkpoints).
    starts:
        Strictly increasing window starts, one per builder; segment ``s``
        owns ``[starts[s], starts[s+1])``, the last segment is unbounded
        above.  Every event of segment ``s`` must fall in its window —
        validated by the construction scan, because the seam-exactness
        argument (see module docstring) depends on it.
    max_cached:
        How many built slabs may be alive at once (LRU; >= 1).
    """

    #: Counterpart of :attr:`EventLog.segmented`.
    segmented = True

    def __init__(
        self,
        builders: Sequence[Callable[[], EventLog]],
        starts: Sequence[float],
        *,
        max_cached: int = 2,
    ) -> None:
        if not builders:
            raise DataError("a segmented log needs at least one segment builder")
        if len(builders) != len(starts):
            raise DataError(
                f"{len(builders)} builders but {len(starts)} window starts"
            )
        starts = [float(value) for value in starts]
        if not all(math.isfinite(value) for value in starts):
            raise DataError(f"window starts must be finite, got {starts}")
        if any(later <= earlier for earlier, later in zip(starts, starts[1:])):
            raise DataError(
                f"window starts must be strictly increasing, got {starts}"
            )
        if max_cached < 1:
            raise ValueError(f"max_cached must be >= 1, got {max_cached}")
        self._builders = tuple(builders)
        self._starts = np.asarray(starts, dtype=np.float64)
        self.max_cached = int(max_cached)
        self._cache: OrderedDict[int, EventLog] = OrderedDict()
        self._infos: list[SegmentInfo] = []
        bases = [0]
        for index in range(len(self._builders)):
            segment = self._build(index, validate_window=True)
            self._infos.append(self._scan(index, segment))
            bases.append(bases[-1] + len(segment))
            # The scan holds exactly one slab at a time: metadata is kept,
            # the slab is dropped (no cache seeding — replay starts cold).
            del segment
        self._bases = np.asarray(bases, dtype=np.int64)

    # ------------------------------------------------------------- building
    def _build(self, index: int, validate_window: bool = False) -> EventLog:
        segment = self._builders[index]()
        if not isinstance(segment, EventLog):
            raise DataError(
                f"segment builder {index} returned "
                f"{type(segment).__name__}, expected an EventLog"
            )
        if validate_window:
            times = segment.times
            if len(times):
                lo = float(self._starts[index])
                if float(times[0]) < lo:
                    raise DataError(
                        f"segment {index} contains t={float(times[0])} before "
                        f"its window start {lo}"
                    )
                if index + 1 < len(self._starts):
                    hi = float(self._starts[index + 1])
                    if float(times[-1]) >= hi:
                        raise DataError(
                            f"segment {index} contains t={float(times[-1])} at "
                            f"or past the next window start {hi}"
                        )
        elif len(segment) != self._infos[index].rows:
            raise DataError(
                f"segment builder {index} is not deterministic: rebuild "
                f"produced {len(segment)} rows, the construction scan saw "
                f"{self._infos[index].rows}"
            )
        return segment

    def _scan(self, index: int, segment: EventLog) -> SegmentInfo:
        return SegmentInfo(
            start=float(self._starts[index]),
            rows=len(segment),
            admissions=segment.admissions_after(0),
            workers=len(segment._workers),
            tasks=len(segment._tasks),
            fingerprint=segment.fingerprint(),
            first_admission_time=segment.start_time(),
            last_expiry_time=segment.last_deadline(),
            max_reachable_km=segment.max_reachable_km(),
        )

    def segment(self, index: int) -> EventLog:
        """Segment ``index``'s slab, building (and LRU-caching) on demand."""
        if not 0 <= index < len(self._builders):
            raise IndexError(f"segment {index} out of range")
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        segment = self._build(index)
        self._cache[index] = segment
        while len(self._cache) > self.max_cached:
            self._cache.popitem(last=False)
        return segment

    def release_before(self, cursor: int) -> int:
        """Drop cached slabs fully behind the global ``cursor``.

        The runtime calls this after each drain so replay holds only the
        cursor's segment (plus whatever the LRU admitted for lookahead
        queries).  Returns the number of slabs released.
        """
        current = self.segment_of(cursor)
        stale = [index for index in self._cache if index < current]
        for index in stale:
            del self._cache[index]
        return len(stale)

    @property
    def cached_segments(self) -> tuple[int, ...]:
        """Indices of the currently alive slabs (observability/tests)."""
        return tuple(sorted(self._cache))

    # ------------------------------------------------------------- geometry
    @property
    def segment_count(self) -> int:
        return len(self._builders)

    @property
    def boundaries(self) -> tuple[float, ...]:
        """The window starts (``starts[s]`` opens segment ``s``)."""
        return tuple(float(value) for value in self._starts)

    @property
    def segment_fingerprints(self) -> tuple[str, ...]:
        """Per-segment EventLog fingerprints, in order."""
        return tuple(info.fingerprint for info in self._infos)

    @property
    def segment_infos(self) -> tuple[SegmentInfo, ...]:
        return tuple(self._infos)

    def __len__(self) -> int:
        return int(self._bases[-1])

    def segment_of(self, index: int) -> int:
        """The segment owning global row ``index`` (end-cursor clamps last).

        With empty segments the owner is the *last* segment starting at or
        before the row — ``searchsorted right`` — so a cursor sitting on a
        seam belongs to the later segment, matching ``base + local``
        arithmetic everywhere.
        """
        segment = int(np.searchsorted(self._bases, index, side="right")) - 1
        return min(max(segment, 0), len(self._builders) - 1)

    def locate(self, index: int) -> tuple[int, int]:
        """Global row ``index`` as a ``(segment, offset)`` pair."""
        segment = self.segment_of(index)
        return segment, int(index - self._bases[segment])

    def slices(self, start: int, stop: int) -> Iterator[tuple[EventLog, int, int, int]]:
        """``(slab, local_start, local_stop, base)`` per touched segment.

        The segmented counterpart of :meth:`EventLog.slices`: slabs are
        built through the LRU cache as the iteration reaches them, so a
        consumer walking a long range still holds ``max_cached`` slabs.
        """
        if stop > self._bases[-1]:
            raise IndexError(
                f"slice stop {stop} exceeds the log length {int(self._bases[-1])}"
            )
        position = start
        while position < stop:
            segment = self.segment_of(position)
            base = int(self._bases[segment])
            local_stop = min(stop, int(self._bases[segment + 1])) - base
            yield self.segment(segment), position - base, local_stop, base
            position = base + local_stop

    # ------------------------------------------------------------ scheduling
    def drain_stop(self, cursor: int, fire_time: float) -> int:
        """Global first-undrained index for a round at ``fire_time``.

        Exact across seams: the cut lies in the segment whose window
        contains ``fire_time`` (earlier windows end strictly below it, so
        even their deferred rows drain; later windows start strictly above
        it, so nothing there does), and within that one slab the
        materialized ``drain_stop`` applies verbatim.
        """
        target = int(np.searchsorted(self._starts, fire_time, side="right")) - 1
        if target < 0:
            return cursor
        cut = int(self._bases[target]) + self.segment(target).drain_stop(
            0, fire_time
        )
        return max(cursor, cut)

    def next_count_time(
        self, cursor: int, count: int, limit_time: float
    ) -> float | None:
        """When the ``count``-th admission at/after ``cursor`` occurs.

        Walks the per-segment admission counts recorded by the scan and
        builds at most two slabs: the cursor's (to subtract the admissions
        already behind it) and the one containing the answer.
        """
        segment_index, local = self.locate(cursor)
        remaining = count
        for index in range(segment_index, len(self._builders)):
            info = self._infos[index]
            if index == segment_index:
                segment = self.segment(index)
                available = segment.admissions_after(local)
                if available >= remaining:
                    return segment.next_count_time(local, remaining, limit_time)
            else:
                if info.start > limit_time:
                    return None
                if info.admissions >= remaining:
                    return self.segment(index).next_count_time(
                        0, remaining, limit_time
                    )
                available = info.admissions
            remaining -= available
        return None

    # ------------------------------------------------------------ aggregates
    def start_time(self) -> float | None:
        """Earliest admission time (from metadata — no slab builds)."""
        for info in self._infos:
            if info.admissions:
                return info.first_admission_time
        return None

    def has_arrivals(self) -> bool:
        return any(info.workers for info in self._infos)

    def last_deadline(self) -> float | None:
        deadlines = [
            info.last_expiry_time
            for info in self._infos
            if info.last_expiry_time is not None
        ]
        return max(deadlines) if deadlines else None

    def max_reachable_km(self) -> float:
        return max((info.max_reachable_km for info in self._infos), default=0.0)

    def cell_key_counts(self, cell_km: float) -> tuple[np.ndarray, np.ndarray]:
        """Occupied planning cells unioned across segments, bounded memory.

        The shard planner's input: each segment contributes its own
        ``cell_key_counts`` (one slab alive at a time through the cache)
        and the dictionaries merge — O(occupied cells), never O(events) —
        which is how the never-split invariant is planned up front without
        materializing payloads.
        """
        merged: dict[int, int] = {}
        for index in range(len(self._builders)):
            keys, counts = self.segment(index).cell_key_counts(cell_km)
            for key, load in zip(keys.tolist(), counts.tolist()):
                merged[key] = merged.get(key, 0) + load
        ordered = sorted(merged)
        return (
            np.asarray(ordered, dtype=np.int64),
            np.asarray([merged[key] for key in ordered], dtype=np.int64),
        )

    # --------------------------------------------------------------- payloads
    def worker_at(self, index: int) -> Worker:
        """The worker payload at global row ``index``."""
        segment, local = self._locate_strict(index)
        return self.segment(segment).worker_at(local)

    def task_at(self, index: int) -> Task:
        """The task payload at global row ``index``."""
        segment, local = self._locate_strict(index)
        return self.segment(segment).task_at(local)

    def _locate_strict(self, index: int) -> tuple[int, int]:
        if not 0 <= index < len(self):
            raise IndexError(f"event index {index} out of range")
        return self.locate(index)

    # ------------------------------------------------------------ fingerprint
    def fingerprint(self) -> str:
        """The segment fingerprint chain digest.

        Chains ``(window start, EventLog fingerprint)`` per segment under a
        domain tag, so it changes iff any segment's content or the
        partition itself changes — checkpoints store both this digest and
        the per-segment list, and a resume names the first mismatching
        segment instead of rehashing a horizon it cannot hold.
        """
        digest = hashlib.sha256()
        digest.update(_CHAIN_DOMAIN)
        digest.update(struct.pack("<q", len(self._infos)))
        for info in self._infos:
            digest.update(struct.pack("<d", info.start))
            digest.update(bytes.fromhex(info.fingerprint))
        return digest.hexdigest()

    # ------------------------------------------------------------ conversions
    @classmethod
    def from_log(
        cls,
        log: EventLog,
        segment_hours: float = 24.0,
        *,
        boundaries: Sequence[float] | None = None,
        max_cached: int = 2,
    ) -> "SegmentedEventLog":
        """Window a materialized log into segments (the compatibility path).

        Builders slice the source log's columns by time window, so the
        *source* stays materialized — this is the differential/resume twin
        and the CLI's ``--segment-days`` route for logs that already fit in
        memory.  True bounded-memory runs construct builders that
        synthesize or load each window from scratch instead.

        ``segment_hours`` windows align to multiples of the period (a
        24-hour period yields day boundaries, exactly the
        :func:`~repro.stream.events.multi_day_stream` seams); an explicit
        ``boundaries`` sequence overrides it for arbitrary partitions.
        """
        times = log.times
        if boundaries is None:
            if segment_hours <= 0:
                raise ValueError(
                    f"segment_hours must be positive, got {segment_hours}"
                )
            if not len(times):
                starts = [0.0]
            else:
                first = math.floor(float(times[0]) / segment_hours) * segment_hours
                starts = [first]
                while starts[-1] + segment_hours <= float(times[-1]):
                    starts.append(starts[-1] + segment_hours)
        else:
            starts = [float(value) for value in boundaries]
            if not starts:
                raise DataError("boundaries must name at least one window start")
            if len(times) and float(times[0]) < starts[0]:
                raise DataError(
                    f"first window start {starts[0]} is after the log's "
                    f"earliest event t={float(times[0])}"
                )

        edges = [
            int(np.searchsorted(times, start, side="left")) for start in starts
        ] + [len(log)]

        def builder_for(lo: int, hi: int) -> Callable[[], EventLog]:
            return lambda: _slice_log(log, lo, hi)

        return cls(
            [builder_for(edges[s], edges[s + 1]) for s in range(len(starts))],
            starts,
            max_cached=max_cached,
        )

    def materialize(self) -> EventLog:
        """Concatenate every segment into one materialized :class:`EventLog`.

        The O(horizon) escape hatch for differentials and benches — it
        round-trips: for windows that partition a source log by time, the
        result is fingerprint-identical to that log, because the columnar
        sort and payload renumbering are both window-respecting.
        """
        times, kinds, entities, payloads, xs, ys = [], [], [], [], [], []
        workers: list[Worker] = []
        tasks: list[Task] = []
        for index in range(len(self._builders)):
            segment = self.segment(index)
            columns = segment.columns
            payload = columns["payload"].astype(np.int64)
            kind = columns["kind"]
            worker_rows = (kind == KIND_ARRIVAL) | (kind == KIND_RELOCATE)
            payload = payload.copy()
            payload[worker_rows & (payload >= 0)] += len(workers)
            payload[(kind == KIND_PUBLISH) & (payload >= 0)] += len(tasks)
            times.append(columns["time"])
            kinds.append(kind)
            entities.append(columns["entity_id"])
            payloads.append(payload)
            xs.append(columns["x"])
            ys.append(columns["y"])
            workers.extend(segment._workers)
            tasks.extend(segment._tasks)
        return EventLog.from_columns(
            np.concatenate(times) if times else np.zeros(0),
            np.concatenate(kinds) if kinds else np.zeros(0, dtype=np.int64),
            np.concatenate(entities) if entities else np.zeros(0, dtype=np.int64),
            payload=(
                np.concatenate(payloads)
                if payloads
                else np.zeros(0, dtype=np.int64)
            ),
            workers=workers,
            tasks=tasks,
            x=np.concatenate(xs) if xs else np.zeros(0),
            y=np.concatenate(ys) if ys else np.zeros(0),
        )

    def __repr__(self) -> str:
        return (
            f"SegmentedEventLog(segments={self.segment_count}, "
            f"events={len(self)}, cached={list(self.cached_segments)})"
        )
