"""Micro-batch triggers: when does the next assignment round fire?

A :class:`Trigger` tells the :class:`~repro.stream.runtime.StreamRuntime`
when to cut the event stream into an assignment round.  Two mechanisms
compose:

* a **time boundary** (:meth:`Trigger.next_boundary`): the round fires at a
  scheduled simulation time, events or not — this is the
  :class:`~repro.framework.online.OnlineSimulator` behaviour and the path
  the golden cross-check test pins bit-identically;
* an **admission count** (:attr:`Trigger.count`): the round fires at the
  timestamp of the N-th admission event (arrival or publish) since the last
  round — latency-oriented micro-batching with no idle rounds.

:class:`HybridTrigger` arms both and fires on whichever comes first.
:class:`AdaptiveTrigger` is a time trigger whose window halves when a
round's measured latency exceeds the budget and grows back while it runs
comfortably under it, converging to the largest batch that meets the
latency target.

Triggers expose ``state_dict``/``load_state_dict`` so checkpoints can
capture adaptation state; stateless triggers return ``{}``.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.stream.metrics import RoundRecord


class Trigger(abc.ABC):
    """Decides the firing times of assignment rounds."""

    #: Stable policy name ("count"/"window"/...): recorded in checkpoints so
    #: a resume under a different policy fails with a clear message (and the
    #: CLI can validate flag combinations before doing any work).
    kind: str = "trigger"

    #: Fire at the N-th admission event since the last round (None = never).
    count: int | None = None

    #: Whether a round fires at the stream's start time before any window
    #: elapses (time-based triggers mirror the online simulator's t0 round).
    fires_at_start: bool = True

    def next_boundary(self, last_round_time: float) -> float | None:
        """The next scheduled boundary after ``last_round_time`` (or None)."""
        return None

    def on_round(self, record: "RoundRecord") -> None:
        """Observe a completed round (adaptive triggers tune themselves).

        The record carries per-phase timings
        (``drain_seconds``/``prepare_seconds``/``solve_seconds``/
        ``merge_seconds``) alongside ``round_seconds``; note the phase
        spans are cumulative across shards and can exceed the wall clock
        under the pipelined executor, so latency-budget policies (like
        :class:`AdaptiveTrigger`'s default ``cost_of``) should keep keying
        off ``round_seconds``, the true per-round wall time.
        """

    def state_dict(self) -> dict[str, Any]:
        """Serializable adaptation state (empty when stateless)."""
        return {}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (no-op when stateless)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CountTrigger(Trigger):
    """Fire at the timestamp of every N-th admission event.

    Pure count triggers schedule no boundaries: quiet stretches of the
    stream produce no empty rounds, and a final flush round at the end time
    drains whatever never reached a full batch.
    """

    kind = "count"
    fires_at_start = False

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count = count

    def __repr__(self) -> str:
        return f"CountTrigger(count={self.count})"


class TimeWindowTrigger(Trigger):
    """Fire every ``window_hours`` of simulation time.

    With ``window_hours == batch_hours`` this reproduces the batched
    :class:`~repro.framework.online.OnlineSimulator` boundaries exactly.
    """

    kind = "window"

    def __init__(self, window_hours: float) -> None:
        if window_hours <= 0:
            raise ValueError(f"window_hours must be positive, got {window_hours}")
        self.window_hours = window_hours

    def next_boundary(self, last_round_time: float) -> float | None:
        return last_round_time + self.window_hours

    def __repr__(self) -> str:
        return f"TimeWindowTrigger(window_hours={self.window_hours})"


class HybridTrigger(Trigger):
    """Fire on whichever of a count or a time window comes first."""

    kind = "hybrid"

    def __init__(self, count: int, window_hours: float) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if window_hours <= 0:
            raise ValueError(f"window_hours must be positive, got {window_hours}")
        self.count = count
        self.window_hours = window_hours

    def next_boundary(self, last_round_time: float) -> float | None:
        return last_round_time + self.window_hours

    def __repr__(self) -> str:
        return (
            f"HybridTrigger(count={self.count}, window_hours={self.window_hours})"
        )


class AdaptiveTrigger(Trigger):
    """A time window that seeks a per-round latency budget.

    After each round the measured cost is compared to ``target_seconds``:
    over budget halves the window (smaller batches, lower latency), under
    half the budget grows it by ``growth`` (bigger batches, higher
    throughput); both are clamped to ``[min_window_hours,
    max_window_hours]``.

    ``cost_of`` selects the feedback signal.  The default is the measured
    wall-clock ``round_seconds``; tests and simulations can pass a
    deterministic function of the :class:`~repro.stream.metrics.RoundRecord`
    (e.g. pool sizes) so that adaptation — and therefore checkpoint/replay —
    is reproducible.
    """

    kind = "adaptive"

    def __init__(
        self,
        target_seconds: float,
        initial_window_hours: float = 1.0,
        min_window_hours: float = 0.05,
        max_window_hours: float = 8.0,
        growth: float = 1.5,
        cost_of=None,
    ) -> None:
        if target_seconds <= 0:
            raise ValueError(f"target_seconds must be positive, got {target_seconds}")
        if not (0 < min_window_hours <= initial_window_hours <= max_window_hours):
            raise ValueError(
                "window bounds must satisfy 0 < min <= initial <= max, got "
                f"({min_window_hours}, {initial_window_hours}, {max_window_hours})"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self.target_seconds = target_seconds
        self.window_hours = initial_window_hours
        self.min_window_hours = min_window_hours
        self.max_window_hours = max_window_hours
        self.growth = growth
        self.cost_of = cost_of if cost_of is not None else (
            lambda record: record.round_seconds
        )

    def next_boundary(self, last_round_time: float) -> float | None:
        return last_round_time + self.window_hours

    def on_round(self, record: "RoundRecord") -> None:
        cost = float(self.cost_of(record))
        if cost > self.target_seconds:
            self.window_hours = max(self.window_hours / 2.0, self.min_window_hours)
        elif cost < 0.5 * self.target_seconds:
            self.window_hours = min(
                self.window_hours * self.growth, self.max_window_hours
            )

    def state_dict(self) -> dict[str, Any]:
        return {"window_hours": self.window_hours}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore adaptation state, re-imposing this trigger's bounds.

        A checkpoint written under different bounds (or a hand-edited one)
        may carry a ``window_hours`` outside ``[min_window_hours,
        max_window_hours]``; accepting it verbatim would let
        :meth:`on_round`'s clamp arms pin the window there.  Non-finite or
        non-positive values are corrupt state and rejected outright.
        """
        from repro.exceptions import DataError

        window = float(state["window_hours"])
        if not math.isfinite(window) or window <= 0.0:
            raise DataError(
                f"checkpointed window_hours must be finite and positive, got {window}"
            )
        self.window_hours = min(
            max(window, self.min_window_hours), self.max_window_hours
        )

    def __repr__(self) -> str:
        return (
            f"AdaptiveTrigger(target_seconds={self.target_seconds}, "
            f"window_hours={self.window_hours})"
        )
