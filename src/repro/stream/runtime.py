"""The event-driven streaming runtime.

:class:`StreamRuntime` consumes an :class:`~repro.stream.events.EventLog`
through a :class:`~repro.stream.scheduler.Trigger`, maintaining live pools
(:class:`~repro.stream.state.StreamState`) and firing assignment rounds at
the trigger's micro-batch boundaries.  It is a strict superset of the
batched :class:`~repro.framework.online.OnlineSimulator`:

* with a :class:`~repro.stream.scheduler.TimeWindowTrigger` whose window
  equals the simulator's ``batch_hours`` (and a log built by
  :func:`~repro.stream.events.log_from_arrivals` over the same arrivals and
  tasks), the produced assignments are **bit-identical** to
  ``OnlineSimulator.run`` — pinned by a golden cross-check test;
* count/hybrid/adaptive triggers, churn and cancellation events, live
  spatial queries, wait/latency metrics and checkpoint/replay go beyond it.

The runtime is resumable: ``run(max_rounds=...)`` stops after a bounded
number of rounds with all state intact, :meth:`checkpoint` snapshots that
state to disk, and :meth:`resume` reconstructs a runtime that continues the
run bit-identically (regression-tested against an uninterrupted run).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.assignment.base import Assigner
from repro.data.instance import SCInstance
from repro.entities import Assignment
from repro.influence import InfluenceModel
from repro.stream.events import (
    DEFERRED_PHASE,
    PHASE_ARRIVAL,
    PHASE_PUBLISH,
    EventLog,
    TaskCancelEvent,
    TaskExpiryEvent,
    WorkerChurnEvent,
)
from repro.stream.metrics import RoundRecord, StreamMetrics, StreamSummary
from repro.stream.scheduler import Trigger
from repro.stream.state import StreamState


class StreamResult:
    """The accumulating outcome of a streaming run."""

    def __init__(self) -> None:
        self.assignment = Assignment()
        self.metrics = StreamMetrics()

    @property
    def rounds(self) -> list[RoundRecord]:
        """Per-round records, in firing order."""
        return self.metrics.rounds

    @property
    def total_assigned(self) -> int:
        """Tasks assigned so far."""
        return self.metrics.total_assigned

    @property
    def total_expired(self) -> int:
        """Tasks that expired unassigned so far."""
        return self.metrics.total_expired

    @property
    def total_churned(self) -> int:
        """Workers that left unassigned so far."""
        return self.metrics.total_churned

    @property
    def total_cancelled(self) -> int:
        """Tasks withdrawn by cancellation events so far."""
        return self.metrics.total_cancelled

    def summary(self) -> StreamSummary:
        """Aggregate metrics snapshot."""
        return self.metrics.summary()


class StreamRuntime:
    """Plays an event log through micro-batched assignment rounds.

    Parameters
    ----------
    assigner:
        The assignment algorithm run at every round.
    influence_model:
        The fitted influence model shared by all rounds (``None`` for
        influence-free assigners).
    trigger:
        The micro-batch policy (count / time window / hybrid / adaptive).
    base_instance:
        Context shared by every round instance: histories, social network,
        venue visits.  Its own worker/task lists are ignored — pools are
        fed exclusively by the event log.
    log:
        The time-ordered event stream to replay.
    end_time:
        Last round time; defaults to the latest expiry-event time (the
        online simulator's "latest task deadline"), falling back to the
        base instance's ``current_time`` for logs without deadlines.
    patience_hours:
        If set, unassigned workers churn out this many hours after arrival
        (strict, like the online simulator); explicit
        :class:`~repro.stream.events.WorkerChurnEvent` entries work with or
        without it.
    incremental:
        Prepare rounds through the shared PR-1 cache rectangles (True,
        default) or from scratch every round (False, the reference path).
    index_cell_km:
        Cell size of the live open-task grid index.
    rng:
        Optional generator for stochastic policies; its state is captured
        by checkpoints so replays stay deterministic.
    """

    def __init__(
        self,
        assigner: Assigner,
        influence_model: InfluenceModel | None,
        trigger: Trigger,
        base_instance: SCInstance,
        log: EventLog,
        end_time: float | None = None,
        patience_hours: float | None = None,
        incremental: bool = True,
        index_cell_km: float = 25.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if patience_hours is not None and patience_hours < 0:
            raise ValueError(
                f"patience_hours must be non-negative, got {patience_hours}"
            )
        self.assigner = assigner
        self.trigger = trigger
        self.log = log
        self.patience_hours = patience_hours
        self.rng = rng
        self.state = StreamState(
            base_instance,
            influence_model,
            incremental=incremental,
            index_cell_km=index_cell_km,
        )
        self._result = StreamResult()
        self._cursor = 0
        self._clock = base_instance.current_time
        self._start_time = base_instance.current_time
        self._end_time = end_time
        self._started = False
        self._done = False
        self._pending_start_round = False

    # ------------------------------------------------------------ properties
    @property
    def result(self) -> StreamResult:
        """The (possibly still accumulating) run outcome."""
        return self._result

    @property
    def done(self) -> bool:
        """Whether the stream has been fully played out."""
        return self._done

    @property
    def cursor(self) -> int:
        """Index of the next unconsumed log event."""
        return self._cursor

    @property
    def clock(self) -> float:
        """The last round time (or the start time before any round)."""
        return self._clock

    @property
    def end_time(self) -> float | None:
        """The resolved end of the run (None until started)."""
        return self._end_time if self._started else None

    # ----------------------------------------------------------------- start
    def _start(self) -> None:
        if self._started:
            return
        base = self.state.base_instance
        start = self.log.start_time()
        if start is None:
            start = base.current_time
        elif not self.log.has_arrivals():
            # Mirror OnlineSimulator: without arrivals the base instance's
            # clock can still precede the first publication.
            start = min(start, base.current_time)
        self._start_time = start
        self._clock = start
        if self._end_time is None:
            deadline = self.log.last_deadline()
            self._end_time = deadline if deadline is not None else base.current_time
        self._pending_start_round = self.trigger.fires_at_start
        self._started = True

    # ------------------------------------------------------------ scheduling
    def _next_fire_time(self) -> float:
        """When the next round fires: start round, count hit, boundary, or
        the final flush at the end time."""
        if self._pending_start_round:
            return self._start_time
        boundary = self.trigger.next_boundary(self._clock)
        if boundary is not None:
            boundary = min(boundary, self._end_time)
        count = self.trigger.count
        if count is not None:
            pending = 0
            for position in range(self._cursor, len(self.log)):
                event = self.log[position]
                if event.time > self._end_time:
                    break
                if boundary is not None and event.time > boundary:
                    break
                if event.phase in (PHASE_ARRIVAL, PHASE_PUBLISH):
                    pending += 1
                    if pending >= count:
                        return event.time
        if boundary is not None:
            return boundary
        return self._end_time

    # ----------------------------------------------------------------- drain
    def _drain_until(self, fire_time: float) -> tuple[int, int, int, int]:
        """Apply every due event, then the expiry/churn sweeps.

        Admission events (arrival/publish/cancel) apply when ``time <=
        fire_time``; deferred events (expiry/churn) only when strictly
        earlier, so deadlines on the boundary do not bind in this round.
        """
        state = self.state
        drained = expired = churned = cancelled = 0
        while self._cursor < len(self.log):
            event = self.log[self._cursor]
            if event.time > fire_time:
                break
            if event.time == fire_time and event.phase >= DEFERRED_PHASE:
                break
            removed_task, removed_worker = state.apply(event)
            if removed_task:
                if isinstance(event, TaskExpiryEvent):
                    expired += 1
                elif isinstance(event, TaskCancelEvent):
                    cancelled += 1
            if removed_worker and isinstance(event, WorkerChurnEvent):
                churned += 1
            self._cursor += 1
            drained += 1
        expired += len(state.expire_tasks(fire_time))
        churned += len(state.churn_workers(fire_time, self.patience_hours))
        return drained, expired, churned, cancelled

    # ----------------------------------------------------------------- round
    def _fire_round(self, fire_time: float) -> RoundRecord:
        drained, expired, churned, cancelled = self._drain_until(fire_time)
        state = self.state
        pool_workers = state.num_online_workers
        pool_tasks = state.num_open_tasks
        assigned = 0
        elapsed = 0.0
        if pool_workers and pool_tasks:
            started = time.perf_counter()
            assignment, waits = state.run_assignment(self.assigner, fire_time)
            elapsed = time.perf_counter() - started
            for pair, (task_wait, worker_wait) in zip(assignment, waits):
                self._result.assignment.add(pair.task, pair.worker)
                self._result.metrics.on_assigned(task_wait, worker_wait)
            assigned = len(assignment)
        record = RoundRecord(
            index=len(self._result.rounds),
            time=fire_time,
            online_workers=pool_workers,
            open_tasks=pool_tasks,
            drained_events=drained,
            assigned=assigned,
            expired_tasks=expired,
            churned_workers=churned,
            cancelled_tasks=cancelled,
            round_seconds=elapsed,
        )
        self._result.metrics.on_round(record)
        self.trigger.on_round(record)
        self._clock = fire_time
        self._pending_start_round = False
        if fire_time >= self._end_time:
            self._done = True
        return record

    # ------------------------------------------------------------------- run
    def run(self, max_rounds: int | None = None) -> StreamResult:
        """Play the stream until done (or for ``max_rounds`` more rounds).

        Repeated calls continue where the previous one stopped; once the
        stream is exhausted the accumulated result is simply returned.
        """
        if max_rounds is not None and max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        self._start()
        started = time.perf_counter()
        fired = 0
        try:
            while not self._done and (max_rounds is None or fired < max_rounds):
                self._fire_round(self._next_fire_time())
                fired += 1
        finally:
            self._result.metrics.add_wall_seconds(time.perf_counter() - started)
        return self._result

    # ----------------------------------------------------------- checkpoints
    def checkpoint(self, path: str | Path) -> Path:
        """Snapshot the complete runtime state to an ``.npz`` file."""
        from repro.stream.checkpoint import save_checkpoint

        return save_checkpoint(self, path)

    @classmethod
    def resume(
        cls,
        path: str | Path,
        assigner: Assigner,
        influence_model: InfluenceModel | None,
        trigger: Trigger,
        base_instance: SCInstance,
        log: EventLog,
        patience_hours: float | None = None,
        incremental: bool = True,
        index_cell_km: float = 25.0,
        rng: np.random.Generator | None = None,
    ) -> "StreamRuntime":
        """Reconstruct a runtime from a checkpoint and the original log.

        The caller supplies the same (deterministic) collaborators the
        checkpointed run used; the snapshot restores cursor, clock, pools,
        accumulated results, trigger adaptation state and RNG state, after
        verifying the log fingerprint matches.
        """
        from repro.stream.checkpoint import restore_runtime

        runtime = cls(
            assigner,
            influence_model,
            trigger,
            base_instance,
            log,
            patience_hours=patience_hours,
            incremental=incremental,
            index_cell_km=index_cell_km,
            rng=rng,
        )
        restore_runtime(runtime, path)
        return runtime
