"""The event-driven streaming runtime and the sharded round executor.

:class:`StreamRuntime` consumes an :class:`~repro.stream.events.EventLog`
through a :class:`~repro.stream.scheduler.Trigger`, maintaining live pools
(:class:`~repro.stream.state.StreamState`) and firing assignment rounds at
the trigger's micro-batch boundaries.  It is a strict superset of the
batched :class:`~repro.framework.online.OnlineSimulator`:

* with a :class:`~repro.stream.scheduler.TimeWindowTrigger` whose window
  equals the simulator's ``batch_hours`` (and a log built by
  :func:`~repro.stream.events.log_from_arrivals` over the same arrivals and
  tasks), the produced assignments are **bit-identical** to
  ``OnlineSimulator.run`` — pinned by a golden cross-check test;
* count/hybrid/adaptive triggers, churn/cancellation/relocation events,
  admission control (:class:`AdmissionController` — defer or shed low-value
  task admissions when round latency blows a budget), live spatial queries,
  wait/latency metrics and checkpoint/replay go beyond it.

Rounds can execute **sharded**: :class:`ShardExecutor` splits each round's
pools along a :class:`~repro.stream.shards.ShardLayout` (planned once per
run, radius-aware, so no feasible pair is ever split), runs candidate
generation + assignment per shard — serially or on a thread/process pool —
and merges per-shard assignments in deterministic sorted-shard order
through the same :func:`~repro.assignment.partitioned.merge_assignments`
core the offline :class:`~repro.assignment.PartitionedAssigner` uses.
Because no feasible pair crosses shards, the sharded round solves the same
problem as the unsharded one, split into independent sub-problems.

Two optional layers sit on top of sharding.  **Pipelining**
(``StreamRuntime(pipeline=True)``) overlaps the per-shard phases on the
executor's pool instead of running prepare-all-then-solve-all; results are
collected and merged in ascending shard order, so the rounds stay
bit-identical to the serial schedule.  **Latency-driven rebalancing**
(``StreamRuntime(rebalance=ShardRebalancer(...))``) replaces the planner's
count-based component→shard packing with an EWMA of observed per-component
solve latency, repacked at deterministic round-index boundaries — whole
components move between bins, so the never-split invariant (and hence
assignment equivalence) is untouched.  Per-phase timings
(drain/prepare/solve/merge) and repack counts land on every
:class:`~repro.stream.metrics.RoundRecord`.

The runtime is resumable: ``run(max_rounds=...)`` stops after a bounded
number of rounds with all state intact, :meth:`checkpoint` snapshots that
state to disk (including shard layout and per-shard RNG state), and
:meth:`resume` reconstructs a runtime that continues the run bit-identically
(regression-tested against an uninterrupted run).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.assignment.base import Assigner, PreparedInstance, RoundState
from repro.assignment.lexico import LexicographicCostAssigner
from repro.assignment.partitioned import bucket_pools, merge_assignments
from repro.data.instance import SCInstance
from repro.entities import Assignment
from repro.influence import InfluenceModel
from repro.obs import NULL_OBS, Observability
from repro.obs.histo import SECONDS_HISTOGRAM
from repro.stream.events import KIND_PUBLISH, EventLog
from repro.stream.metrics import RoundRecord, StreamMetrics, StreamSummary
from repro.stream.scheduler import Trigger
from repro.stream.shards import ShardLayout, ShardRebalancer
from repro.stream.sharedmem import (
    ShardScratch,
    SharedSlabs,
    fork_capable_context,
    init_shared_worker,
    solve_shared_shard,
)
from repro.stream.state import StreamState


class StreamResult:
    """The accumulating outcome of a streaming run."""

    def __init__(self) -> None:
        self.assignment = Assignment()
        self.metrics = StreamMetrics()

    @property
    def rounds(self) -> list[RoundRecord]:
        """Per-round records, in firing order."""
        return self.metrics.rounds

    @property
    def total_assigned(self) -> int:
        """Tasks assigned so far."""
        return self.metrics.total_assigned

    @property
    def total_expired(self) -> int:
        """Tasks that expired unassigned so far."""
        return self.metrics.total_expired

    @property
    def total_churned(self) -> int:
        """Workers that left unassigned so far."""
        return self.metrics.total_churned

    @property
    def total_cancelled(self) -> int:
        """Tasks withdrawn by cancellation events so far."""
        return self.metrics.total_cancelled

    def summary(self) -> StreamSummary:
        """Aggregate metrics snapshot."""
        return self.metrics.summary()


#: Deterministic entropy pool for per-shard generators; spawn key = shard id.
_SHARD_RNG_ENTROPY = 0x5AD5

#: Recognized :class:`ShardExecutor` backends.
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: Recognized :class:`AdmissionController` policies.
ADMISSION_POLICIES = ("defer", "shed")


class AdmissionController:
    """Defers or sheds low-value task admissions under latency overload.

    When a round's observed cost exceeds ``budget_seconds`` the controller
    turns *overloaded*; while overloaded, publish events whose value falls
    below ``protect_value`` are diverted away from the pool:

    ``defer``
        The task is parked in a backlog and re-admitted — original
        publication time intact, so its wait keeps accruing — at the first
        round where the controller is healthy again.  A parked task whose
        expiry/cancel event drains meanwhile is discarded and counted as
        expired/cancelled like any pooled task.  The stream's final flush
        round force-releases the backlog and admits publishes directly
        (deferring at the end of the stream would silently drop work), so
        defer conserves every publish: assigned, expired or cancelled.
    ``shed``
        The task is dropped outright and only counted.

    The controller leaves the overloaded state once the observed cost
    falls below ``resume_fraction * budget_seconds`` (hysteresis, like the
    adaptive trigger's half-budget growth rule).

    ``value_of(task) -> float`` makes the "low-value" notion pluggable:
    tasks valued at or above ``protect_value`` are always admitted, budget
    or not.  The default (``None``) treats every task as sheddable.
    ``cost_of(record) -> float`` selects the feedback signal; the default
    is the measured wall-clock ``round_seconds``, and tests pass a
    deterministic function of the
    :class:`~repro.stream.metrics.RoundRecord` so runs — and therefore
    checkpoint/replay — are reproducible.

    The runtime never consults the controller when it is not configured:
    ``StreamRuntime(admission=None)`` (the default) replays the exact
    ungated code path, so disabled admission control is bit-identical to a
    runtime without the feature.
    """

    def __init__(
        self,
        budget_seconds: float,
        policy: str = "defer",
        value_of=None,
        protect_value: float = float("inf"),
        cost_of=None,
        resume_fraction: float = 0.5,
    ) -> None:
        if budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be positive, got {budget_seconds}"
            )
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"choose from {', '.join(ADMISSION_POLICIES)}"
            )
        if not (0.0 < resume_fraction <= 1.0):
            raise ValueError(
                f"resume_fraction must lie in (0, 1], got {resume_fraction}"
            )
        self.budget_seconds = budget_seconds
        self.policy = policy
        self.value_of = value_of
        self.protect_value = protect_value
        self.cost_of = cost_of if cost_of is not None else (
            lambda record: record.round_seconds
        )
        self.resume_fraction = resume_fraction
        self.overloaded = False
        #: task_id -> (publish event position, publication event time).
        self._backlog: dict[int, tuple[int, float]] = {}
        self.total_deferred = 0
        self.total_shed = 0
        self._round_deferred = 0
        self._round_shed = 0

    # ------------------------------------------------------------------ gate
    def offer(self, position: int, task, time: float) -> bool:
        """Gate one publish event; False diverts it away from the pool."""
        if not self.overloaded:
            return True
        if self.value_of is not None and self.value_of(task) >= self.protect_value:
            return True
        if self.policy == "defer":
            self._backlog[task.task_id] = (position, time)
            self._round_deferred += 1
            self.total_deferred += 1
        else:
            self._round_shed += 1
            self.total_shed += 1
        return False

    def discard(self, task_id: int) -> bool:
        """Drop a parked task on expiry/cancel; True if it was parked."""
        return self._backlog.pop(task_id, None) is not None

    def release(self, force: bool = False) -> list[tuple[int, int, float]]:
        """Backlog entries to re-admit now: ``(task_id, position, time)``.

        Empty while overloaded (unless ``force``, the final-flush path);
        otherwise drains the whole backlog in publish-event order
        (deterministic).
        """
        if (self.overloaded and not force) or not self._backlog:
            return []
        released = sorted(
            (position, task_id, time)
            for task_id, (position, time) in self._backlog.items()
        )
        self._backlog.clear()
        return [(task_id, position, time) for position, task_id, time in released]

    @property
    def backlog_size(self) -> int:
        """Tasks currently parked by the defer policy."""
        return len(self._backlog)

    # -------------------------------------------------------------- feedback
    def take_round_counts(self) -> tuple[int, int]:
        """``(deferred, shed)`` since the last call (round bookkeeping)."""
        counts = (self._round_deferred, self._round_shed)
        self._round_deferred = 0
        self._round_shed = 0
        return counts

    def on_round(self, record) -> None:
        """Observe a completed round and update the overload state."""
        cost = float(self.cost_of(record))
        if cost > self.budget_seconds:
            self.overloaded = True
        elif cost < self.resume_fraction * self.budget_seconds:
            self.overloaded = False

    # ----------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """Serializable control state (policy echoed for resume validation)."""
        return {
            "policy": self.policy,
            "budget_seconds": self.budget_seconds,
            "overloaded": self.overloaded,
            "backlog": [
                [task_id, position, time]
                for task_id, (position, time) in sorted(self._backlog.items())
            ],
            "total_deferred": self.total_deferred,
            "total_shed": self.total_shed,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (compatibility pre-validated)."""
        self.overloaded = bool(state["overloaded"])
        self._backlog = {
            int(task_id): (int(position), float(time))
            for task_id, position, time in state["backlog"]
        }
        self.total_deferred = int(state["total_deferred"])
        self.total_shed = int(state["total_shed"])
        self._round_deferred = 0
        self._round_shed = 0


def _span_tuple(start_ns: int, end_ns: int) -> tuple[int, int, int, int]:
    """A shippable ``(start_ns, end_ns, pid, tid)`` solve-span record."""
    return (start_ns, end_ns, os.getpid(), threading.get_ident())


def _solve_shard(
    assigner: Assigner,
    shard: int,
    prepared: PreparedInstance,
    warm=None,
    use_warm: bool = False,
) -> tuple[int, Assignment, float, tuple[int, int, int, int], Any]:
    """One shard's timed solve — module-level so process pools can pickle it.

    The span tuple places the solve on the wall-clock timeline (worker
    pid/tid included), so the parent's tracer can attribute it even when
    the solve ran in a pool process.  With ``use_warm=True`` the solve
    routes through the assigner's ``assign_warm`` and the final element
    becomes ``(warm_out, augmentations, seeded, matched)`` — the caller's
    per-shard dual carry plus solver-effort counters; it is ``None`` on
    cold solves.
    """
    started = time.perf_counter()
    start_ns = time.time_ns()
    stats = None
    if use_warm:
        part, matching = assigner.assign_warm(prepared, warm)
        stats = (
            matching.warm,
            matching.augmentations,
            matching.seeded,
            int(matching.rows.size),
        )
    else:
        part = assigner.assign(prepared)
    elapsed = time.perf_counter() - started
    return shard, part, elapsed, _span_tuple(start_ns, time.time_ns()), stats


@dataclass(frozen=True)
class RoundExecution:
    """One sharded round's outcome with its per-phase cost attribution.

    The phase spans are *cumulative across shards*: under the pipelined
    executor the per-shard prepare/solve spans overlap in time, so their
    sum can exceed the round's wall clock — that gap is the overlap win.
    ``shard_seconds`` keeps the per-shard solve spans for the latency
    rebalancer's EWMA.
    """

    assignment: Assignment
    waits: list[tuple[float, float]]
    prepare_seconds: float
    solve_seconds: float
    merge_seconds: float
    shard_seconds: dict[int, float] = field(default_factory=dict)
    #: Successful augmenting paths across all shard solves (0 when the
    #: solves ran cold — the counters only exist on the warm path).
    solve_augmentations: int = 0
    #: Matched pairs carried over intact from the previous round's warm
    #: state, summed across shards.
    warm_seeded: int = 0
    #: Total matched pairs this round across warm shard solves (the
    #: denominator of the warm-hit ratio).
    warm_matched: int = 0
    #: Whether any shard solved through the warm path this round.
    warmed: bool = False


class ShardExecutor:
    """Runs one assignment round as independent per-shard solves.

    Each round: bucket the live pools by
    :meth:`~repro.stream.shards.ShardLayout.shard_of`, prepare every
    non-empty shard through its own persistent
    :class:`~repro.assignment.RoundState` (the PR-1 incremental rectangles,
    per shard), solve the shards on the configured backend, and merge the
    per-shard assignments in ascending shard order.

    In the default (non-pipelined) mode preparation happens in the calling
    thread — prepared instances are fully materialized (feasibility,
    influence, entropy) before dispatch, so workers only run the solver.
    In **pipelined** mode (``run_round(..., pipeline=True)``) the phases
    overlap: on the thread backend each shard's prepare+solve runs as one
    unit on the pool (per-shard ``RoundState`` objects are disjoint and the
    influence model's column caches are lock-protected, so concurrent
    prepares are safe); on the process backend preparation stays in the
    caller — the caches live in this process — but each shard is submitted
    as soon as it is prepared, so earlier shards solve while later shards
    prepare.  Results are always collected in ascending shard order and
    every prepared instance is deterministic regardless of which thread
    built it, so pipelined rounds are bit-identical to serial ones.

    Backends
    --------
    ``serial``
        Solve shards one after another in the calling thread.  Already
        faster than unsharded on decomposable worlds: k shards of n/k
        entities beat one solve of n for any super-linear solver.
    ``thread``
        A :class:`~concurrent.futures.ThreadPoolExecutor`; effective for
        numpy-heavy solvers that release the GIL.
    ``process``
        A fork-once :class:`~concurrent.futures.ProcessPoolExecutor` over
        shared memory (when the executor knows its event log, the normal
        runtime path): the log's payload slabs are published once per run
        via :class:`~repro.stream.sharedmem.SharedSlabs`, each round ships
        only payload slots + the prepared rectangles through per-shard
        scratch blocks, and workers return plain index pairs — nothing but
        the assigner itself is pickled per round, which is what lets
        CPU-bound solves beat the thread backend.  Without a log (direct
        construction), prepared shards fall back to being pickled whole.
        A crashed worker surfaces as a :class:`RuntimeError` naming the
        shard and round (not a bare ``BrokenProcessPool``), and
        :meth:`close` stays safe afterwards.

    A per-shard :class:`numpy.random.Generator` stream is maintained and
    checkpointed: :meth:`rng_for` is the seed source for stochastic
    assignment policies run inside a shard (deterministic assigners never
    consume it).  When the runtime was given a user generator the shard
    streams are spawned from it (so the user's seed governs them); without
    one they fall back to a fixed entropy pool — deterministic either way,
    and resumed bit-exactly from checkpoints.
    """

    def __init__(
        self,
        layout: ShardLayout,
        influence: InfluenceModel | None = None,
        backend: str = "serial",
        max_workers: int | None = None,
        rng: np.random.Generator | None = None,
        rebalancer: ShardRebalancer | None = None,
        log: EventLog | None = None,
        obs: Observability | None = None,
        warm: bool = False,
    ) -> None:
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; "
                f"choose from {', '.join(EXECUTOR_BACKENDS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.layout = layout
        self.influence = influence
        self.backend = backend
        self.rebalancer = rebalancer
        self.obs = obs if obs is not None else NULL_OBS
        #: The event log backing the shared-memory process path; ``None``
        #: keeps the legacy pickle-the-prepared-shard process backend.
        self.log = log
        # Cap the default at the core count: pools wider than the machine
        # only add fork/pickle overhead (notably on the process backend).
        self.max_workers = max_workers or min(
            layout.num_shards, os.cpu_count() or 1
        )
        self.round_states: dict[int, RoundState] = {}
        #: Warm-start duals carried between rounds, per shard.  Purely an
        #: accelerator: solves seeded from these states are pinned
        #: bit-identical to cold solves, and the dict is dropped whenever
        #: shard membership can shift under an entity (repack, relocation)
        #: — never persisted in checkpoints, so resumes rebuild cold.
        self.warm = warm
        self.warm_states: dict[int, Any] = {}
        if rng is not None:
            spawned = rng.spawn(layout.num_shards)
            self.rngs: dict[int, np.random.Generator] = dict(enumerate(spawned))
        else:
            self.rngs = {
                shard: np.random.default_rng(
                    np.random.SeedSequence(
                        entropy=_SHARD_RNG_ENTROPY, spawn_key=(shard,)
                    )
                )
                for shard in range(layout.num_shards)
            }
        self._pool: _FuturesExecutor | None = None
        self._broken = False
        self._slabs: SharedSlabs | None = None
        self._scratch: dict[int, ShardScratch] = {}

    def rng_for(self, shard: int) -> np.random.Generator:
        """The checkpointed random stream owned by ``shard``."""
        return self.rngs[shard]

    # ----------------------------------------------------------------- round
    def _prepare_shard(
        self, shard: int, state: StreamState, sub_instance: SCInstance
    ) -> PreparedInstance:
        if state.incremental:
            round_state = self.round_states.get(shard)
            if round_state is None:
                round_state = self.round_states[shard] = RoundState(self.influence)
            return round_state.prepare(sub_instance)
        prepared = PreparedInstance(sub_instance, self.influence)
        # Force the lazy caches now, in the calling thread (see class doc).
        prepared.feasible
        prepared.influence_matrix
        prepared.entropy_by_task
        return prepared

    @property
    def shares_memory(self) -> bool:
        """Whether process-backend rounds go through the shared slabs."""
        return self.backend == "process" and self.log is not None

    def _pool_executor(self) -> _FuturesExecutor:
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            elif self.shares_memory:
                # Fork-once: publish the log's payload slabs, then start a
                # pool whose initializer attaches them — after this, rounds
                # ship only slot vectors + scratch headers.  Segmented logs
                # publish nothing run-wide (their payload tables live in
                # transient per-segment slabs); their rounds ship the
                # entity rows inline in the scratch blocks instead.
                if self._slabs is None and not self.log.segmented:
                    self._slabs = SharedSlabs(self.log)
                specs = self._slabs.specs if self._slabs is not None else ()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=fork_capable_context(),
                    initializer=init_shared_worker,
                    initargs=(specs,),
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _shard_result(self, future, shard: int, round_index: int | None):
        """Await one shard's future, translating pool breakage.

        A crashed worker (OOM-killed, segfaulted C extension, ``os._exit``)
        surfaces from :mod:`concurrent.futures` as a contextless
        ``BrokenProcessPool``; name the shard and round instead, and mark
        the pool broken so :meth:`close` never waits on it.
        """
        try:
            return future.result()
        except BrokenProcessPool as error:
            self._broken = True
            where = (
                f"round {round_index}" if round_index is not None
                else "the current round"
            )
            raise RuntimeError(
                f"process-backend worker crashed while solving shard {shard} "
                f"in {where}; the worker pool is broken — close() the "
                "runtime and resume from its last checkpoint"
            ) from error

    def _publish_shard(
        self, shard: int, prepared: PreparedInstance, now: float
    ) -> dict:
        """Copy one prepared shard's rectangles into its scratch block.

        Materialized logs address entities by *slot* — rows of the run-wide
        :class:`SharedSlabs` payload tables the pool attached at fork.
        Segmented logs have no such run-wide table (payload slabs come and
        go with the cursor), so their rounds ship the pooled entities'
        attribute rows inline — O(workers + tasks) per round beside the
        O(workers x tasks) rectangles already copied.
        """
        feasible = prepared.feasible
        log = self.log
        if log.segmented:
            workers_n = len(feasible.workers)
            tasks_n = len(feasible.tasks)
            worker_attrs = np.empty((workers_n, 4), dtype=np.float64)
            worker_ids = np.empty(workers_n, dtype=np.int64)
            for row, worker in enumerate(feasible.workers):
                worker_attrs[row, 0] = worker.location.x
                worker_attrs[row, 1] = worker.location.y
                worker_attrs[row, 2] = worker.reachable_km
                worker_attrs[row, 3] = worker.speed_kmh
                worker_ids[row] = worker.worker_id
            task_attrs = np.empty((tasks_n, 4), dtype=np.float64)
            task_ids = np.empty(tasks_n, dtype=np.int64)
            for column, task in enumerate(feasible.tasks):
                task_attrs[column, 0] = task.location.x
                task_attrs[column, 1] = task.location.y
                task_attrs[column, 2] = task.publication_time
                task_attrs[column, 3] = task.valid_hours
                task_ids[column] = task.task_id
            entities = {
                "worker_attrs": worker_attrs,
                "worker_ids": worker_ids,
                "task_attrs": task_attrs,
                "task_ids": task_ids,
            }
        else:
            entities = {
                "worker_slots": np.fromiter(
                    (log.worker_slot_of(worker) for worker in feasible.workers),
                    dtype=np.int64, count=len(feasible.workers),
                ),
                "task_slots": np.fromiter(
                    (log.task_slot_of(task) for task in feasible.tasks),
                    dtype=np.int64, count=len(feasible.tasks),
                ),
            }
        entropy = np.fromiter(
            (prepared.entropy_by_task[task.task_id] for task in feasible.tasks),
            dtype=np.float64, count=len(feasible.tasks),
        )
        scratch = self._scratch.get(shard)
        if scratch is None:
            scratch = self._scratch[shard] = ShardScratch()
        return scratch.publish(
            shard=shard,
            now=now,
            distance=feasible.distance_km,
            mask=feasible.mask,
            influence=prepared.influence_matrix,
            entropy=entropy,
            **entities,
        )

    def _prepare_and_solve(
        self,
        shard: int,
        state: StreamState,
        sub_instance: SCInstance,
        assigner: Assigner,
        warm=None,
        use_warm: bool = False,
    ) -> tuple[
        int, Assignment, float, float,
        tuple[int, int, int, int], tuple[int, int, int, int], Any,
    ]:
        """One shard's prepare+solve unit (the pipelined thread-pool task).

        The two span tuples are the prepare and solve spans — this unit
        runs on a pool thread, so the spans carry their own tid for the
        parent tracer to attribute.  The final element is the warm-solve
        stats tuple (see :func:`_solve_shard`), ``None`` on cold solves.
        """
        started = time.perf_counter()
        prepare_start_ns = time.time_ns()
        prepared = self._prepare_shard(shard, state, sub_instance)
        prepared_at = time.perf_counter()
        solve_start_ns = time.time_ns()
        stats = None
        if use_warm:
            part, matching = assigner.assign_warm(prepared, warm)
            stats = (
                matching.warm,
                matching.augmentations,
                matching.seeded,
                int(matching.rows.size),
            )
        else:
            part = assigner.assign(prepared)
        solved = time.perf_counter() - prepared_at
        end_ns = time.time_ns()
        return (
            shard,
            part,
            prepared_at - started,
            solved,
            _span_tuple(prepare_start_ns, solve_start_ns),
            _span_tuple(solve_start_ns, end_ns),
            stats,
        )

    def _component_entities(self, state: StreamState) -> dict[int, int]:
        """Pooled entities per layout component (rebalancer attribution)."""
        layout = self.layout
        counts: dict[int, int] = {}
        for worker in state.workers.values():
            component = layout.component_of(worker.location)
            if component >= 0:
                counts[component] = counts.get(component, 0) + 1
        for task in state.tasks.values():
            component = layout.component_of(task.location)
            if component >= 0:
                counts[component] = counts.get(component, 0) + 1
        return counts

    def run_round(
        self,
        state: StreamState,
        assigner: Assigner,
        now: float,
        pipeline: bool = False,
        round_index: int | None = None,
    ) -> RoundExecution:
        """Solve one round shard-by-shard and retire the matched pairs.

        Returns a :class:`RoundExecution` whose assignment and waits match
        :meth:`StreamState.run_assignment` bit-for-bit — the runtime treats
        the two paths interchangeably.  ``pipeline=True`` overlaps the
        per-shard phases (see the class docstring); it is a no-op on the
        serial backend and for rounds with at most one populated shard.
        ``round_index`` only labels worker-crash errors.
        """
        layout = self.layout
        buckets = bucket_pools(
            (state.workers[key] for key in sorted(state.workers)),
            (state.tasks[key] for key in sorted(state.tasks)),
            layout.shard_of,
        )
        component_entities = (
            self._component_entities(state) if self.rebalancer is not None else {}
        )
        shard_instances: list[tuple[int, SCInstance]] = []
        for shard in sorted(buckets):
            workers, tasks = buckets[shard]
            if not workers or not tasks:
                continue
            sub_instance = state.base_instance.with_workers(workers).with_tasks(tasks)
            sub_instance.current_time = now
            shard_instances.append((shard, sub_instance))

        prepare_seconds = 0.0
        solve_seconds = 0.0
        solve_augmentations = 0
        warm_seeded = 0
        warm_matched = 0
        shard_seconds: dict[int, float] = {}
        parts: list[Assignment] = []
        tracer = self.obs.tracer
        # Warm starts only make sense for assigners whose solve exposes the
        # dual-carrying interface; anything else stays on the cold path.
        use_warm = self.warm and isinstance(assigner, LexicographicCostAssigner)

        def emit(
            name: str, span: tuple[int, int, int, int], shard: int, extra=None
        ) -> None:
            args = {"shard": shard, "round": round_index}
            if extra:
                args.update(extra)
            tracer.complete(
                name, span[0], span[1], cat="shard", pid=span[2], tid=span[3],
                args=args,
            )

        def collect(
            shard: int, part: Assignment, solved: float, span=None, stats=None
        ) -> None:
            nonlocal solve_seconds, solve_augmentations, warm_seeded, warm_matched
            parts.append(part)
            solve_seconds += solved
            shard_seconds[shard] = shard_seconds.get(shard, 0.0) + solved
            extra = None
            if stats is not None:
                self.warm_states[shard] = stats[0]
                solve_augmentations += stats[1]
                warm_seeded += stats[2]
                warm_matched += stats[3]
                extra = {"augmentations": stats[1], "warm_seeded": stats[2]}
            if span is not None and tracer.enabled:
                emit("shard.solve", span, shard, extra)

        def collect_shared(shard, prepared, future) -> None:
            # Workers return (row, column) index arrays; materialize them
            # against the caller's full-fidelity prepared instance (which
            # re-validates feasibility and one-to-one matching).
            shard_, index_pairs, solved, span, stats = self._shard_result(
                future, shard, round_index
            )
            collect(
                shard, prepared.build_assignment(index_pairs), solved, span, stats
            )

        pipelined = (
            pipeline and self.backend != "serial" and len(shard_instances) > 1
        )
        if pipelined and self.backend == "thread":
            # Whole prepare+solve units on the pool: shard k+1 prepares
            # while shard k solves, and collection in ascending shard
            # order merges finished shards while later ones still run.
            pool = self._pool_executor()
            futures = [
                pool.submit(
                    self._prepare_and_solve, shard, state, sub, assigner,
                    self.warm_states.get(shard), use_warm,
                )
                for shard, sub in shard_instances
            ]
            for (shard, _), future in zip(shard_instances, futures):
                shard, part, prep, solved, prep_span, solve_span, stats = (
                    self._shard_result(future, shard, round_index)
                )
                prepare_seconds += prep
                if tracer.enabled:
                    emit("shard.prepare", prep_span, shard)
                collect(shard, part, solved, solve_span, stats)
        elif pipelined:
            # Process backend: prepare in-caller (the influence caches live
            # here), but submit each shard the moment it is prepared so
            # earlier shards solve while later shards prepare.  On the
            # shared-memory path the rectangles go through the shard's
            # scratch block and only a header dict is submitted.
            pool = self._pool_executor()
            shared = self.shares_memory
            futures = []
            for shard, sub_instance in shard_instances:
                started = time.perf_counter()
                prepare_start_ns = time.time_ns()
                prepared = self._prepare_shard(shard, state, sub_instance)
                if tracer.enabled:
                    emit(
                        "shard.prepare",
                        _span_tuple(prepare_start_ns, time.time_ns()),
                        shard,
                    )
                if shared:
                    header = self._publish_shard(shard, prepared, now)
                    future = pool.submit(
                        solve_shared_shard, assigner, header,
                        self.warm_states.get(shard), use_warm,
                    )
                else:
                    future = pool.submit(
                        _solve_shard, assigner, shard, prepared,
                        self.warm_states.get(shard), use_warm,
                    )
                prepare_seconds += time.perf_counter() - started
                futures.append((shard, prepared, future))
            for shard, prepared, future in futures:
                if shared:
                    collect_shared(shard, prepared, future)
                else:
                    collect(*self._shard_result(future, shard, round_index))
        else:
            work: list[tuple[int, PreparedInstance]] = []
            for shard, sub_instance in shard_instances:
                started = time.perf_counter()
                prepare_start_ns = time.time_ns()
                work.append((shard, self._prepare_shard(shard, state, sub_instance)))
                prepare_seconds += time.perf_counter() - started
                if tracer.enabled:
                    emit(
                        "shard.prepare",
                        _span_tuple(prepare_start_ns, time.time_ns()),
                        shard,
                    )
            if self.backend == "serial" or len(work) <= 1:
                for shard, prepared in work:
                    collect(
                        *_solve_shard(
                            assigner, shard, prepared,
                            self.warm_states.get(shard), use_warm,
                        )
                    )
            elif self.shares_memory:
                pool = self._pool_executor()
                futures = [
                    (
                        shard,
                        prepared,
                        pool.submit(
                            solve_shared_shard,
                            assigner,
                            self._publish_shard(shard, prepared, now),
                            self.warm_states.get(shard),
                            use_warm,
                        ),
                    )
                    for shard, prepared in work
                ]
                for shard, prepared, future in futures:
                    collect_shared(shard, prepared, future)
            else:
                pool = self._pool_executor()
                futures = [
                    pool.submit(
                        _solve_shard, assigner, shard, prepared,
                        self.warm_states.get(shard), use_warm,
                    )
                    for shard, prepared in work
                ]
                for (shard, _), future in zip(work, futures):
                    collect(*self._shard_result(future, shard, round_index))

        merge_started = time.perf_counter()
        merge_start_ns = time.time_ns()
        merged = merge_assignments(parts)
        waits = state.retire_pairs(merged, now)
        merge_seconds = time.perf_counter() - merge_started
        if tracer.enabled:
            tracer.complete(
                "round.merge", merge_start_ns, time.time_ns(), cat="stream",
                args={"round": round_index, "pairs": len(merged)},
            )
        if self.rebalancer is not None:
            self.rebalancer.observe(layout, shard_seconds, component_entities)
        return RoundExecution(
            assignment=merged,
            waits=waits,
            prepare_seconds=prepare_seconds,
            solve_seconds=solve_seconds,
            merge_seconds=merge_seconds,
            shard_seconds=shard_seconds,
            solve_augmentations=solve_augmentations,
            warm_seeded=warm_seeded,
            warm_matched=warm_matched,
            warmed=use_warm,
        )

    def invalidate_warm(self) -> None:
        """Drop every shard's carried warm state (next solves run cold).

        Called whenever shard membership can shift under an entity — a
        layout repack or a relocation wave — since carried duals are keyed
        by entity id *within* a shard's sub-problem.
        """
        self.warm_states.clear()

    def maybe_repack(self, round_index: int) -> int:
        """Apply a latency-driven repack at this round boundary.

        Returns the number of repacks applied (0 or 1).  Delegates the
        decision to the configured :class:`ShardRebalancer`; without one
        the layout is immutable and this is a no-op.  An applied repack
        moves components between shards, so carried warm states are
        invalidated with it.
        """
        if self.rebalancer is None:
            return 0
        repacked = self.rebalancer.maybe_repack(round_index, self.layout)
        if repacked is None:
            return 0
        self.layout = repacked
        self.invalidate_warm()
        return 1

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the pool and release shared memory (idempotent).

        Safe after a worker crash: a broken process pool is shut down
        without waiting (``shutdown(wait=True)`` can hang forever on
        workers that will never answer), pending futures are cancelled,
        and the shared slabs/scratch blocks are always unlinked.  The
        executor stays reusable — the next round recreates everything.
        """
        pool, self._pool = self._pool, None
        broken, self._broken = self._broken, False
        try:
            if pool is not None:
                if broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                else:
                    pool.shutdown(wait=True)
        finally:
            if self._slabs is not None:
                self._slabs.close()
                self._slabs = None
            for scratch in self._scratch.values():
                scratch.close()
            self._scratch.clear()

    # ----------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """Layout + per-shard RNG states (+ EWMA state when rebalancing)."""
        state = {
            "layout": self.layout.state_dict(),
            "rngs": [
                self.rngs[shard].bit_generator.state
                for shard in range(self.layout.num_shards)
            ],
        }
        if self.rebalancer is not None:
            state["rebalance"] = self.rebalancer.state_dict()
        return state

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore per-shard RNG (and EWMA) state; layout validated upstream."""
        for shard, rng_state in enumerate(state["rngs"]):
            self.rngs[shard].bit_generator.state = rng_state
        if self.rebalancer is not None and state.get("rebalance") is not None:
            self.rebalancer.load_state_dict(state["rebalance"])


class StreamRuntime:
    """Plays an event log through micro-batched assignment rounds.

    Parameters
    ----------
    assigner:
        The assignment algorithm run at every round.
    influence_model:
        The fitted influence model shared by all rounds (``None`` for
        influence-free assigners).
    trigger:
        The micro-batch policy (count / time window / hybrid / adaptive).
    base_instance:
        Context shared by every round instance: histories, social network,
        venue visits.  Its own worker/task lists are ignored — pools are
        fed exclusively by the event log.
    log:
        The time-ordered event stream to replay.
    end_time:
        Last round time; defaults to the latest expiry-event time (the
        online simulator's "latest task deadline"), falling back to the
        base instance's ``current_time`` for logs without deadlines.
    patience_hours:
        If set, unassigned workers churn out this many hours after arrival
        (strict, like the online simulator); explicit
        :class:`~repro.stream.events.WorkerChurnEvent` entries work with or
        without it.
    incremental:
        Prepare rounds through the shared PR-1 cache rectangles (True,
        default) or from scratch every round (False, the reference path).
    index_cell_km:
        Cell size of the live open-task grid index.
    rng:
        Optional generator for stochastic policies; its state is captured
        by checkpoints so replays stay deterministic.
    shards:
        When set, rounds execute sharded: a
        :class:`~repro.stream.shards.ShardLayout` is planned from the log
        (radius-aware, at most ``shards`` shards) and every round runs
        through a :class:`ShardExecutor`.  ``None`` keeps the plain
        single-solve path.
    executor:
        Shard backend: ``"serial"`` (default), ``"thread"`` or
        ``"process"``; ignored without ``shards``.
    shard_cell_km:
        Planning cell size for the shard layout (default: the log's
        largest worker radius).
    pipeline:
        Overlap the per-shard round phases on the executor's worker pool
        (see :class:`ShardExecutor`): bit-identical results, lower round
        wall clock.  Requires ``shards``; a no-op on the serial backend.
    rebalance:
        Optional :class:`~repro.stream.shards.ShardRebalancer` repacking
        the component→shard layout from an EWMA of observed per-component
        solve latency at deterministic round boundaries.  Requires
        ``shards``; assignments stay equivalent under any repack because
        only whole never-split components move between bins.
    admission:
        Optional :class:`AdmissionController` deferring/shedding low-value
        task admissions when observed round latency exceeds its budget.
        ``None`` (the default) replays the exact ungated path — disabled
        admission control is provably a no-op.
    obs:
        Optional :class:`~repro.obs.Observability` bundle (metrics registry
        + span tracer).  The default, :data:`~repro.obs.NULL_OBS`, is fully
        inert; telemetry is pure observation either way — instruments only
        read values the runtime already computed, so obs-on and obs-off
        runs produce bit-identical results (pinned by differential tests).
    warm:
        Carry the previous round's solver duals and surviving matches into
        the next round's solve (per shard when sharded).  Applies only to
        assigners built on :class:`~repro.assignment.LexicographicCostAssigner`
        (IA/EIA/DIA and subclasses); others silently run cold.  Purely an
        accelerator: warm solves are pinned bit-identical (objective value
        and cardinality) to cold solves, warm state is invalidated on
        layout repacks and relocation waves, and it is never checkpointed
        — a resumed runtime rebuilds it cold, keeping the v6 checkpoint
        format untouched.
    """

    def __init__(
        self,
        assigner: Assigner,
        influence_model: InfluenceModel | None,
        trigger: Trigger,
        base_instance: SCInstance,
        log: EventLog,
        end_time: float | None = None,
        patience_hours: float | None = None,
        incremental: bool = True,
        index_cell_km: float = 25.0,
        rng: np.random.Generator | None = None,
        shards: int | None = None,
        executor: str = "serial",
        shard_cell_km: float | None = None,
        admission: AdmissionController | None = None,
        pipeline: bool = False,
        rebalance: ShardRebalancer | None = None,
        obs: Observability | None = None,
        warm: bool = False,
    ) -> None:
        if patience_hours is not None and patience_hours < 0:
            raise ValueError(
                f"patience_hours must be non-negative, got {patience_hours}"
            )
        if pipeline and shards is None:
            raise ValueError("pipeline=True requires shards")
        if rebalance is not None and shards is None:
            raise ValueError("rebalance requires shards")
        self.assigner = assigner
        self.trigger = trigger
        self.log = log
        self.patience_hours = patience_hours
        self.rng = rng
        self.admission = admission
        self.pipeline = pipeline
        self.warm = warm
        self.obs = obs if obs is not None else NULL_OBS
        self._instruments: dict[str, Any] | None = None
        #: Unsharded warm carry + the last round's solver-effort stats
        #: (``(augmentations, seeded, matched)`` or ``None`` on cold
        #: rounds) for the observability hook.  Never checkpointed.
        self._warm_state: Any = None
        self._last_solver_stats: tuple[int, int, int] | None = None
        self.shard_executor: ShardExecutor | None = None
        #: The *requested* shard configuration (vs the planned layout, which
        #: may use fewer bins); persisted in checkpoints so a resume with a
        #: different ``--shards``/cell size fails in the cheap pre-flight.
        self.shard_request: dict | None = None
        if shards is not None:
            layout = ShardLayout.plan(log, shards, cell_km=shard_cell_km)
            self.shard_executor = ShardExecutor(
                layout, influence=influence_model, backend=executor, rng=rng,
                rebalancer=rebalance, log=log, obs=self.obs, warm=warm,
            )
            self.shard_request = {"shards": shards, "cell_km": shard_cell_km}
        self.state = StreamState(
            base_instance,
            influence_model,
            incremental=incremental,
            index_cell_km=index_cell_km,
        )
        self._result = StreamResult()
        self._cursor = 0
        self._clock = base_instance.current_time
        self._start_time = base_instance.current_time
        self._end_time = end_time
        self._started = False
        self._done = False
        self._pending_start_round = False

    # ------------------------------------------------------------ properties
    @property
    def result(self) -> StreamResult:
        """The (possibly still accumulating) run outcome."""
        return self._result

    @property
    def done(self) -> bool:
        """Whether the stream has been fully played out."""
        return self._done

    @property
    def cursor(self) -> int:
        """Index of the next unconsumed log event."""
        return self._cursor

    @property
    def clock(self) -> float:
        """The last round time (or the start time before any round)."""
        return self._clock

    @property
    def end_time(self) -> float | None:
        """The resolved end of the run (None until started)."""
        return self._end_time if self._started else None

    # ----------------------------------------------------------------- start
    def _start(self) -> None:
        if self._started:
            return
        base = self.state.base_instance
        start = self.log.start_time()
        if start is None:
            start = base.current_time
        elif not self.log.has_arrivals():
            # Mirror OnlineSimulator: without arrivals the base instance's
            # clock can still precede the first publication.
            start = min(start, base.current_time)
        self._start_time = start
        self._clock = start
        if self._end_time is None:
            deadline = self.log.last_deadline()
            self._end_time = deadline if deadline is not None else base.current_time
        self._pending_start_round = self.trigger.fires_at_start
        self._started = True

    # ------------------------------------------------------------ scheduling
    def _next_fire_time(self) -> float:
        """When the next round fires: start round, count hit, boundary, or
        the final flush at the end time."""
        if self._pending_start_round:
            return self._start_time
        boundary = self.trigger.next_boundary(self._clock)
        if boundary is not None:
            boundary = min(boundary, self._end_time)
        count = self.trigger.count
        if count is not None:
            limit = self._end_time if boundary is None else boundary
            fire = self.log.next_count_time(self._cursor, count, limit)
            if fire is not None:
                return fire
        if boundary is not None:
            return boundary
        return self._end_time

    # ----------------------------------------------------------------- drain
    def _drain_until(self, fire_time: float) -> tuple[int, int, int, int, int]:
        """Apply every due event, then the expiry/churn sweeps.

        Admission events (arrival/publish/cancel/relocate) apply when
        ``time <= fire_time``; deferred events (expiry/churn) only when
        strictly earlier, so deadlines on the boundary do not bind in this
        round.  The due range is located with two ``searchsorted`` calls on
        the columnar log and applied straight from the columns — slab by
        slab through :meth:`EventLog.slices`, so a segmented log drains
        with only its current windows alive (and everything behind the
        cursor is released afterwards).  With an admission controller
        configured, a healthy round first re-admits the deferred backlog
        (original publication times intact), then gates the new publishes.
        """
        state = self.state
        stop = self.log.drain_stop(self._cursor, fire_time)
        gate = self.admission
        if self.admission is not None:
            final_flush = fire_time >= self._end_time
            for task_id, position, published in self.admission.release(
                force=final_flush
            ):
                state.apply_kind(
                    KIND_PUBLISH, published, task_id,
                    task=self.log.task_at(position),
                )
            if final_flush and self.admission.policy == "defer":
                gate = None  # deferring at the end of the stream drops work
        expired = churned = cancelled = relocated = 0
        for slab, local_start, local_stop, base in self.log.slices(
            self._cursor, stop
        ):
            slab_counts = state.apply_log_slice(
                slab, local_start, local_stop, admission=gate, offset=base
            )
            expired += slab_counts[0]
            churned += slab_counts[1]
            cancelled += slab_counts[2]
            relocated += slab_counts[3]
        drained = stop - self._cursor
        self._cursor = stop
        if self.log.segmented:
            self.log.release_before(self._cursor)
        expired += len(state.expire_tasks(fire_time))
        churned += len(state.churn_workers(fire_time, self.patience_hours))
        return drained, expired, churned, cancelled, relocated

    # ----------------------------------------------------------------- round
    def _fire_round(self, fire_time: float) -> RoundRecord:
        tracer = self.obs.tracer
        round_index = len(self._result.rounds)
        round_start_ns = time.time_ns()
        drain_started = time.perf_counter()
        drained, expired, churned, cancelled, relocated = self._drain_until(
            fire_time
        )
        drain_seconds = time.perf_counter() - drain_started
        if tracer.enabled:
            tracer.complete(
                "round.drain", round_start_ns, time.time_ns(), cat="stream",
                args={"round": round_index, "events": drained},
            )
        if relocated:
            # A relocation wave can move entities across shard boundaries
            # (and perturbs distances everywhere), so carried duals no
            # longer describe the next sub-problems — drop them.
            self._warm_state = None
            if self.shard_executor is not None:
                self.shard_executor.invalidate_warm()
        state = self.state
        pool_workers = state.num_online_workers
        pool_tasks = state.num_open_tasks
        assigned = 0
        elapsed = 0.0
        prepare_seconds = solve_seconds = merge_seconds = 0.0
        solver_stats: tuple[int, int, int] | None = None
        if pool_workers and pool_tasks:
            started = time.perf_counter()
            if self.shard_executor is not None:
                execution = self.shard_executor.run_round(
                    state, self.assigner, fire_time, pipeline=self.pipeline,
                    round_index=len(self._result.rounds),
                )
                assignment, waits = execution.assignment, execution.waits
                prepare_seconds = execution.prepare_seconds
                solve_seconds = execution.solve_seconds
                merge_seconds = execution.merge_seconds
                if execution.warmed:
                    solver_stats = (
                        execution.solve_augmentations,
                        execution.warm_seeded,
                        execution.warm_matched,
                    )
            else:
                # The unsharded composition of run_assignment, phase-timed.
                prepare_start_ns = time.time_ns()
                prepared = state.prepare_round(fire_time)
                prepare_seconds = time.perf_counter() - started
                solve_start_ns = time.time_ns()
                if self.warm and isinstance(
                    self.assigner, LexicographicCostAssigner
                ):
                    assignment, matching = self.assigner.assign_warm(
                        prepared, self._warm_state
                    )
                    self._warm_state = matching.warm
                    solver_stats = (
                        matching.augmentations,
                        matching.seeded,
                        int(matching.rows.size),
                    )
                else:
                    assignment = self.assigner.assign(prepared)
                solve_seconds = time.perf_counter() - started - prepare_seconds
                merge_started = time.perf_counter()
                merge_start_ns = time.time_ns()
                waits = state.retire_pairs(assignment, fire_time)
                merge_seconds = time.perf_counter() - merge_started
                if tracer.enabled:
                    phase_args = {"round": round_index}
                    solve_args = phase_args
                    if solver_stats is not None:
                        solve_args = {
                            "round": round_index,
                            "augmentations": solver_stats[0],
                            "warm_seeded": solver_stats[1],
                        }
                    tracer.complete(
                        "round.prepare", prepare_start_ns, solve_start_ns,
                        cat="stream", args=phase_args,
                    )
                    tracer.complete(
                        "round.solve", solve_start_ns, merge_start_ns,
                        cat="stream", args=solve_args,
                    )
                    tracer.complete(
                        "round.merge", merge_start_ns, time.time_ns(),
                        cat="stream",
                        args={"round": round_index, "pairs": len(assignment)},
                    )
            elapsed = time.perf_counter() - started
            for pair, (task_wait, worker_wait) in zip(assignment, waits):
                self._result.assignment.add(pair.task, pair.worker)
                self._result.metrics.on_assigned(task_wait, worker_wait)
            assigned = len(assignment)
        self._last_solver_stats = solver_stats
        repacks = 0
        if self.shard_executor is not None:
            # Latency-driven repacking fires at deterministic round-index
            # boundaries, after this round's EWMA observation and before
            # the next round's bucketing — never on wall-clock.
            repacks = self.shard_executor.maybe_repack(len(self._result.rounds))
        deferred = shed = 0
        if self.admission is not None:
            deferred, shed = self.admission.take_round_counts()
        record = RoundRecord(
            index=len(self._result.rounds),
            time=fire_time,
            online_workers=pool_workers,
            open_tasks=pool_tasks,
            drained_events=drained,
            assigned=assigned,
            expired_tasks=expired,
            churned_workers=churned,
            cancelled_tasks=cancelled,
            round_seconds=elapsed,
            relocated_workers=relocated,
            deferred_tasks=deferred,
            shed_tasks=shed,
            drain_seconds=drain_seconds,
            prepare_seconds=prepare_seconds,
            solve_seconds=solve_seconds,
            merge_seconds=merge_seconds,
            repacks=repacks,
        )
        self._result.metrics.on_round(record)
        self.trigger.on_round(record)
        if self.admission is not None:
            self.admission.on_round(record)
        self._clock = fire_time
        self._pending_start_round = False
        if fire_time >= self._end_time:
            self._done = True
        if tracer.enabled:
            tracer.complete(
                "round", round_start_ns, time.time_ns(), cat="stream",
                args={
                    "round": record.index,
                    "time": record.time,
                    "online_workers": record.online_workers,
                    "open_tasks": record.open_tasks,
                    "assigned": record.assigned,
                },
            )
        if self.obs.enabled:
            self._observe_round(record)
        return record

    def _observe_round(self, record: RoundRecord) -> None:
        """Fold one finished round into the registry + instant events.

        Pure observation: everything recorded here is read off the
        :class:`RoundRecord` the runtime already built, so enabling
        telemetry cannot perturb results.
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            if record.deferred_tasks or record.shed_tasks:
                tracer.instant(
                    "admission.diverted", cat="admission",
                    args={
                        "round": record.index,
                        "deferred": record.deferred_tasks,
                        "shed": record.shed_tasks,
                        "overloaded": bool(
                            self.admission is not None
                            and self.admission.overloaded
                        ),
                    },
                )
            if record.repacks:
                decision = (
                    self.shard_executor.rebalancer.last_decision
                    if self.shard_executor is not None
                    and self.shard_executor.rebalancer is not None
                    else None
                )
                tracer.instant(
                    "shards.repack", cat="shard",
                    args=decision or {"round": record.index},
                )
        registry = self.obs.registry
        if not registry.enabled:
            return
        if self._instruments is None:
            self._instruments = {
                "rounds": registry.counter(
                    "repro_stream_rounds_total", "Assignment rounds fired."
                ),
                "events": registry.counter(
                    "repro_stream_events_drained_total",
                    "Event-log entries drained into rounds.",
                ),
                "assigned": registry.counter(
                    "repro_stream_assigned_total",
                    "Task-worker pairs assigned.",
                ),
                "expired": registry.counter(
                    "repro_stream_expired_tasks_total",
                    "Tasks that expired unassigned.",
                ),
                "churned": registry.counter(
                    "repro_stream_churned_workers_total",
                    "Workers that left unassigned.",
                ),
                "deferred": registry.counter(
                    "repro_stream_deferred_tasks_total",
                    "Task admissions deferred by the admission controller.",
                ),
                "shed": registry.counter(
                    "repro_stream_shed_tasks_total",
                    "Task admissions shed by the admission controller.",
                ),
                "repacks": registry.counter(
                    "repro_stream_repacks_total",
                    "Shard-layout repacks applied at round boundaries.",
                ),
                "augmentations": registry.counter(
                    "repro_stream_solve_augmentations",
                    "Augmenting paths run by warm-capable round solves.",
                ),
                "warm_hit": registry.gauge(
                    "repro_stream_warm_hit",
                    "Fraction of the last warm round's matches carried over "
                    "intact from the previous round's warm state.",
                ),
                "workers": registry.gauge(
                    "repro_stream_online_workers",
                    "Online workers at the last round's start.",
                ),
                "tasks": registry.gauge(
                    "repro_stream_open_tasks",
                    "Open tasks at the last round's start.",
                ),
                "round_seconds": registry.histogram(
                    "repro_stream_round_seconds",
                    "Wall-clock cost of the assignment computation per round.",
                    **SECONDS_HISTOGRAM,
                ),
                "phase_seconds": registry.histogram(
                    "repro_stream_phase_seconds",
                    "Per-round phase spans (cumulative across shards).",
                    labels=("phase",),
                    **SECONDS_HISTOGRAM,
                ),
            }
        instruments = self._instruments
        instruments["rounds"].inc()
        instruments["events"].inc(record.drained_events)
        instruments["assigned"].inc(record.assigned)
        instruments["expired"].inc(record.expired_tasks)
        instruments["churned"].inc(record.churned_workers)
        instruments["deferred"].inc(record.deferred_tasks)
        instruments["shed"].inc(record.shed_tasks)
        instruments["repacks"].inc(record.repacks)
        instruments["workers"].set(record.online_workers)
        instruments["tasks"].set(record.open_tasks)
        instruments["round_seconds"].record(record.round_seconds)
        stats = self._last_solver_stats
        if stats is not None:
            augmentations, seeded, matched = stats
            instruments["augmentations"].inc(augmentations)
            instruments["warm_hit"].set(seeded / max(matched, 1))
        phases = instruments["phase_seconds"]
        for phase in ("drain", "prepare", "solve", "merge"):
            phases.labels(phase).record(getattr(record, f"{phase}_seconds"))

    # ------------------------------------------------------------------- run
    def run(self, max_rounds: int | None = None) -> StreamResult:
        """Play the stream until done (or for ``max_rounds`` more rounds).

        Repeated calls continue where the previous one stopped; once the
        stream is exhausted the accumulated result is simply returned.
        """
        if max_rounds is not None and max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        self._start()
        started = time.perf_counter()
        fired = 0
        try:
            while not self._done and (max_rounds is None or fired < max_rounds):
                self._fire_round(self._next_fire_time())
                fired += 1
        finally:
            self._result.metrics.add_wall_seconds(time.perf_counter() - started)
        return self._result

    def close(self) -> None:
        """Release executor resources (worker pools, shared memory); the
        runtime stays resumable — a later ``run`` simply recreates them.
        Idempotent, including after a worker crash broke the process pool:
        closing twice (or a runtime that never ran) is a no-op and never
        hangs."""
        if self.shard_executor is not None:
            self.shard_executor.close()

    def __enter__(self) -> "StreamRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------- checkpoints
    def checkpoint(self, path: str | Path) -> Path:
        """Snapshot the complete runtime state to a chunked v6 checkpoint.

        Atomic (a crash mid-save leaves any previous checkpoint intact)
        and incremental (successive snapshots share unchanged chunks
        through the ``repro-chunks`` store), so calling this every few
        rounds is cheap.  Returns the canonical manifest path.
        """
        from repro.stream.checkpoint import save_checkpoint

        return save_checkpoint(self, path)

    @classmethod
    def resume(
        cls,
        path: str | Path,
        assigner: Assigner,
        influence_model: InfluenceModel | None,
        trigger: Trigger,
        base_instance: SCInstance,
        log: EventLog,
        patience_hours: float | None = None,
        incremental: bool = True,
        index_cell_km: float = 25.0,
        rng: np.random.Generator | None = None,
        shards: int | None = None,
        executor: str = "serial",
        shard_cell_km: float | None = None,
        admission: AdmissionController | None = None,
        pipeline: bool = False,
        rebalance: ShardRebalancer | None = None,
        obs: Observability | None = None,
        warm: bool = False,
    ) -> "StreamRuntime":
        """Reconstruct a runtime from a checkpoint and the original log.

        The caller supplies the same (deterministic) collaborators the
        checkpointed run used; the snapshot restores cursor, clock, pools,
        accumulated results, trigger adaptation state, admission-control
        state (overload flag + deferred backlog), shard layout and RNG
        state (runtime-level and per-shard), after verifying the log
        fingerprint — and, for sharded runs, the replanned layout —
        matches.  Pipeline/rebalance configuration must match the
        checkpointed run too; with rebalancing, the saved (possibly
        repacked) layout and EWMA state are adopted so repack decisions
        replay exactly.
        """
        from repro.stream.checkpoint import restore_runtime

        runtime = cls(
            assigner,
            influence_model,
            trigger,
            base_instance,
            log,
            patience_hours=patience_hours,
            incremental=incremental,
            index_cell_km=index_cell_km,
            rng=rng,
            shards=shards,
            executor=executor,
            shard_cell_km=shard_cell_km,
            admission=admission,
            pipeline=pipeline,
            rebalance=rebalance,
            obs=obs,
            warm=warm,
        )
        restore_runtime(runtime, path)
        return runtime
