"""Forward Independent Cascade simulation and Monte-Carlo estimators.

The IC model (paper Section III-C1): the seed worker informs each neighbor
independently; newly informed workers get exactly one chance to inform their
own neighbors; the process stops when no new worker is informed.  The arc
probability into ``v`` is ``1 / indeg(v)``.

These simulators are the *ground truth* against which the RRR/RPO machinery
is validated (Lemma 2 equates the two estimators in expectation).  They run
frontier-batched over the out-adjacency — all Monte-Carlo repetitions advance
simultaneously through :func:`~repro.propagation.rrr.batched_cascade` — so
the estimators stay practical for the validation sizes despite needing many
runs.
"""

from __future__ import annotations

import numpy as np

from repro.propagation.graph import SocialGraph
from repro.propagation.rrr import batched_cascade


def simulate_ic_batched(
    graph: SocialGraph, seed_indices: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Run one IC cascade per entry of ``seed_indices``, all at once.

    Returns ``(indptr, flat)``: cascade ``j`` informed the sorted dense
    indices ``flat[indptr[j]:indptr[j+1]]`` (always including its seed).
    """
    seeds = np.asarray(seed_indices, dtype=np.int64)
    out_indptr, out_flat, out_probs = graph.out_csr()
    return batched_cascade(
        out_indptr, out_flat, out_probs, graph.num_workers, seeds, rng
    )


def simulate_ic(graph: SocialGraph, seed_index: int, rng: np.random.Generator) -> np.ndarray:
    """Run one IC cascade from ``seed_index``.

    Returns the dense indices of all informed workers (including the seed).
    """
    _, flat = simulate_ic_batched(graph, np.array([seed_index]), rng)
    return flat


def estimate_spread(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the expected cascade size from one seed."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    seeds = np.full(runs, seed_index, dtype=np.int64)
    indptr, _ = simulate_ic_batched(graph, seeds, rng)
    return float(indptr[-1]) / runs


def estimate_informed_probabilities(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> np.ndarray:
    """Monte-Carlo estimate of ``P[w informed | cascade from seed]`` per worker.

    Returns a length-``|W|`` vector; entry ``seed_index`` is 1.0 by
    construction.  This is the quantity the RRR estimator approximates
    (Lemma 2), so tests compare the two on small graphs.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    seeds = np.full(runs, seed_index, dtype=np.int64)
    _, flat = simulate_ic_batched(graph, seeds, rng)
    counts = np.bincount(flat, minlength=graph.num_workers).astype(float)
    return counts / runs
