"""Forward Independent Cascade simulation and Monte-Carlo estimators.

The IC model (paper Section III-C1): the seed worker informs each neighbor
independently; newly informed workers get exactly one chance to inform their
own neighbors; the process stops when no new worker is informed.  The arc
probability into ``v`` is ``1 / indeg(v)``.

These simulators are the *ground truth* against which the RRR/RPO machinery
is validated (Lemma 2 equates the two estimators in expectation); they are
exponential-free but need many runs, hence only practical on small graphs.
"""

from __future__ import annotations

import numpy as np

from repro.propagation.graph import SocialGraph


def simulate_ic(graph: SocialGraph, seed_index: int, rng: np.random.Generator) -> np.ndarray:
    """Run one IC cascade from ``seed_index``.

    Returns the dense indices of all informed workers (including the seed).
    """
    informed = np.zeros(graph.num_workers, dtype=bool)
    informed[seed_index] = True
    frontier = [seed_index]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            neighbors = graph.out_neighbors(node)
            if len(neighbors) == 0:
                continue
            probs = graph.out_arc_probs(node)
            hits = neighbors[rng.random(len(neighbors)) < probs]
            for target in hits:
                if not informed[target]:
                    informed[target] = True
                    next_frontier.append(int(target))
        frontier = next_frontier
    return np.nonzero(informed)[0]


def estimate_spread(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the expected cascade size from one seed."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(runs):
        total += len(simulate_ic(graph, seed_index, rng))
    return total / runs


def estimate_informed_probabilities(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> np.ndarray:
    """Monte-Carlo estimate of ``P[w informed | cascade from seed]`` per worker.

    Returns a length-``|W|`` vector; entry ``seed_index`` is 1.0 by
    construction.  This is the quantity the RRR estimator approximates
    (Lemma 2), so tests compare the two on small graphs.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    counts = np.zeros(graph.num_workers)
    for _ in range(runs):
        informed = simulate_ic(graph, seed_index, rng)
        counts[informed] += 1.0
    return counts / runs
