"""The Linear Threshold (LT) propagation model (extension).

The paper simulates task-information spread with Independent Cascade; the
influence-maximization literature it builds on ([28] Kempe et al., [31] Tang
et al.) treats Linear Threshold as the other canonical diffusion model, so
the library ships it as a drop-in alternative for sensitivity studies.

Model
-----
Every worker ``v`` draws a private threshold ``theta_v ~ U[0, 1]``.  Each
in-arc ``(u -> v)`` carries weight ``1 / indeg(v)`` — the same in-degree
normalization the paper uses for IC probabilities, and the classical LT
weighting with ``sum_u b(u, v) <= 1``.  A worker becomes informed once the
total weight of informed in-neighbors reaches the threshold.

Reverse-reachability sampling under LT picks, for each visited node, exactly
**one** uniformly random in-neighbor (the standard RIS construction: with
weights summing to 1, the live-edge graph of LT keeps a single in-arc per
node).  This makes LT RRR sets paths rather than trees.

Both directions run frontier-batched: forward diffusion advances every
Monte-Carlo run at once with sorted-key accumulators for the per-(run, node)
incoming weight, and reverse sampling advances every walk at once with one
vectorized categorical draw per level — matching the flat-CSR engine in
:mod:`repro.propagation.rrr`.
"""

from __future__ import annotations

import numpy as np

from repro.propagation.graph import SocialGraph
from repro.propagation.rrr import RRRCollection, merge_sorted, not_in_sorted

_EMPTY_INT = np.zeros(0, dtype=np.int64)


def simulate_lt_batched(
    graph: SocialGraph, seed_indices: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Run one LT diffusion per entry of ``seed_indices``, all at once.

    Thresholds are drawn lazily, the first time a (run, node) pair receives
    incoming weight — distributionally identical to drawing them upfront and
    much cheaper than materializing a ``runs x |W|`` matrix.  Returns
    ``(indptr, flat)``: run ``j`` informed the sorted dense indices
    ``flat[indptr[j]:indptr[j+1]]`` (always including its seed).
    """
    seeds = np.asarray(seed_indices, dtype=np.int64)
    count = len(seeds)
    if count == 0:
        return np.zeros(1, dtype=np.int64), _EMPTY_INT
    n = graph.num_workers
    out_indptr, out_flat, out_probs = graph.out_csr()

    informed = np.arange(count, dtype=np.int64) * n + seeds
    frontier_runs = np.arange(count, dtype=np.int64)
    frontier_nodes = seeds
    # Sorted accumulator over touched-but-uninformed (run, node) keys.
    acc_keys = _EMPTY_INT
    acc_weight = np.zeros(0)
    acc_threshold = np.zeros(0)

    while frontier_nodes.size:
        starts = out_indptr[frontier_nodes]
        lengths = out_indptr[frontier_nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        offsets = np.cumsum(lengths) - lengths
        arc_pos = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        keys = np.repeat(frontier_runs, lengths) * n + out_flat[arc_pos]
        weights = out_probs[arc_pos]

        # Informed targets absorb no further weight.
        keep = not_in_sorted(informed, keys)
        keys, weights = keys[keep], weights[keep]
        if keys.size == 0:
            break
        # Sum same-key contributions of this level.
        order = np.argsort(keys)
        keys, weights = keys[order], weights[order]
        boundary = np.concatenate(([True], keys[1:] != keys[:-1]))
        unique_keys = keys[boundary]
        sums = np.add.reduceat(weights, np.nonzero(boundary)[0])

        # Fold into the accumulator; unseen keys draw their threshold now.
        new_mask = not_in_sorted(acc_keys, unique_keys)
        existing = np.searchsorted(acc_keys, unique_keys[~new_mask])
        acc_weight[existing] += sums[~new_mask]
        insert_at = np.searchsorted(acc_keys, unique_keys[new_mask])
        acc_keys = np.insert(acc_keys, insert_at, unique_keys[new_mask])
        acc_weight = np.insert(acc_weight, insert_at, sums[new_mask])
        acc_threshold = np.insert(
            acc_threshold, insert_at, rng.random(int(new_mask.sum()))
        )

        # Only keys touched this level can newly cross their threshold.
        touched = np.searchsorted(acc_keys, unique_keys)
        crossed = acc_weight[touched] >= acc_threshold[touched]
        newly = unique_keys[crossed]
        if newly.size == 0:
            break
        retain = np.ones(len(acc_keys), dtype=bool)
        retain[touched[crossed]] = False
        acc_keys, acc_weight, acc_threshold = (
            acc_keys[retain], acc_weight[retain], acc_threshold[retain]
        )
        informed = merge_sorted(informed, newly)
        frontier_runs = newly // n
        frontier_nodes = newly % n

    run_ids = informed // n
    flat = informed % n
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(run_ids, minlength=count), out=indptr[1:])
    return indptr, flat


def simulate_lt(graph: SocialGraph, seed_index: int, rng: np.random.Generator) -> np.ndarray:
    """Run one LT diffusion from ``seed_index``.

    Thresholds are drawn fresh per call.  Returns the dense indices of all
    informed workers (including the seed), sorted.
    """
    _, flat = simulate_lt_batched(graph, np.array([seed_index]), rng)
    return flat


def estimate_spread_lt(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the expected LT cascade size from one seed."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    seeds = np.full(runs, seed_index, dtype=np.int64)
    indptr, _ = simulate_lt_batched(graph, seeds, rng)
    return float(indptr[-1]) / runs


def sample_lt_rrr_sets_batched(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``count`` LT reverse-reachable walks, all advanced at once.

    In the live-edge view of LT each node keeps at most one in-arc: arc
    ``(u -> v)`` with probability ``b(u, v)`` and none with probability
    ``1 - sum_u b(u, v)``.  Each level draws one uniform per active walk and
    selects the in-neighbor whose cumulative-weight interval contains it —
    a batched categorical draw over the concatenated in-arc slices.  A walk
    stops at sources, on the "no live in-arc" outcome, or when it revisits a
    node.

    Returns ``(roots, indptr, flat)`` in the flat-CSR layout of
    :meth:`~repro.propagation.rrr.RRRCollection.extend_flat`.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    n = graph.num_workers
    roots = rng.integers(n, size=count).astype(np.int64)
    if count == 0:
        return roots, np.zeros(1, dtype=np.int64), _EMPTY_INT
    in_indptr, in_flat, in_probs = graph.in_csr()

    visited = np.arange(count, dtype=np.int64) * n + roots
    walk_sets = np.arange(count, dtype=np.int64)
    walk_nodes = roots

    while walk_nodes.size:
        starts = in_indptr[walk_nodes]
        lengths = in_indptr[walk_nodes + 1] - starts
        active = lengths > 0  # walks at sources stop
        walk_sets, walk_nodes = walk_sets[active], walk_nodes[active]
        starts, lengths = starts[active], lengths[active]
        if walk_nodes.size == 0:
            break
        total = int(lengths.sum())
        offsets = np.cumsum(lengths) - lengths
        arc_pos = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        cumulative = np.cumsum(in_probs[arc_pos])
        base = np.concatenate(([0.0], cumulative))[offsets]
        segment_cum = cumulative - np.repeat(base, lengths)
        draws = np.repeat(rng.random(len(walk_nodes)), lengths)
        # Within each slice the chosen position is the first with cumulative
        # weight beyond the draw; counting the positions at or below the draw
        # reproduces searchsorted(..., side="right") per segment.
        above = (segment_cum > draws).astype(np.int64)
        position = lengths - np.add.reduceat(above, offsets)
        chosen = position < lengths  # otherwise: the "no live in-arc" outcome
        next_nodes = in_flat[(starts + position)[chosen]]
        keys = walk_sets[chosen] * n + next_nodes
        # One key per walk and walk ids ascending => keys already sorted.
        fresh = keys[not_in_sorted(visited, keys)]  # revisits end their walk
        if fresh.size == 0:
            break
        visited = merge_sorted(visited, fresh)
        walk_sets = fresh // n
        walk_nodes = fresh % n

    set_ids = visited // n
    flat = visited % n
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(set_ids, minlength=count), out=indptr[1:])
    return roots, indptr, flat


def sample_lt_rrr_sets(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sample ``count`` LT reverse-reachable sets with uniform random roots.

    Returns ``(roots, members)`` with each member array sorted, the same
    contract as :func:`repro.propagation.rrr.sample_rrr_sets`, so the
    resulting sets load into an :class:`RRRCollection` unchanged.
    """
    roots, indptr, flat = sample_lt_rrr_sets_batched(graph, count, rng)
    members = [flat[indptr[j]: indptr[j + 1]] for j in range(count)]
    return roots, members


def lt_collection(graph: SocialGraph, count: int, seed: int = 0) -> RRRCollection:
    """Convenience: an :class:`RRRCollection` of ``count`` LT RRR sets."""
    rng = np.random.default_rng(seed)
    collection = RRRCollection(num_workers=graph.num_workers)
    roots, indptr, flat = sample_lt_rrr_sets_batched(graph, count, rng)
    collection.extend_flat(roots, indptr, flat)
    return collection
