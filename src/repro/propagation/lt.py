"""The Linear Threshold (LT) propagation model (extension).

The paper simulates task-information spread with Independent Cascade; the
influence-maximization literature it builds on ([28] Kempe et al., [31] Tang
et al.) treats Linear Threshold as the other canonical diffusion model, so
the library ships it as a drop-in alternative for sensitivity studies.

Model
-----
Every worker ``v`` draws a private threshold ``theta_v ~ U[0, 1]``.  Each
in-arc ``(u -> v)`` carries weight ``1 / indeg(v)`` — the same in-degree
normalization the paper uses for IC probabilities, and the classical LT
weighting with ``sum_u b(u, v) <= 1``.  A worker becomes informed once the
total weight of informed in-neighbors reaches the threshold.

Reverse-reachability sampling under LT picks, for each visited node, exactly
**one** uniformly random in-neighbor (the standard RIS construction: with
weights summing to 1, the live-edge graph of LT keeps a single in-arc per
node).  This makes LT RRR sets paths rather than trees.
"""

from __future__ import annotations

import numpy as np

from repro.propagation.graph import SocialGraph
from repro.propagation.rrr import RRRCollection


def simulate_lt(graph: SocialGraph, seed_index: int, rng: np.random.Generator) -> np.ndarray:
    """Run one LT diffusion from ``seed_index``.

    Thresholds are drawn fresh per call.  Returns the dense indices of all
    informed workers (including the seed), sorted.
    """
    n = graph.num_workers
    thresholds = rng.random(n)
    incoming_weight = np.zeros(n)
    informed = np.zeros(n, dtype=bool)
    informed[seed_index] = True
    frontier = [seed_index]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            weights = graph.out_arc_probs(node)
            for target, weight in zip(graph.out_neighbors(node), weights):
                target = int(target)
                if informed[target]:
                    continue
                incoming_weight[target] += float(weight)
                if incoming_weight[target] >= thresholds[target]:
                    informed[target] = True
                    next_frontier.append(target)
        frontier = next_frontier
    return np.nonzero(informed)[0]


def estimate_spread_lt(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the expected LT cascade size from one seed."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(runs):
        total += len(simulate_lt(graph, seed_index, rng))
    return total / runs


def _sample_one_lt(graph: SocialGraph, root: int, rng: np.random.Generator) -> np.ndarray:
    """One LT reverse-reachable set: a random in-neighbor walk from ``root``.

    In the live-edge view of LT each node keeps at most one in-arc: arc
    ``(u -> v)`` with probability ``b(u, v)`` and none with probability
    ``1 - sum_u b(u, v)``.  Under the paper's in-degree weights the sum is
    exactly 1, so the walk always continues until it revisits a node or
    reaches a source; under trivalency/uniform weights it may stop early.
    """
    visited = {root}
    node = root
    while True:
        in_neighbors = graph.in_neighbors(node)
        if len(in_neighbors) == 0:
            break
        weights = graph.in_arc_probs(node)
        draw = rng.random()
        cumulative = np.cumsum(weights)
        position = int(np.searchsorted(cumulative, draw, side="right"))
        if position >= len(in_neighbors):
            break  # the "no live in-arc" outcome
        node = int(in_neighbors[position])
        if node in visited:
            break
        visited.add(node)
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


def sample_lt_rrr_sets(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sample ``count`` LT reverse-reachable sets with uniform random roots.

    Returns ``(roots, members)`` with each member array sorted, the same
    contract as :func:`repro.propagation.rrr.sample_rrr_sets`, so the
    resulting sets load into an :class:`RRRCollection` unchanged.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    roots = rng.integers(graph.num_workers, size=count)
    members = [np.sort(_sample_one_lt(graph, int(root), rng)) for root in roots]
    return roots.astype(np.int64), members


def lt_collection(graph: SocialGraph, count: int, seed: int = 0) -> RRRCollection:
    """Convenience: an :class:`RRRCollection` of ``count`` LT RRR sets."""
    rng = np.random.default_rng(seed)
    collection = RRRCollection(num_workers=graph.num_workers)
    roots, members = sample_lt_rrr_sets(graph, count, rng)
    collection.extend(roots, members)
    return collection
