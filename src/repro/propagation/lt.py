"""The Linear Threshold (LT) propagation model (extension).

The paper simulates task-information spread with Independent Cascade; the
influence-maximization literature it builds on ([28] Kempe et al., [31] Tang
et al.) treats Linear Threshold as the other canonical diffusion model, so
the library ships it as a drop-in alternative for sensitivity studies.

Model
-----
Every worker ``v`` draws a private threshold ``theta_v ~ U[0, 1]``.  Each
in-arc ``(u -> v)`` carries weight ``1 / indeg(v)`` — the same in-degree
normalization the paper uses for IC probabilities, and the classical LT
weighting with ``sum_u b(u, v) <= 1``.  A worker becomes informed once the
total weight of informed in-neighbors reaches the threshold.

Reverse-reachability sampling under LT picks, for each visited node, exactly
**one** uniformly random in-neighbor (the standard RIS construction: with
weights summing to 1, the live-edge graph of LT keeps a single in-arc per
node).  This makes LT RRR sets paths rather than trees.

Both directions run frontier-batched: forward diffusion advances every
Monte-Carlo run at once, accumulating per-(run, node) incoming weight in
dense direct-indexed slabs when the key space fits
(:data:`LT_SLAB_LIMIT`, the analogue of the IC engine's stamp bitmap) and
in a sorted ping-pong merge accumulator beyond it; reverse sampling
advances every walk at once with one vectorized categorical draw per
level — matching the flat-CSR engine in :mod:`repro.propagation.rrr`.
"""

from __future__ import annotations

import numpy as np

from repro.propagation.graph import SocialGraph
from repro.propagation.rrr import RRRCollection, merge_sorted, not_in_sorted

_EMPTY_INT = np.zeros(0, dtype=np.int64)

#: Largest ``runs x nodes`` key space served by the dense O(1)-lookup
#: weight/threshold slabs (4M cells ≈ 70 MB across the three arrays);
#: beyond it the sorted ping-pong merge accumulator keeps memory
#: proportional to the touched set.  Both paths are bit-identical,
#: including every RNG draw — the LT analogue of
#: :data:`repro.propagation.rrr.STAMP_ARRAY_LIMIT`.
LT_SLAB_LIMIT = 1 << 22


class _ThresholdAccumulator:
    """Sorted ``(run, node) -> (weight, threshold)`` map for batched LT.

    Keeps the touched keys of every pending run in sorted order across
    levels.  Insertions run as one vectorized two-pointer merge between a
    pair of preallocated ping-pong buffers (scatter by ``searchsorted``
    rank) instead of the per-level ``np.insert`` rebuilds this replaced.
    Keys that cross their threshold are *not* removed: once a (run, node)
    pair is informed, the caller's ``not_in_sorted(informed, ...)`` filter
    guarantees it is never touched again, so tolerating dead entries
    trades a little ``searchsorted`` width for eliminating the second
    full-buffer compaction rewrite every level.  The arithmetic and the
    RNG draw order are exactly those of the insert-based version, so
    results stay bit-identical.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._keys = [np.empty(capacity, dtype=np.int64) for _ in range(2)]
        self._weight = [np.empty(capacity) for _ in range(2)]
        self._threshold = [np.empty(capacity) for _ in range(2)]
        self._active = 0
        self._size = 0

    def _spare(self, needed: int) -> int:
        spare = 1 - self._active
        if len(self._keys[spare]) < needed:
            capacity = max(needed, 2 * len(self._keys[spare]))
            self._keys[spare] = np.empty(capacity, dtype=np.int64)
            self._weight[spare] = np.empty(capacity)
            self._threshold[spare] = np.empty(capacity)
        return spare

    def fold(
        self, unique_keys: np.ndarray, sums: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Fold one level's per-key weight sums in; return crossed keys.

        Existing keys accumulate weight; unseen keys draw their threshold
        now (one ``rng.random`` call, in key order) and merge in; the
        (sorted) keys whose accumulated weight reached the threshold this
        level are returned.
        """
        keys = self._keys[self._active][: self._size]
        weight = self._weight[self._active][: self._size]
        new_mask = not_in_sorted(keys, unique_keys)
        existing = np.searchsorted(keys, unique_keys[~new_mask])
        weight[existing] += sums[~new_mask]

        new_keys = unique_keys[new_mask]
        if new_keys.size:
            size = self._size
            threshold = self._threshold[self._active][:size]
            spare = self._spare(size + new_keys.size)
            # Two-pointer merge positions, computed vectorized: each side's
            # destination rank is its own rank plus its rank in the other.
            old_target = np.arange(size, dtype=np.int64) + np.searchsorted(
                new_keys, keys
            )
            new_target = np.searchsorted(keys, new_keys) + np.arange(
                new_keys.size, dtype=np.int64
            )
            draws = rng.random(new_keys.size)
            for buffers, old_values, new_values in (
                (self._keys, keys, new_keys),
                (self._weight, weight, sums[new_mask]),
                (self._threshold, threshold, draws),
            ):
                destination = buffers[spare]
                destination[old_target] = old_values
                destination[new_target] = new_values
            self._active = spare
            self._size = size + new_keys.size
            keys = self._keys[self._active][: self._size]
            weight = self._weight[self._active][: self._size]

        threshold = self._threshold[self._active][: self._size]
        touched = np.searchsorted(keys, unique_keys)
        crossed = weight[touched] >= threshold[touched]
        return unique_keys[crossed]


def simulate_lt_batched(
    graph: SocialGraph, seed_indices: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Run one LT diffusion per entry of ``seed_indices``, all at once.

    Thresholds are drawn lazily, the first time a (run, node) pair receives
    incoming weight — distributionally identical to drawing them upfront and
    much cheaper than materializing a ``runs x |W|`` matrix.  Returns
    ``(indptr, flat)``: run ``j`` informed the sorted dense indices
    ``flat[indptr[j]:indptr[j+1]]`` (always including its seed).
    """
    seeds = np.asarray(seed_indices, dtype=np.int64)
    count = len(seeds)
    if count == 0:
        return np.zeros(1, dtype=np.int64), _EMPTY_INT
    n = graph.num_workers
    out_indptr, out_flat, out_probs = graph.out_csr()

    informed = np.arange(count, dtype=np.int64) * n + seeds
    frontier_runs = np.arange(count, dtype=np.int64)
    frontier_nodes = seeds
    # Accumulated weight + lazily drawn threshold per touched (run, node)
    # key: dense direct-indexed slabs when the key space fits, else a
    # sorted merge accumulator (bit-identical either way).
    use_slab = count * n <= LT_SLAB_LIMIT
    if use_slab:
        weight_slab = np.zeros(count * n)
        threshold_slab = np.empty(count * n)
        touched_slab = np.zeros(count * n, dtype=bool)
    else:
        accumulator = _ThresholdAccumulator()

    while frontier_nodes.size:
        starts = out_indptr[frontier_nodes]
        lengths = out_indptr[frontier_nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        offsets = np.cumsum(lengths) - lengths
        arc_pos = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        keys = np.repeat(frontier_runs, lengths) * n + out_flat[arc_pos]
        weights = out_probs[arc_pos]

        # Informed targets absorb no further weight.
        keep = not_in_sorted(informed, keys)
        keys, weights = keys[keep], weights[keep]
        if keys.size == 0:
            break
        # Sum same-key contributions of this level.
        order = np.argsort(keys)
        keys, weights = keys[order], weights[order]
        boundary = np.concatenate(([True], keys[1:] != keys[:-1]))
        unique_keys = keys[boundary]
        sums = np.add.reduceat(weights, np.nonzero(boundary)[0])

        # Fold into the accumulator; unseen keys draw their threshold now,
        # and only keys touched this level can newly cross it.
        if use_slab:
            new_mask = ~touched_slab[unique_keys]
            new_keys = unique_keys[new_mask]
            weight_slab[unique_keys[~new_mask]] += sums[~new_mask]
            weight_slab[new_keys] = sums[new_mask]
            threshold_slab[new_keys] = rng.random(new_keys.size)
            touched_slab[new_keys] = True
            crossed = (
                weight_slab[unique_keys] >= threshold_slab[unique_keys]
            )
            newly = unique_keys[crossed]
        else:
            newly = accumulator.fold(unique_keys, sums, rng)
        if newly.size == 0:
            break
        informed = merge_sorted(informed, newly)
        frontier_runs = newly // n
        frontier_nodes = newly % n

    run_ids = informed // n
    flat = informed % n
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(run_ids, minlength=count), out=indptr[1:])
    return indptr, flat


def simulate_lt(graph: SocialGraph, seed_index: int, rng: np.random.Generator) -> np.ndarray:
    """Run one LT diffusion from ``seed_index``.

    Thresholds are drawn fresh per call.  Returns the dense indices of all
    informed workers (including the seed), sorted.
    """
    _, flat = simulate_lt_batched(graph, np.array([seed_index]), rng)
    return flat


def estimate_spread_lt(
    graph: SocialGraph, seed_index: int, runs: int = 1000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the expected LT cascade size from one seed."""
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    rng = np.random.default_rng(seed)
    seeds = np.full(runs, seed_index, dtype=np.int64)
    indptr, _ = simulate_lt_batched(graph, seeds, rng)
    return float(indptr[-1]) / runs


def sample_lt_rrr_sets_batched(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``count`` LT reverse-reachable walks, all advanced at once.

    In the live-edge view of LT each node keeps at most one in-arc: arc
    ``(u -> v)`` with probability ``b(u, v)`` and none with probability
    ``1 - sum_u b(u, v)``.  Each level draws one uniform per active walk and
    selects the in-neighbor whose cumulative-weight interval contains it —
    a batched categorical draw over the concatenated in-arc slices.  A walk
    stops at sources, on the "no live in-arc" outcome, or when it revisits a
    node.

    Returns ``(roots, indptr, flat)`` in the flat-CSR layout of
    :meth:`~repro.propagation.rrr.RRRCollection.extend_flat`.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    n = graph.num_workers
    roots = rng.integers(n, size=count).astype(np.int64)
    if count == 0:
        return roots, np.zeros(1, dtype=np.int64), _EMPTY_INT
    in_indptr, in_flat, in_probs = graph.in_csr()

    visited = np.arange(count, dtype=np.int64) * n + roots
    walk_sets = np.arange(count, dtype=np.int64)
    walk_nodes = roots

    while walk_nodes.size:
        starts = in_indptr[walk_nodes]
        lengths = in_indptr[walk_nodes + 1] - starts
        active = lengths > 0  # walks at sources stop
        walk_sets, walk_nodes = walk_sets[active], walk_nodes[active]
        starts, lengths = starts[active], lengths[active]
        if walk_nodes.size == 0:
            break
        total = int(lengths.sum())
        offsets = np.cumsum(lengths) - lengths
        arc_pos = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        cumulative = np.cumsum(in_probs[arc_pos])
        base = np.concatenate(([0.0], cumulative))[offsets]
        segment_cum = cumulative - np.repeat(base, lengths)
        draws = np.repeat(rng.random(len(walk_nodes)), lengths)
        # Within each slice the chosen position is the first with cumulative
        # weight beyond the draw; counting the positions at or below the draw
        # reproduces searchsorted(..., side="right") per segment.
        above = (segment_cum > draws).astype(np.int64)
        position = lengths - np.add.reduceat(above, offsets)
        chosen = position < lengths  # otherwise: the "no live in-arc" outcome
        next_nodes = in_flat[(starts + position)[chosen]]
        keys = walk_sets[chosen] * n + next_nodes
        # One key per walk and walk ids ascending => keys already sorted.
        fresh = keys[not_in_sorted(visited, keys)]  # revisits end their walk
        if fresh.size == 0:
            break
        visited = merge_sorted(visited, fresh)
        walk_sets = fresh // n
        walk_nodes = fresh % n

    set_ids = visited // n
    flat = visited % n
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(set_ids, minlength=count), out=indptr[1:])
    return roots, indptr, flat


def sample_lt_rrr_sets(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sample ``count`` LT reverse-reachable sets with uniform random roots.

    Returns ``(roots, members)`` with each member array sorted, the same
    contract as :func:`repro.propagation.rrr.sample_rrr_sets`, so the
    resulting sets load into an :class:`RRRCollection` unchanged.
    """
    roots, indptr, flat = sample_lt_rrr_sets_batched(graph, count, rng)
    members = [flat[indptr[j]: indptr[j + 1]] for j in range(count)]
    return roots, members


def lt_collection(graph: SocialGraph, count: int, seed: int = 0) -> RRRCollection:
    """Convenience: an :class:`RRRCollection` of ``count`` LT RRR sets."""
    rng = np.random.default_rng(seed)
    collection = RRRCollection(num_workers=graph.num_workers)
    roots, indptr, flat = sample_lt_rrr_sets_batched(graph, count, rng)
    collection.extend_flat(roots, indptr, flat)
    return collection
