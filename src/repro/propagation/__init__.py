"""Worker propagation via Independent Cascade and RRR sets (Section III-C/E).

Components:

* :class:`SocialGraph` — the directed propagation graph (undirected
  friendships become edge pairs) with the paper's in-degree-based edge
  probabilities ``P(u -> v) = 1 / indeg(v)``;
* :mod:`repro.propagation.ic` — forward Independent Cascade simulation and
  Monte-Carlo spread/pairwise estimators (the ground truth used to validate
  the sampling machinery);
* :class:`RRRCollection` / :func:`sample_rrr_sets` — Random Reverse
  Reachable set generation (Definition 5);
* :class:`RPO` — the Random reverse reachable-based Propagation Optimization
  algorithm (Algorithm 1) with the iteration-based bound ``NR(k)`` and the
  threshold-based bound ``N'_R(gamma)`` of Lemmas 4-6.
"""

from repro.propagation.graph import SocialGraph
from repro.propagation.ic import (
    estimate_informed_probabilities,
    estimate_spread,
    simulate_ic,
    simulate_ic_batched,
)
from repro.propagation.lt import (
    estimate_spread_lt,
    lt_collection,
    sample_lt_rrr_sets,
    sample_lt_rrr_sets_batched,
    simulate_lt,
    simulate_lt_batched,
)
from repro.propagation.rrr import (
    RRRCollection,
    batched_cascade,
    sample_rrr_sets,
    sample_rrr_sets_batched,
)
from repro.propagation.rpo import RPO, RPOResult
from repro.propagation.seeding import SeedingResult, select_seeds, spread_of_seeds

__all__ = [
    "SocialGraph",
    "simulate_ic",
    "simulate_ic_batched",
    "estimate_spread",
    "estimate_informed_probabilities",
    "simulate_lt",
    "simulate_lt_batched",
    "estimate_spread_lt",
    "sample_lt_rrr_sets",
    "sample_lt_rrr_sets_batched",
    "lt_collection",
    "RRRCollection",
    "batched_cascade",
    "sample_rrr_sets",
    "sample_rrr_sets_batched",
    "RPO",
    "RPOResult",
    "SeedingResult",
    "select_seeds",
    "spread_of_seeds",
]
