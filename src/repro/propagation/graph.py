"""The directed social propagation graph.

Friendship edges are undirected; information can flow both ways, so each
undirected edge {a, b} becomes the arc pair (a -> b) and (b -> a).  The
paper's propagation probability for an arc into ``v`` is in-degree based:
``P(u -> v) = 1 / indeg(v)`` ([29], [31], [41]).  Because that probability
depends only on the head ``v``, sampling the live in-arcs of ``v`` during
reverse-reachability generation is a single vectorized Bernoulli draw.

Two alternative arc-probability models from the influence-maximization
literature are available as extensions:

* ``("uniform", p)`` — every arc live with the same probability ``p``
  (the weighted-cascade constant model);
* ``"trivalency"`` — each directed arc draws uniformly from
  {0.1, 0.01, 0.001} (Chen et al.'s TRIVALENCY benchmark model).

Adjacency is stored CSR-style (indptr + flat neighbor arrays); because the
undirected doubling makes the in- and out-adjacency structurally identical,
both views share the same arrays.  Construction, per-arc probability
mirroring and the degree histogram are pure ``searchsorted`` / ``np.unique``
index algebra — no Python dict/loop mirroring of the CSR structure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError

#: The trivalency model's arc-probability choices.
TRIVALENCY_VALUES = (0.1, 0.01, 0.001)


class SocialGraph:
    """A directed propagation graph over worker ids.

    Parameters
    ----------
    worker_ids:
        All workers in the network ``W`` (isolated workers allowed).
    edges:
        Undirected friendship pairs (worker ids).  Self-loops are rejected;
        duplicate edges are collapsed.
    edge_probability:
        Arc-probability model: ``"indegree"`` (paper default,
        ``P(u -> v) = 1/indeg(v)``), ``("uniform", p)`` with ``p`` in
        (0, 1], or ``"trivalency"``.
    seed:
        RNG seed for the trivalency draws (ignored by the other models).
    """

    def __init__(
        self,
        worker_ids: Sequence[int],
        edges: Iterable[tuple[int, int]],
        edge_probability: str | tuple[str, float] = "indegree",
        seed: int = 0,
    ) -> None:
        self.worker_ids = tuple(sorted(set(worker_ids)))
        if not self.worker_ids:
            raise GraphError("social graph needs at least one worker")
        self._ids_array = np.asarray(self.worker_ids, dtype=np.int64)
        self._index_of = {w: i for i, w in enumerate(self.worker_ids)}
        n = len(self.worker_ids)

        edge_list = list(edges)
        if edge_list:
            pairs = np.asarray(edge_list, dtype=np.int64).reshape(-1, 2)
            loops = pairs[:, 0] == pairs[:, 1]
            if loops.any():
                raise GraphError(f"self-loop on worker {int(pairs[loops][0, 0])}")
            endpoint_u = self._lookup(pairs[:, 0], pairs)
            endpoint_v = self._lookup(pairs[:, 1], pairs)
            # Collapse duplicate undirected edges via unique canonical keys.
            low = np.minimum(endpoint_u, endpoint_v)
            high = np.maximum(endpoint_u, endpoint_v)
            keys = np.unique(low * n + high)
            low, high = keys // n, keys % n
            src = np.concatenate([low, high])
            dst = np.concatenate([high, low])
            order = np.lexsort((dst, src))
            flat = dst[order]
            degree = np.bincount(src, minlength=n)
        else:
            flat = np.zeros(0, dtype=np.int64)
            degree = np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])

        # Undirected doubling makes in- and out-adjacency identical, so the
        # two CSR views share storage; only per-arc probabilities differ.
        self._out_indptr = self._in_indptr = indptr
        self._out_flat = self._in_flat = flat
        self.in_degree = degree
        # P(u -> v) under the in-degree model: depends only on v.  Kept for
        # the fast head-only sampling path and backward compatibility.
        with np.errstate(divide="ignore"):
            self.inform_probability = np.where(
                self.in_degree > 0, 1.0 / np.maximum(self.in_degree, 1), 0.0
            )
        self.edge_probability = edge_probability
        self._build_arc_probabilities(edge_probability, seed)

    def _lookup(self, ids: np.ndarray, pairs: np.ndarray) -> np.ndarray:
        """Dense indices of worker ids, erroring on the first unknown edge."""
        positions = np.searchsorted(self._ids_array, ids)
        clipped = np.minimum(positions, len(self._ids_array) - 1)
        bad = self._ids_array[clipped] != ids
        if bad.any():
            u, v = pairs[bad][0]
            raise GraphError(f"edge ({int(u)}, {int(v)}) references unknown worker")
        return positions

    def _build_arc_probabilities(
        self, model: str | tuple[str, float], seed: int
    ) -> None:
        """Fill the per-arc probability arrays aligned with both CSR views."""
        n = len(self.worker_ids)
        heads = np.repeat(np.arange(n, dtype=np.int64), self.in_degree)
        if model == "indegree":
            in_probs = self.inform_probability[heads]
        elif model == "trivalency":
            rng = np.random.default_rng(seed)
            in_probs = rng.choice(TRIVALENCY_VALUES, size=len(self._in_flat))
        elif (
            isinstance(model, tuple)
            and len(model) == 2
            and model[0] == "uniform"
        ):
            p = float(model[1])
            if not 0.0 < p <= 1.0:
                raise GraphError(f"uniform arc probability must be in (0, 1], got {p}")
            in_probs = np.full(len(self._in_flat), p)
        else:
            raise GraphError(
                f"unknown edge_probability model {model!r}; "
                "choose 'indegree', 'trivalency', or ('uniform', p)"
            )
        self._in_arc_probs = np.asarray(in_probs, dtype=float)

        # Mirror onto the out-CSR view: the arc (u -> v) sits at key u*n + v
        # in the in view (u = flat entry, v = slice owner) and the out view
        # (u = slice owner, v = flat entry); one argsort + searchsorted maps
        # every out position to its in position.
        in_keys = self._in_flat * n + heads
        out_keys = heads * n + self._out_flat
        order = np.argsort(in_keys)
        positions = np.searchsorted(in_keys[order], out_keys)
        self._out_arc_probs = self._in_arc_probs[order[positions]] if len(order) else (
            np.zeros(0)
        )

    # ----------------------------------------------------------- CSR access
    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, flat_neighbors, arc_probs)`` of the in-adjacency —
        ``arc_probs[k]`` is ``P(flat[k] -> owner)`` for the slice owner."""
        return self._in_indptr, self._in_flat, self._in_arc_probs

    def out_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, flat_neighbors, arc_probs)`` of the out-adjacency —
        ``arc_probs[k]`` is ``P(owner -> flat[k])`` for the slice owner."""
        return self._out_indptr, self._out_flat, self._out_arc_probs

    def in_arc_probs(self, index: int) -> np.ndarray:
        """``P(u -> index)`` for every in-neighbor ``u``, aligned with
        :meth:`in_neighbors`."""
        return self._in_arc_probs[self._in_indptr[index]: self._in_indptr[index + 1]]

    def out_arc_probs(self, index: int) -> np.ndarray:
        """``P(index -> v)`` for every out-neighbor ``v``, aligned with
        :meth:`out_neighbors`."""
        return self._out_arc_probs[self._out_indptr[index]: self._out_indptr[index + 1]]

    # ------------------------------------------------------------------ views
    @property
    def num_workers(self) -> int:
        """``|W|``."""
        return len(self.worker_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed arcs (twice the undirected edge count)."""
        return int(self._out_indptr[-1])

    def index_of(self, worker_id: int) -> int:
        """Dense index of a worker id; raises :class:`GraphError` if unknown."""
        index = self._index_of.get(worker_id)
        if index is None:
            raise GraphError(f"unknown worker id {worker_id}")
        return index

    def indices_of(self, worker_ids: Sequence[int]) -> np.ndarray:
        """Dense indices of many worker ids at once (vectorized lookup)."""
        ids = np.asarray(worker_ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=np.int64)
        positions = np.searchsorted(self._ids_array, ids)
        clipped = np.minimum(positions, len(self._ids_array) - 1)
        bad = self._ids_array[clipped] != ids
        if bad.any():
            raise GraphError(f"unknown worker id {int(ids[bad][0])}")
        return positions

    def worker_at(self, index: int) -> int:
        """Worker id at dense ``index``."""
        return self.worker_ids[index]

    def out_neighbors(self, index: int) -> np.ndarray:
        """Dense indices of nodes this node can inform."""
        return self._out_flat[self._out_indptr[index]: self._out_indptr[index + 1]]

    def in_neighbors(self, index: int) -> np.ndarray:
        """Dense indices of nodes that can inform this node."""
        return self._in_flat[self._in_indptr[index]: self._in_indptr[index + 1]]

    def degree_histogram(self) -> dict[int, int]:
        """``degree -> count`` over the undirected degrees (for data checks)."""
        values, counts = np.unique(self.in_degree, return_counts=True)
        return {int(degree): int(count) for degree, count in zip(values, counts)}
