"""The directed social propagation graph.

Friendship edges are undirected; information can flow both ways, so each
undirected edge {a, b} becomes the arc pair (a -> b) and (b -> a).  The
paper's propagation probability for an arc into ``v`` is in-degree based:
``P(u -> v) = 1 / indeg(v)`` ([29], [31], [41]).  Because that probability
depends only on the head ``v``, sampling the live in-arcs of ``v`` during
reverse-reachability generation is a single vectorized Bernoulli draw.

Two alternative arc-probability models from the influence-maximization
literature are available as extensions:

* ``("uniform", p)`` — every arc live with the same probability ``p``
  (the weighted-cascade constant model);
* ``"trivalency"`` — each directed arc draws uniformly from
  {0.1, 0.01, 0.001} (Chen et al.'s TRIVALENCY benchmark model).

Adjacency is stored CSR-style (indptr + flat neighbor arrays) for both
directions, which keeps BFS tight and memory predictable; per-arc
probabilities are stored as flat arrays aligned with both CSR views.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError

#: The trivalency model's arc-probability choices.
TRIVALENCY_VALUES = (0.1, 0.01, 0.001)


class SocialGraph:
    """A directed propagation graph over worker ids.

    Parameters
    ----------
    worker_ids:
        All workers in the network ``W`` (isolated workers allowed).
    edges:
        Undirected friendship pairs (worker ids).  Self-loops are rejected;
        duplicate edges are collapsed.
    edge_probability:
        Arc-probability model: ``"indegree"`` (paper default,
        ``P(u -> v) = 1/indeg(v)``), ``("uniform", p)`` with ``p`` in
        (0, 1], or ``"trivalency"``.
    seed:
        RNG seed for the trivalency draws (ignored by the other models).
    """

    def __init__(
        self,
        worker_ids: Sequence[int],
        edges: Iterable[tuple[int, int]],
        edge_probability: str | tuple[str, float] = "indegree",
        seed: int = 0,
    ) -> None:
        self.worker_ids = tuple(sorted(set(worker_ids)))
        if not self.worker_ids:
            raise GraphError("social graph needs at least one worker")
        self._index_of = {w: i for i, w in enumerate(self.worker_ids)}
        n = len(self.worker_ids)

        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop on worker {u}")
            iu = self._index_of.get(u)
            iv = self._index_of.get(v)
            if iu is None or iv is None:
                raise GraphError(f"edge ({u}, {v}) references unknown worker")
            key = (min(iu, iv), max(iu, iv))
            seen.add(key)

        out_lists: list[list[int]] = [[] for _ in range(n)]
        in_lists: list[list[int]] = [[] for _ in range(n)]
        for iu, iv in seen:
            out_lists[iu].append(iv)
            out_lists[iv].append(iu)
            in_lists[iv].append(iu)
            in_lists[iu].append(iv)

        self._out_indptr, self._out_flat = self._to_csr(out_lists)
        self._in_indptr, self._in_flat = self._to_csr(in_lists)
        self.in_degree = np.diff(self._in_indptr)
        # P(u -> v) under the in-degree model: depends only on v.  Kept for
        # the fast head-only sampling path and backward compatibility.
        with np.errstate(divide="ignore"):
            self.inform_probability = np.where(self.in_degree > 0, 1.0 / np.maximum(self.in_degree, 1), 0.0)
        self.edge_probability = edge_probability
        self._build_arc_probabilities(edge_probability, seed)

    def _build_arc_probabilities(
        self, model: str | tuple[str, float], seed: int
    ) -> None:
        """Fill the per-arc probability arrays aligned with both CSR views."""
        n = len(self.worker_ids)
        in_probs = np.zeros(len(self._in_flat))
        if model == "indegree":
            for node in range(n):
                start, stop = self._in_indptr[node], self._in_indptr[node + 1]
                in_probs[start:stop] = self.inform_probability[node]
        elif model == "trivalency":
            rng = np.random.default_rng(seed)
            in_probs = rng.choice(TRIVALENCY_VALUES, size=len(self._in_flat))
        elif (
            isinstance(model, tuple)
            and len(model) == 2
            and model[0] == "uniform"
        ):
            p = float(model[1])
            if not 0.0 < p <= 1.0:
                raise GraphError(f"uniform arc probability must be in (0, 1], got {p}")
            in_probs[:] = p
        else:
            raise GraphError(
                f"unknown edge_probability model {model!r}; "
                "choose 'indegree', 'trivalency', or ('uniform', p)"
            )
        self._in_arc_probs = in_probs

        # Mirror onto the out-CSR view: arc (u -> v) sits at v's in-list
        # position of u and at u's out-list position of v.
        position: dict[tuple[int, int], float] = {}
        for v in range(n):
            start, stop = self._in_indptr[v], self._in_indptr[v + 1]
            for offset in range(start, stop):
                u = int(self._in_flat[offset])
                position[(u, v)] = float(in_probs[offset])
        out_probs = np.zeros(len(self._out_flat))
        for u in range(n):
            start, stop = self._out_indptr[u], self._out_indptr[u + 1]
            for offset in range(start, stop):
                v = int(self._out_flat[offset])
                out_probs[offset] = position[(u, v)]
        self._out_arc_probs = out_probs

    def in_arc_probs(self, index: int) -> np.ndarray:
        """``P(u -> index)`` for every in-neighbor ``u``, aligned with
        :meth:`in_neighbors`."""
        return self._in_arc_probs[self._in_indptr[index]: self._in_indptr[index + 1]]

    def out_arc_probs(self, index: int) -> np.ndarray:
        """``P(index -> v)`` for every out-neighbor ``v``, aligned with
        :meth:`out_neighbors`."""
        return self._out_arc_probs[self._out_indptr[index]: self._out_indptr[index + 1]]

    @staticmethod
    def _to_csr(lists: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        for i, neighbors in enumerate(lists):
            indptr[i + 1] = indptr[i] + len(neighbors)
        flat = np.empty(int(indptr[-1]), dtype=np.int64)
        for i, neighbors in enumerate(lists):
            flat[indptr[i]: indptr[i + 1]] = sorted(neighbors)
        return indptr, flat

    # ------------------------------------------------------------------ views
    @property
    def num_workers(self) -> int:
        """``|W|``."""
        return len(self.worker_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed arcs (twice the undirected edge count)."""
        return int(self._out_indptr[-1])

    def index_of(self, worker_id: int) -> int:
        """Dense index of a worker id; raises :class:`GraphError` if unknown."""
        index = self._index_of.get(worker_id)
        if index is None:
            raise GraphError(f"unknown worker id {worker_id}")
        return index

    def worker_at(self, index: int) -> int:
        """Worker id at dense ``index``."""
        return self.worker_ids[index]

    def out_neighbors(self, index: int) -> np.ndarray:
        """Dense indices of nodes this node can inform."""
        return self._out_flat[self._out_indptr[index]: self._out_indptr[index + 1]]

    def in_neighbors(self, index: int) -> np.ndarray:
        """Dense indices of nodes that can inform this node."""
        return self._in_flat[self._in_indptr[index]: self._in_indptr[index + 1]]

    def degree_histogram(self) -> dict[int, int]:
        """``degree -> count`` over the undirected degrees (for data checks)."""
        histogram: dict[int, int] = {}
        for degree in self.in_degree:
            histogram[int(degree)] = histogram.get(int(degree), 0) + 1
        return histogram
