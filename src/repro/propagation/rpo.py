"""The RPO algorithm (paper Algorithm 1) with its sample-size bounds.

RPO decides *how many* RRR sets are enough for a (1 - epsilon)-approximate
estimate of worker propagation, using two lower bounds:

* the **iteration-based bound** (Lemma 6)

      NR(k) = (2 + 2*eps_star/3) * (ln|W| + ln(1/lambda_star)) * |W|
              / (eps_star^2 * k)

  evaluated along the test ladder ``K = {|W|/2, |W|/4, ..., 2}``, with
  ``gamma = (1 + eps_star) * k`` as the acceptance threshold on
  ``N_p^opt = |W| * max_w f_R(w)``;

* the **threshold-based bound** (Lemma 5)

      N'_R(gamma) = 2 * |W| * ln(1/lambda) / (sigma_lb * eps^2)

  where ``sigma_lb = N_p^opt * k / gamma`` lower-bounds the maximum informed
  range ``sigma(w_tau)``.

Failure probabilities follow the paper: ``lambda = 1/|W|^o`` and
``lambda_star = 1/(|W|^o * log2|W|)``; the minimizing split between the two
epsilons is ``eps_star = sqrt(2) * eps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.propagation.graph import SocialGraph
from repro.propagation.rrr import RRRCollection, sample_rrr_sets_batched


@dataclass(frozen=True)
class RPOResult:
    """Outcome of one RPO run.

    Attributes
    ----------
    collection:
        The final RRR collection (use its query methods for ``P_pro``).
    k_used:
        The ladder value at which the threshold test passed (0 if the ladder
        was exhausted and the final iteration was accepted as fallback).
    sigma_lower_bound:
        The derived lower bound on the maximum informed range.
    iteration_bound / threshold_bound:
        The two sample-count bounds actually evaluated.
    truncated:
        True when ``max_sets`` capped generation below the theoretical bound.
    """

    collection: RRRCollection
    k_used: float
    sigma_lower_bound: float
    iteration_bound: int
    threshold_bound: int
    truncated: bool


class RPO:
    """Random reverse reachable-based Propagation Optimization.

    Parameters
    ----------
    epsilon:
        Approximation parameter (paper default 0.1).
    o:
        Failure-probability exponent; ``lambda = 1/|W|^o`` (paper default 1).
    max_sets:
        Hard cap on the number of RRR sets (memory guard).  The paper's
        bounds can demand millions of sets on loosely connected graphs; the
        cap trades a documented amount of approximation for tractability and
        is surfaced via :attr:`RPOResult.truncated`.
    seed:
        RNG seed; runs are reproducible.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        o: float = 1.0,
        max_sets: int = 200_000,
        seed: int = 0,
    ) -> None:
        if epsilon <= 0 or epsilon >= 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if o <= 0:
            raise ConfigurationError(f"o must be positive, got {o}")
        if max_sets < 1:
            raise ConfigurationError(f"max_sets must be >= 1, got {max_sets}")
        self.epsilon = epsilon
        self.epsilon_star = math.sqrt(2.0) * epsilon
        self.o = o
        self.max_sets = max_sets
        self.seed = seed

    # ----------------------------------------------------------------- bounds
    def iteration_bound(self, num_workers: int, k: float) -> int:
        """``NR(k)`` of Lemma 6 (iteration-based lower bound)."""
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        lambda_star = 1.0 / (num_workers**self.o * max(math.log2(num_workers), 1.0))
        eps = self.epsilon_star
        numerator = (2.0 + 2.0 * eps / 3.0) * (math.log(num_workers) + math.log(1.0 / lambda_star)) * num_workers
        return max(1, math.ceil(numerator / (eps * eps * k)))

    def threshold_bound(self, num_workers: int, sigma_lower_bound: float) -> int:
        """``N'_R(gamma)`` of Lemma 5 (threshold-based lower bound)."""
        if sigma_lower_bound <= 0:
            raise ConfigurationError("sigma lower bound must be positive")
        lam = 1.0 / num_workers**self.o
        numerator = 2.0 * num_workers * math.log(1.0 / lam)
        return max(1, math.ceil(numerator / (sigma_lower_bound * self.epsilon * self.epsilon)))

    # -------------------------------------------------------------------- run
    def run(self, graph: SocialGraph) -> RPOResult:
        """Execute Algorithm 1 on ``graph`` and return the RRR collection."""
        n = graph.num_workers
        rng = np.random.default_rng(self.seed)
        collection = RRRCollection(num_workers=n)
        truncated = False

        k = n / 2.0
        k_used = 0.0
        sigma_lb = 1.0
        nr_k = 0
        # Ladder K = {|W|/2, |W|/4, ..., 2}; the final rung is always
        # accepted so the algorithm terminates on sparse graphs.
        while k >= 2.0:
            nr_k = self.iteration_bound(n, k)
            to_generate = min(nr_k, self.max_sets) - len(collection)
            if to_generate > 0:
                if nr_k > self.max_sets:
                    truncated = True
                roots, indptr, flat = sample_rrr_sets_batched(graph, to_generate, rng)
                collection.extend_flat(roots, indptr, flat)
            n_p_opt = n * float(collection.coverage_fraction().max())
            gamma = (1.0 + self.epsilon_star) * k
            if n_p_opt >= gamma or k / 2.0 < 2.0:
                k_used = k if n_p_opt >= gamma else 0.0
                sigma_lb = max(n_p_opt * k / gamma if gamma > 0 else 1.0, 1.0)
                break
            collection.clear()
            k /= 2.0

        n_prime = self.threshold_bound(n, sigma_lb)
        deficit = min(n_prime, self.max_sets) - len(collection)
        if n_prime > self.max_sets:
            truncated = True
        if deficit > 0:
            roots, indptr, flat = sample_rrr_sets_batched(graph, deficit, rng)
            collection.extend_flat(roots, indptr, flat)

        return RPOResult(
            collection=collection,
            k_used=k_used,
            sigma_lower_bound=sigma_lb,
            iteration_bound=nr_k,
            threshold_bound=n_prime,
            truncated=truncated,
        )
