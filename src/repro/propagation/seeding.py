"""Greedy influence-maximization seed selection over RRR sets (extension).

The paper's MI baseline maximizes worker-task influence one task at a time;
a natural platform-level question it motivates ("which workers should the
task issuer inform to advertise most widely?") is classical influence
maximization.  With RRR sets already in hand, the (1 - 1/e)-approximate
greedy of Borgs et al. [30] / Tang et al. [31] is a max-coverage problem:
pick the worker covering the most sets, remove those sets, repeat.

:func:`select_seeds` implements it with CELF-style lazy re-evaluation
(Leskovec et al.'s "cost-effective lazy forward"): marginal coverage is
submodular, so a stale upper bound that still tops the queue is exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.propagation.rrr import RRRCollection


@dataclass(frozen=True)
class SeedingResult:
    """Outcome of greedy seed selection.

    Attributes
    ----------
    seeds:
        Dense worker indices in selection order.
    marginal_coverage:
        Newly covered set count contributed by each seed, aligned with
        ``seeds`` (non-increasing, by submodularity).
    estimated_spread:
        ``|W| / N * covered`` — the RIS estimate of the expected number of
        informed workers when all seeds start informed.
    """

    seeds: tuple[int, ...]
    marginal_coverage: tuple[int, ...]
    estimated_spread: float


def select_seeds(collection: RRRCollection, k: int) -> SeedingResult:
    """Pick ``k`` seed workers greedily maximizing RRR-set coverage.

    Parameters
    ----------
    collection:
        A non-empty RRR collection (IC or LT — the estimator is model-free
        given the sets).
    k:
        Number of seeds; capped at the number of workers.

    Notes
    -----
    Runs in O(total set size + k log |W|) thanks to lazy evaluation: each
    selection pops stale entries whose cached gain exceeds the true marginal
    gain, re-evaluates, and re-pushes.  Ties break toward the smaller worker
    index for determinism.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(collection) == 0:
        raise ValueError("cannot select seeds from an empty RRR collection")
    k = min(k, collection.num_workers)

    covered = np.zeros(len(collection), dtype=bool)
    # Lazy queue of (-cached_gain, worker). Python's heap is a min-heap, so
    # negate; the worker index itself is the deterministic tie-break.
    initial = collection.cover_counts()
    queue: list[tuple[int, int]] = [
        (-int(gain), worker) for worker, gain in enumerate(initial) if gain > 0
    ]
    heapq.heapify(queue)

    seeds: list[int] = []
    marginals: list[int] = []
    chosen = np.zeros(collection.num_workers, dtype=bool)
    while len(seeds) < k and queue:
        negative_gain, worker = heapq.heappop(queue)
        if chosen[worker]:
            continue
        row = collection.sets_covering(worker)
        true_gain = int(np.count_nonzero(~covered[row]))
        if true_gain != -negative_gain:
            # Stale: re-push with the fresh bound and keep popping.
            if true_gain > 0:
                heapq.heappush(queue, (-true_gain, worker))
            continue
        if true_gain == 0:
            break
        seeds.append(worker)
        marginals.append(true_gain)
        chosen[worker] = True
        covered[row] = True

    total_covered = int(covered.sum())
    spread = collection.num_workers * total_covered / len(collection)
    return SeedingResult(
        seeds=tuple(seeds),
        marginal_coverage=tuple(marginals),
        estimated_spread=spread,
    )


def spread_of_seeds(collection: RRRCollection, seeds: list[int]) -> float:
    """RIS spread estimate of an arbitrary seed set (for comparisons).

    ``|W| / N *`` (number of sets covered by at least one seed).
    """
    if len(collection) == 0:
        return 0.0
    covered = np.zeros(len(collection), dtype=bool)
    for worker in seeds:
        if not 0 <= worker < collection.num_workers:
            raise ValueError(f"seed {worker} out of range [0, {collection.num_workers})")
        covered[collection.sets_covering(worker)] = True
    return collection.num_workers * int(covered.sum()) / len(collection)
