"""Random Reverse Reachable (RRR) set generation and queries (Definition 5).

An RRR set is sampled by (1) picking a root worker uniformly at random and
(2) performing a reverse BFS in which each in-arc of a visited node ``v`` is
live independently with probability ``1 / indeg(v)``.  The set contains every
worker that reaches the root through live arcs — including the root itself
(zero arcs is a finite path).

:class:`RRRCollection` stores all sampled sets and answers the three queries
the rest of the library needs, each vectorized:

* ``coverage_fraction`` — ``f_R(w)``, the fraction of sets covering ``w``
  (drives the greedy informed worker of Definition 8 and ``N_p``);
* ``sigma`` — the informed range estimate ``|W|/N * count`` (Definition 6);
* ``ppro`` / ``weighted_root_cover`` — the pairwise informed probability of
  Equation 3 and its task-weighted aggregation used by the influence model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.propagation.graph import SocialGraph


def _sample_one(graph: SocialGraph, root: int, rng: np.random.Generator) -> np.ndarray:
    """Reverse-BFS sample of one RRR set rooted at dense index ``root``."""
    visited = {root}
    frontier = [root]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            in_neighbors = graph.in_neighbors(node)
            if len(in_neighbors) == 0:
                continue
            # Arc (u -> node) is live with its model probability; under the
            # paper's in-degree model that is 1/indeg(node) for every u,
            # and either way one vectorized draw suffices.
            probs = graph.in_arc_probs(node)
            live = in_neighbors[rng.random(len(in_neighbors)) < probs]
            for u in live:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


@dataclass
class RRRCollection:
    """A bag of RRR sets with vectorized coverage queries."""

    num_workers: int
    roots: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    members: list[np.ndarray] = field(default_factory=list)
    _cover_counts: np.ndarray | None = field(default=None, repr=False)
    _membership: sparse.csr_matrix | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.members)

    def extend(self, roots: np.ndarray, members: list[np.ndarray]) -> None:
        """Append newly sampled sets, invalidating cached statistics."""
        self.roots = np.concatenate([self.roots, roots])
        self.members.extend(members)
        self._cover_counts = None
        self._membership = None

    def clear(self) -> None:
        """Drop every set (Algorithm 1 resets R between k-iterations)."""
        self.roots = np.zeros(0, dtype=np.int64)
        self.members = []
        self._cover_counts = None
        self._membership = None

    def membership_matrix(self) -> sparse.csr_matrix:
        """Sparse ``|W| x N`` indicator: entry (w, j) = 1 iff set j covers w."""
        if self._membership is None:
            if self.members:
                member_flat = np.concatenate(self.members)
                set_ids = np.repeat(
                    np.arange(len(self.members), dtype=np.int64),
                    [len(m) for m in self.members],
                )
                data = np.ones(len(member_flat))
                self._membership = sparse.csr_matrix(
                    (data, (member_flat, set_ids)),
                    shape=(self.num_workers, len(self.members)),
                )
            else:
                self._membership = sparse.csr_matrix((self.num_workers, 0))
        return self._membership

    # -------------------------------------------------------------- coverage
    def cover_counts(self) -> np.ndarray:
        """``count[w]`` = number of sets containing ``w`` (cached)."""
        if self._cover_counts is None:
            counts = np.zeros(self.num_workers, dtype=np.int64)
            for member in self.members:
                counts[member] += 1
            self._cover_counts = counts
        return self._cover_counts

    def coverage_fraction(self) -> np.ndarray:
        """``f_R(w)`` for every worker; zeros if the collection is empty."""
        if not self.members:
            return np.zeros(self.num_workers)
        return self.cover_counts() / len(self.members)

    def greedy_informed_worker(self) -> int:
        """Dense index of the worker maximizing ``f_R`` (Definition 8)."""
        if not self.members:
            raise ValueError("empty RRR collection has no greedy informed worker")
        return int(np.argmax(self.cover_counts()))

    def sigma(self, worker_index: int) -> float:
        """Informed-range estimate ``sigma(w) = |W|/N * count[w]`` (Def. 6)."""
        if not self.members:
            return 0.0
        return self.num_workers * float(self.cover_counts()[worker_index]) / len(self.members)

    def sigma_all(self) -> np.ndarray:
        """``sigma(w)`` for every worker at once."""
        if not self.members:
            return np.zeros(self.num_workers)
        return self.num_workers * self.cover_counts().astype(float) / len(self.members)

    # -------------------------------------------------------------- pairwise
    def ppro(self, source_index: int, target_index: int) -> float:
        """Equation 3: ``P_pro(w_s, w_i)`` — probability that ``target`` is
        informed by ``source`` = ``|W|/N *`` (number of target-rooted sets
        covering the source)."""
        if not self.members:
            return 0.0
        count = 0
        for root, member in zip(self.roots, self.members):
            if root != target_index:
                continue
            position = np.searchsorted(member, source_index)
            if position < len(member) and member[position] == source_index:
                count += 1
        return self.num_workers * count / len(self.members)

    def ppro_matrix_row(self, source_index: int) -> np.ndarray:
        """``P_pro(w_s, w_i)`` for a fixed source against every target.

        One pass over the sets: every target-rooted set covering the source
        contributes ``|W|/N`` at the root's position.
        """
        out = np.zeros(self.num_workers)
        if not self.members:
            return out
        scale = self.num_workers / len(self.members)
        for root, member in zip(self.roots, self.members):
            # membership test via searchsorted on the (small) sorted member array
            position = np.searchsorted(member, source_index)
            if position < len(member) and member[position] == source_index:
                out[int(root)] += scale
        return out

    def weighted_root_cover(self, weight_by_root: np.ndarray) -> np.ndarray:
        """Vectorized inner sum of the influence formula.

        Given per-worker weights ``weight_by_root`` (e.g. ``P_wil(w_i, s)``),
        returns for every candidate source ``w_s``

            out[w_s] = |W|/N * sum_{sets j covering w_s} weight_by_root[root_j]

        which equals ``sum_i weight[i] * P_pro(w_s, w_i)``.
        """
        out = self.weighted_root_cover_batch(np.asarray(weight_by_root)[:, None])
        return out[:, 0]

    def weighted_root_cover_batch(self, weights: np.ndarray) -> np.ndarray:
        """Batched :meth:`weighted_root_cover` over many weight vectors.

        ``weights`` has shape ``(|W|, T)`` (one column per task); the result
        has the same shape, where

            out[w_s, t] = sum_i weights[i, t] * P_pro(w_s, w_i)

        computed as one sparse matrix product: ``scale * M @ weights[roots]``
        with ``M`` the membership indicator.
        """
        weights = np.atleast_2d(np.asarray(weights, dtype=float))
        if weights.shape[0] != self.num_workers:
            raise ValueError(
                f"weights must have {self.num_workers} rows, got {weights.shape[0]}"
            )
        if not self.members:
            return np.zeros_like(weights)
        scale = self.num_workers / len(self.members)
        per_set = weights[self.roots, :]  # (N, T)
        return scale * (self.membership_matrix() @ per_set)


def sample_rrr_sets(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sample ``count`` RRR sets with uniformly random roots.

    Returns ``(roots, members)`` where each member array is **sorted** so
    that membership tests can binary-search.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    roots = rng.integers(graph.num_workers, size=count)
    members = [np.sort(_sample_one(graph, int(root), rng)) for root in roots]
    return roots.astype(np.int64), members
