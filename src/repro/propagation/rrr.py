"""Random Reverse Reachable (RRR) set generation and queries (Definition 5).

An RRR set is sampled by (1) picking a root worker uniformly at random and
(2) performing a reverse BFS in which each in-arc of a visited node ``v`` is
live independently with probability ``1 / indeg(v)``.  The set contains every
worker that reaches the root through live arcs — including the root itself
(zero arcs is a finite path).

Storage is flat-CSR: :class:`RRRCollection` keeps one ``(indptr, flat
members, roots)`` array triple for the whole bag of sets instead of a Python
list of per-set arrays.  Appends go into capacity-doubled buffers, so
repeated :meth:`RRRCollection.extend` calls (the RPO ladder) are amortized
O(new data) with no per-call concatenation, and cover counts are maintained
incrementally on append.  All queries (``coverage_fraction``, ``sigma``,
``ppro`` / ``ppro_matrix_row``, ``weighted_root_cover``) run on the CSR
structure without touching Python loops over sets.

Sampling is frontier-batched: :func:`sample_rrr_sets_batched` advances the
reverse BFS of *all* pending sets at once, drawing the Bernoulli outcomes of
every frontier node's in-arc slice in one vectorized pass per level.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.propagation.graph import SocialGraph

_EMPTY_INT = np.zeros(0, dtype=np.int64)


def merge_sorted(universe: np.ndarray, fresh_sorted: np.ndarray) -> np.ndarray:
    """Merge sorted, disjoint ``fresh_sorted`` keys into a sorted universe."""
    return np.insert(universe, np.searchsorted(universe, fresh_sorted), fresh_sorted)


def not_in_sorted(universe: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Boolean mask of ``keys`` entries absent from the sorted universe."""
    if universe.size == 0:
        return np.ones(len(keys), dtype=bool)
    positions = np.minimum(np.searchsorted(universe, keys), universe.size - 1)
    return universe[positions] != keys


class RRRCollection:
    """A bag of RRR sets in flat-CSR form with vectorized coverage queries.

    The public contract is unchanged from the historical list-based
    implementation: ``roots`` is an ``(N,)`` array of root indices,
    ``members`` yields one sorted member array per set, and every query
    returns the same values.  Internally the member arrays are slices of a
    single flat buffer delimited by ``indptr``.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._num_sets = 0
        self._flat_size = 0
        self._roots_buf = np.zeros(8, dtype=np.int64)
        self._indptr_buf = np.zeros(9, dtype=np.int64)
        self._flat_buf = np.zeros(64, dtype=np.int64)
        # Incrementally maintained: updated on every extend, reset on clear.
        self._cover_counts = np.zeros(self.num_workers, dtype=np.int64)
        self._membership: sparse.csr_matrix | None = None
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every mutation — lets consumers detect staleness even
        when ``len`` is unchanged (e.g. clear + resample to the same count)."""
        return self._version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RRRCollection(num_workers={self.num_workers}, "
            f"num_sets={self._num_sets}, total_members={self._flat_size})"
        )

    def __len__(self) -> int:
        return self._num_sets

    # ------------------------------------------------------------- raw views
    @property
    def roots(self) -> np.ndarray:
        """Root worker index of every set, shape ``(N,)``."""
        return self._roots_buf[: self._num_sets]

    @property
    def indptr(self) -> np.ndarray:
        """CSR delimiters: set ``j`` owns ``flat_members[indptr[j]:indptr[j+1]]``."""
        return self._indptr_buf[: self._num_sets + 1]

    @property
    def flat_members(self) -> np.ndarray:
        """All member indices concatenated set-by-set (sorted within a set)."""
        return self._flat_buf[: self._flat_size]

    @property
    def members(self) -> list[np.ndarray]:
        """Per-set member arrays (views into the flat buffer; do not mutate)."""
        indptr = self.indptr
        flat = self.flat_members
        return [flat[indptr[j]: indptr[j + 1]] for j in range(self._num_sets)]

    # -------------------------------------------------------------- mutation
    @staticmethod
    def _grown(buffer: np.ndarray, needed: int) -> np.ndarray:
        if needed <= len(buffer):
            return buffer
        capacity = max(len(buffer), 1)
        while capacity < needed:
            capacity *= 2
        grown = np.zeros(capacity, dtype=buffer.dtype)
        grown[: len(buffer)] = buffer
        return grown

    def extend_flat(self, roots: np.ndarray, indptr: np.ndarray, flat: np.ndarray) -> None:
        """Append pre-flattened sets: ``flat[indptr[j]:indptr[j+1]]`` is set
        ``j``'s sorted member array.  Amortized O(appended data)."""
        roots = np.asarray(roots, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        flat = np.asarray(flat, dtype=np.int64)
        count = len(roots)
        if len(indptr) != count + 1:
            raise ValueError(
                f"indptr must have {count + 1} entries for {count} roots, got {len(indptr)}"
            )
        if count == 0:
            return
        if indptr[0] != 0 or indptr[-1] != len(flat) or np.any(np.diff(indptr) < 0):
            raise ValueError(
                f"inconsistent indptr: must start at 0, be non-decreasing and "
                f"end at len(flat)={len(flat)}, got [{indptr[0]}, ..., {indptr[-1]}]"
            )
        self._roots_buf = self._grown(self._roots_buf, self._num_sets + count)
        self._indptr_buf = self._grown(self._indptr_buf, self._num_sets + count + 1)
        self._flat_buf = self._grown(self._flat_buf, self._flat_size + len(flat))

        self._roots_buf[self._num_sets: self._num_sets + count] = roots
        self._indptr_buf[self._num_sets + 1: self._num_sets + count + 1] = (
            indptr[1:] + self._flat_size
        )
        self._flat_buf[self._flat_size: self._flat_size + len(flat)] = flat
        self._num_sets += count
        self._flat_size += len(flat)

        self._cover_counts += np.bincount(flat, minlength=self.num_workers)
        self._membership = None
        self._version += 1

    def extend(self, roots: np.ndarray, members: list[np.ndarray]) -> None:
        """Append newly sampled sets given as a list of sorted member arrays."""
        lengths = np.fromiter(
            (len(m) for m in members), dtype=np.int64, count=len(members)
        )
        indptr = np.zeros(len(members) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        flat = (
            np.concatenate(members) if members else _EMPTY_INT
        )
        self.extend_flat(np.asarray(roots, dtype=np.int64), indptr, flat)

    def clear(self) -> None:
        """Drop every set (Algorithm 1 resets R between k-iterations).

        Allocates fresh buffers rather than rewinding the counters, so any
        member views handed out before the clear keep reading the data they
        were created over instead of being silently overwritten.
        """
        self._num_sets = 0
        self._flat_size = 0
        self._roots_buf = np.zeros(8, dtype=np.int64)
        self._indptr_buf = np.zeros(9, dtype=np.int64)
        self._flat_buf = np.zeros(64, dtype=np.int64)
        self._cover_counts = np.zeros(self.num_workers, dtype=np.int64)
        self._membership = None
        self._version += 1

    # ------------------------------------------------------------ membership
    def membership_matrix(self) -> sparse.csr_matrix:
        """Sparse ``|W| x N`` indicator: entry (w, j) = 1 iff set j covers w.

        Built straight from the flat-CSR slabs: the ``(indptr, flat)`` pair
        *is* the CSC form of the indicator (sets as columns), so construction
        is O(nnz) with no per-set Python work and no coordinate sort.
        """
        if self._membership is None:
            if self._num_sets:
                csc = sparse.csc_matrix(
                    (
                        np.ones(self._flat_size),
                        self.flat_members.copy(),
                        self.indptr.copy(),
                    ),
                    shape=(self.num_workers, self._num_sets),
                )
                self._membership = csc.tocsr()
            else:
                self._membership = sparse.csr_matrix((self.num_workers, 0))
        return self._membership

    def sets_covering(self, worker_index: int) -> np.ndarray:
        """Ids of the sets containing ``worker_index`` (ascending)."""
        matrix = self.membership_matrix()
        return matrix.indices[
            matrix.indptr[worker_index]: matrix.indptr[worker_index + 1]
        ]

    # -------------------------------------------------------------- coverage
    def cover_counts(self) -> np.ndarray:
        """``count[w]`` = number of sets containing ``w`` (maintained on append)."""
        return self._cover_counts

    def coverage_fraction(self) -> np.ndarray:
        """``f_R(w)`` for every worker; zeros if the collection is empty."""
        if not self._num_sets:
            return np.zeros(self.num_workers)
        return self._cover_counts / self._num_sets

    def greedy_informed_worker(self) -> int:
        """Dense index of the worker maximizing ``f_R`` (Definition 8)."""
        if not self._num_sets:
            raise ValueError("empty RRR collection has no greedy informed worker")
        return int(np.argmax(self._cover_counts))

    def sigma(self, worker_index: int) -> float:
        """Informed-range estimate ``sigma(w) = |W|/N * count[w]`` (Def. 6)."""
        if not self._num_sets:
            return 0.0
        return self.num_workers * float(self._cover_counts[worker_index]) / self._num_sets

    def sigma_all(self) -> np.ndarray:
        """``sigma(w)`` for every worker at once."""
        if not self._num_sets:
            return np.zeros(self.num_workers)
        return self.num_workers * self._cover_counts.astype(float) / self._num_sets

    # -------------------------------------------------------------- pairwise
    def ppro(self, source_index: int, target_index: int) -> float:
        """Equation 3: ``P_pro(w_s, w_i)`` — probability that ``target`` is
        informed by ``source`` = ``|W|/N *`` (number of target-rooted sets
        covering the source)."""
        if not self._num_sets:
            return 0.0
        covering = self.sets_covering(source_index)
        count = int(np.count_nonzero(self.roots[covering] == target_index))
        return self.num_workers * count / self._num_sets

    def ppro_matrix_row(self, source_index: int) -> np.ndarray:
        """``P_pro(w_s, w_i)`` for a fixed source against every target.

        One gather over the sets covering the source: each contributes its
        root, so the row is a scaled bincount of those roots.
        """
        if not self._num_sets:
            return np.zeros(self.num_workers)
        covering = self.sets_covering(source_index)
        counts = np.bincount(self.roots[covering], minlength=self.num_workers)
        return self.num_workers * counts / self._num_sets

    def weighted_root_cover(self, weight_by_root: np.ndarray) -> np.ndarray:
        """Vectorized inner sum of the influence formula.

        Given per-worker weights ``weight_by_root`` (e.g. ``P_wil(w_i, s)``),
        returns for every candidate source ``w_s``

            out[w_s] = |W|/N * sum_{sets j covering w_s} weight_by_root[root_j]

        which equals ``sum_i weight[i] * P_pro(w_s, w_i)``.
        """
        out = self.weighted_root_cover_batch(np.asarray(weight_by_root)[:, None])
        return out[:, 0]

    def weighted_root_cover_batch(self, weights: np.ndarray) -> np.ndarray:
        """Batched :meth:`weighted_root_cover` over many weight vectors.

        ``weights`` has shape ``(|W|, T)`` (one column per task); the result
        has the same shape, where

            out[w_s, t] = sum_i weights[i, t] * P_pro(w_s, w_i)

        computed as one sparse matrix product: ``scale * M @ weights[roots]``
        with ``M`` the membership indicator.
        """
        weights = np.atleast_2d(np.asarray(weights, dtype=float))
        if weights.shape[0] != self.num_workers:
            raise ValueError(
                f"weights must have {self.num_workers} rows, got {weights.shape[0]}"
            )
        if not self._num_sets:
            return np.zeros_like(weights)
        scale = self.num_workers / self._num_sets
        per_set = weights[self.roots, :]  # (N, T)
        return scale * (self.membership_matrix() @ per_set)


#: Largest ``processes x nodes`` key space served by the O(1)-lookup stamp
#: bitmap (64M cells = 64 MB of bool); beyond it the sorted-merge path keeps
#: memory proportional to the visited set instead.
STAMP_ARRAY_LIMIT = 1 << 26


def batched_cascade(
    indptr: np.ndarray,
    flat: np.ndarray,
    arc_probs: np.ndarray,
    num_nodes: int,
    start_nodes: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance many independent-cascade BFS processes simultaneously.

    Process ``j`` starts at ``start_nodes[j]`` and repeatedly expands its
    frontier over the CSR adjacency ``(indptr, flat)``: every arc in a
    frontier node's slice fires independently with its ``arc_probs`` entry.
    Per level, the arc slices of *all* frontiers are concatenated, their
    Bernoulli outcomes drawn in one vectorized pass, and the surviving
    ``(process, node)`` pairs deduped against the visited universe — no
    per-process Python loop anywhere.

    Visited-set maintenance is a preallocated process-major stamp bitmap
    (one flag per ``process * num_nodes + node`` key, reused across levels):
    membership tests are O(level size) gathers and nothing is merged until a
    single final sort.  When the key space exceeds
    :data:`STAMP_ARRAY_LIMIT` cells, the engine falls back to the sorted
    merge (``np.insert`` + ``searchsorted``) whose memory tracks the visited
    set; both paths are bit-identical, including every RNG draw.

    The same engine serves reverse-reachability sampling (in-adjacency) and
    forward IC simulation (out-adjacency).  Returns ``(result_indptr,
    result_flat)``: process ``j`` reached the sorted nodes
    ``result_flat[result_indptr[j]:result_indptr[j+1]]``.
    """
    count = len(start_nodes)
    if count == 0:
        return np.zeros(1, dtype=np.int64), _EMPTY_INT
    n = num_nodes
    use_stamp = count * n <= STAMP_ARRAY_LIMIT

    # Keys are process_id * n + node; start nodes are visited from the
    # start, and ascending process ids keep the initial array sorted.
    start_keys = np.arange(count, dtype=np.int64) * n + start_nodes
    if use_stamp:
        stamp = np.zeros(count * n, dtype=bool)
        stamp[start_keys] = True
        visited_chunks = [start_keys]
        visited = _EMPTY_INT  # unused on this path
    else:
        visited = start_keys
        visited_chunks = []
    frontier_procs = np.arange(count, dtype=np.int64)
    frontier_nodes = start_nodes

    while frontier_nodes.size:
        starts = indptr[frontier_nodes]
        lengths = indptr[frontier_nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        # Positions of every frontier node's arcs in the flat arc arrays.
        offsets = np.cumsum(lengths) - lengths
        arc_pos = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
        live = rng.random(total) < arc_probs[arc_pos]
        candidate_procs = np.repeat(frontier_procs, lengths)[live]
        candidate_nodes = flat[arc_pos[live]]
        if candidate_nodes.size == 0:
            break
        keys = np.sort(candidate_procs * n + candidate_nodes)
        keys = keys[np.concatenate(([True], keys[1:] != keys[:-1]))]
        if use_stamp:
            fresh = keys[~stamp[keys]]
            if fresh.size == 0:
                break
            stamp[fresh] = True
            visited_chunks.append(fresh)
        else:
            fresh = keys[not_in_sorted(visited, keys)]
            if fresh.size == 0:
                break
            visited = merge_sorted(visited, fresh)
        frontier_procs = fresh // n
        frontier_nodes = fresh % n

    if use_stamp:
        # One sort at the end instead of one merge per level.
        visited = np.sort(np.concatenate(visited_chunks))

    # visited is sorted process-major with ascending nodes inside each
    # process, which is exactly the flat-CSR layout with sorted slices.
    proc_ids = visited // n
    result_flat = visited % n
    result_indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(np.bincount(proc_ids, minlength=count), out=result_indptr[1:])
    return result_indptr, result_flat


def sample_rrr_sets_batched(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``count`` RRR sets with all reverse BFS frontiers advanced at
    once (see :func:`batched_cascade`).

    Returns ``(roots, indptr, flat)`` in the flat-CSR layout of
    :meth:`RRRCollection.extend_flat`; member slices are sorted.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    n = graph.num_workers
    roots = rng.integers(n, size=count).astype(np.int64)
    in_indptr, in_flat, in_probs = graph.in_csr()
    indptr, flat = batched_cascade(in_indptr, in_flat, in_probs, n, roots, rng)
    return roots, indptr, flat


def sample_rrr_sets(
    graph: SocialGraph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sample ``count`` RRR sets with uniformly random roots.

    Compatibility wrapper around :func:`sample_rrr_sets_batched`: returns
    ``(roots, members)`` where each member array is **sorted** so that
    membership tests can binary-search.  The member arrays are views into one
    flat buffer.
    """
    roots, indptr, flat = sample_rrr_sets_batched(graph, count, rng)
    members = [flat[indptr[j]: indptr[j + 1]] for j in range(count)]
    return roots, members
