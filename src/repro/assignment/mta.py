"""MTA — the Maximum Task Assignment baseline (Kazemi & Shahabi 2012).

Maximizes the number of assigned tasks by computing a maximum flow on the
assignment graph; worker-task influence plays no role.  Small instances use
the from-scratch Dinic solver on the Figure-4 network; large instances use
the Hopcroft-Karp matching in scipy (identical cardinality, C speed).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import maximum_bipartite_matching

from repro.assignment.base import Assigner, PreparedInstance
from repro.entities import Assignment
from repro.flow import Dinic, FlowNetwork


class MTAAssigner(Assigner):
    """Max-cardinality assignment, ignoring influence.

    Parameters
    ----------
    engine:
        ``"flow"`` (from-scratch Dinic), ``"matching"`` (scipy
        Hopcroft-Karp) or ``"auto"`` (size-based dispatch).
    """

    name = "MTA"

    def __init__(self, engine: str = "auto", flow_threshold: int = 20_000) -> None:
        if engine not in ("auto", "flow", "matching"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        self.flow_threshold = flow_threshold

    def assign(self, prepared: PreparedInstance) -> Assignment:
        feasible = prepared.feasible
        if feasible.num_feasible == 0:
            return Assignment()
        use_flow = self.engine == "flow" or (
            self.engine == "auto" and feasible.mask.size <= self.flow_threshold
        )
        if use_flow:
            pairs = self._solve_flow(feasible.mask)
        else:
            pairs = self._solve_matching(feasible.mask)
        return prepared.build_assignment(pairs)

    @staticmethod
    def _solve_flow(mask: np.ndarray) -> list[tuple[int, int]]:
        n_workers, n_tasks = mask.shape
        source = 0
        sink = n_workers + n_tasks + 1
        network = FlowNetwork(num_nodes=n_workers + n_tasks + 2)
        for row in range(n_workers):
            network.add_edge(source, 1 + row, capacity=1)
        for column in range(n_tasks):
            network.add_edge(1 + n_workers + column, sink, capacity=1)
        edge_of_pair: dict[int, tuple[int, int]] = {}
        for row, column in zip(*np.nonzero(mask)):
            edge_id = network.add_edge(1 + int(row), 1 + n_workers + int(column), capacity=1)
            edge_of_pair[edge_id] = (int(row), int(column))
        Dinic(network).max_flow(source, sink)
        return [p for e, p in edge_of_pair.items() if network.flow_on(e) > 0]

    @staticmethod
    def _solve_matching(mask: np.ndarray) -> list[tuple[int, int]]:
        graph = sparse.csr_matrix(mask.astype(np.int8))
        match = maximum_bipartite_matching(graph, perm_type="column")
        return [(row, int(column)) for row, column in enumerate(match) if column >= 0]
