"""MTA — the Maximum Task Assignment baseline (Kazemi & Shahabi 2012).

Maximizes the number of assigned tasks by computing a maximum flow on the
assignment graph; worker-task influence plays no role.  Small instances use
the from-scratch Dinic solver on the Figure-4 network; large instances use
the Hopcroft-Karp matching in scipy (identical cardinality, C speed).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import maximum_bipartite_matching

from repro.assignment.base import Assigner, PreparedInstance
from repro.assignment.solvers import build_figure4_network
from repro.entities import Assignment
from repro.flow import Dinic


class MTAAssigner(Assigner):
    """Max-cardinality assignment, ignoring influence.

    Parameters
    ----------
    engine:
        ``"flow"`` (from-scratch Dinic), ``"matching"`` (scipy
        Hopcroft-Karp) or ``"auto"`` (size-based dispatch).
    flow_threshold:
        Largest ``|W| x |S|`` matrix size ``"auto"`` still routes to the
        from-scratch Dinic (raised 10x when the solver went array-native —
        a 200k-cell instance levels in vectorized BFS in tens of ms).
    """

    name = "MTA"

    def __init__(self, engine: str = "auto", flow_threshold: int = 200_000) -> None:
        if engine not in ("auto", "flow", "matching"):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        self.flow_threshold = flow_threshold

    def assign(self, prepared: PreparedInstance) -> Assignment:
        feasible = prepared.feasible
        if feasible.num_feasible == 0:
            return Assignment()
        use_flow = self.engine == "flow" or (
            self.engine == "auto" and feasible.mask.size <= self.flow_threshold
        )
        if use_flow:
            pairs = self._solve_flow(feasible.mask)
        else:
            pairs = self._solve_matching(feasible.mask)
        return prepared.build_assignment(pairs)

    @staticmethod
    def _solve_flow(mask: np.ndarray) -> list[tuple[int, int]]:
        network, rows, columns, pair_edges = build_figure4_network(mask)
        Dinic(network).max_flow(0, network.num_nodes - 1)
        used = network.flows(pair_edges) > 0
        return list(zip(rows[used].tolist(), columns[used].tolist()))

    @staticmethod
    def _solve_matching(mask: np.ndarray) -> list[tuple[int, int]]:
        graph = sparse.csr_matrix(mask.astype(np.int8))
        match = maximum_bipartite_matching(graph, perm_type="column")
        return [(row, int(column)) for row, column in enumerate(match) if column >= 0]
