"""Shared base for the lexicographic cost-matrix assigners (IA family).

IA, EIA and DIA differ only in how they price a worker-task edge; the
solve itself — lexicographic max-cardinality-then-min-cost matching over
the feasibility mask — is identical.  :class:`LexicographicCostAssigner`
hosts that solve once, in two flavours:

* :meth:`~LexicographicCostAssigner.assign` — the batch entry point every
  :class:`~repro.assignment.base.Assigner` has;
* :meth:`~LexicographicCostAssigner.assign_warm` — the streaming entry
  point: takes the previous round's :class:`~repro.flow.WarmStart`
  (duals + surviving matching keyed by worker/task ids), returns the
  assignment *and* the full :class:`~repro.flow.MatchingResult`, whose
  ``warm`` field is the carry-over state for the next round.  The warm
  solve is pinned to the same objective value and cardinality as a cold
  solve of the same instance — only the augmentation count changes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.assignment.base import Assigner, PreparedInstance
from repro.assignment.solvers import solve_lexicographic_matching
from repro.entities import Assignment
from repro.flow.bipartite import MatchingResult, WarmStart

_EMPTY = np.empty(0, dtype=np.int64)


def _empty_result() -> MatchingResult:
    return MatchingResult(
        rows=_EMPTY, cols=_EMPTY, total_cost=0.0, warm=WarmStart()
    )


class LexicographicCostAssigner(Assigner):
    """An assigner defined entirely by its dense edge-cost matrix."""

    def __init__(self, engine: str = "auto") -> None:
        self.engine = engine

    @abc.abstractmethod
    def edge_costs(self, prepared: PreparedInstance) -> np.ndarray:
        """The ``W x T`` cost matrix this algorithm minimizes over."""

    def assign(self, prepared: PreparedInstance) -> Assignment:
        feasible = prepared.feasible
        if feasible.num_feasible == 0:
            return Assignment()
        result = solve_lexicographic_matching(
            self.edge_costs(prepared), feasible.mask, engine=self.engine
        )
        return prepared.build_assignment(result)

    def assign_warm(
        self, prepared: PreparedInstance, warm: WarmStart | None
    ) -> tuple[Assignment, MatchingResult]:
        """Solve carrying ``warm`` duals/matching from the previous round.

        ``warm=None`` runs a tracked cold solve (first round of a stream);
        the returned result always carries the refreshed ``warm`` state on
        the substrate engine (``None`` on engines without one, in which
        case the caller simply stays cold).
        """
        feasible = prepared.feasible
        if feasible.num_feasible == 0:
            return Assignment(), _empty_result()
        result = solve_lexicographic_matching(
            self.edge_costs(prepared), feasible.mask, engine=self.engine,
            warm=warm,
            worker_ids=[w.worker_id for w in feasible.workers],
            task_ids=[t.task_id for t in feasible.tasks],
        )
        return prepared.build_assignment(result), result
