"""MI — the Maximum Influence baseline (paper Section V-B2).

Two phases, following the paper's description:

1. collect the feasible candidate workers of every task under the
   spatio-temporal constraints;
2. assign a task to each worker so as to maximize total worker-task
   influence: every worker picks their highest-influence feasible task;
   when several workers pick the same task, the highest-influence worker
   keeps it and the others stay idle (no cardinality-driven fallback).

Because MI never trades influence for coverage, it assigns the fewest tasks
but achieves the highest Average Influence — the behaviour the paper's
Figures 9-16 show.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import Assigner, PreparedInstance
from repro.entities import Assignment


class MIAssigner(Assigner):
    """Greedy maximum-influence assignment."""

    name = "MI"

    def assign(self, prepared: PreparedInstance) -> Assignment:
        feasible = prepared.feasible
        if feasible.num_feasible == 0:
            return Assignment()
        influence = np.where(feasible.mask, prepared.influence_matrix, -np.inf)

        # Phase 2a: every worker selects their best feasible task.
        best_task = np.argmax(influence, axis=1)
        has_candidate = np.isfinite(influence[np.arange(influence.shape[0]), best_task])

        # Phase 2b: conflicts on a task go to the highest-influence worker.
        winner_by_task: dict[int, tuple[float, int]] = {}
        for row in np.nonzero(has_candidate)[0]:
            row = int(row)
            column = int(best_task[row])
            value = float(influence[row, column])
            incumbent = winner_by_task.get(column)
            if incumbent is None or value > incumbent[0]:
                winner_by_task[column] = (value, row)

        pairs = [(row, column) for column, (_, row) in sorted(winner_by_task.items())]
        return prepared.build_assignment(pairs)
