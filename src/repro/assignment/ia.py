"""IA — basic Influence-aware Assignment (paper Section IV-A).

Transforms ITA into MCMF on the Figure-4 graph with worker-task edge cost

    w(n_i, n_{|W|+j}) = 1 / (if(w_i, s_j) + 1)

so the solver maximizes the number of assignments (flow) and, among all
maximum assignments, prefers pairs with high influence (low cost).
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import PreparedInstance
from repro.assignment.lexico import LexicographicCostAssigner


class IAAssigner(LexicographicCostAssigner):
    """Influence-aware MCMF assignment."""

    name = "IA"

    def edge_costs(self, prepared: PreparedInstance) -> np.ndarray:
        """The IA cost matrix ``1 / (if + 1)``."""
        return 1.0 / (prepared.influence_matrix + 1.0)
