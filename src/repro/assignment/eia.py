"""EIA — Entropy-based Influence-aware Assignment (paper Section IV-B).

Adapts IA by weighting each worker-task edge with the task's location
entropy:

    w(n_i, n_{|W|+j}) = (s.e + 1) / (if(w_i, s_j) + 1)

Tasks whose historical visits concentrate on few workers (low entropy) get
cheaper edges and therefore higher assignment priority, which empirically
raises the total number of assigned tasks.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import PreparedInstance
from repro.assignment.lexico import LexicographicCostAssigner


class EIAAssigner(LexicographicCostAssigner):
    """Entropy-weighted influence-aware MCMF assignment."""

    name = "EIA"

    def edge_costs(self, prepared: PreparedInstance) -> np.ndarray:
        """The EIA cost matrix ``(s.e + 1) / (if + 1)``."""
        entropy = prepared.entropy_vector()[None, :]
        return (entropy + 1.0) / (prepared.influence_matrix + 1.0)
