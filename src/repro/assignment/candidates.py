"""Output-sensitive feasible-pair enumeration via spatial indexes.

:func:`~repro.assignment.base.compute_feasible` materializes the dense
``|W| x |S|`` distance and feasibility matrices — the right layout for the
flow solvers at the paper's instance sizes.  For much larger instances the
dense product dominates; this module enumerates only the feasible pairs by
range-querying a spatial index over the tasks with each worker's reachable
radius.

Both paths implement the same two feasibility rules (paper Section IV-A):
``d(w.l, s.l) <= w.r`` and ``t + d/speed <= s.p + s.phi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.entities import Task, Worker
from repro.geo import GridIndex, KDTree, Point

IndexKind = Literal["kdtree", "grid", "dense", "auto"]

#: Below this many worker-task cells the exhaustive scan beats building a
#: spatial index.  Raised alongside the flow substrate rewrite: the dense
#: matrices it feeds are cheap up to well past the paper's instance sizes.
DENSE_SCAN_THRESHOLD = 4_096


@dataclass(frozen=True)
class CandidatePair:
    """One feasible worker-task pair with its distance."""

    worker_index: int
    task_index: int
    distance_km: float


def _pair_if_feasible(
    worker: Worker,
    worker_index: int,
    task: Task,
    task_index: int,
    distance_km: float,
    current_time: float,
) -> CandidatePair | None:
    if distance_km > worker.reachable_km:
        return None
    if current_time + distance_km / worker.speed_kmh > task.expiry_time:
        return None
    return CandidatePair(worker_index, task_index, distance_km)


def _dense_pairs(
    workers: list[Worker], tasks: list[Task], current_time: float
) -> list[CandidatePair]:
    pairs = []
    for wi, worker in enumerate(workers):
        for ti, task in enumerate(tasks):
            pair = _pair_if_feasible(
                worker, wi, task, ti,
                worker.location.distance_to(task.location), current_time,
            )
            if pair is not None:
                pairs.append(pair)
    return pairs


def _indexed_pairs(
    workers: list[Worker],
    tasks: list[Task],
    current_time: float,
    kind: IndexKind,
) -> list[CandidatePair]:
    entries: list[tuple[Point, int]] = [(t.location, i) for i, t in enumerate(tasks)]
    if kind == "kdtree":
        index: KDTree[int] | GridIndex[int] = KDTree(entries)
    else:
        # Cell size near the median radius keeps bucket scans short.
        radii = sorted(w.reachable_km for w in workers)
        cell = max(radii[len(radii) // 2], 1e-6) if radii else 1.0
        grid: GridIndex[int] = GridIndex(cell_size_km=cell)
        grid.insert_many(entries)
        index = grid
    pairs = []
    for wi, worker in enumerate(workers):
        for point, ti in index.query_radius(worker.location, worker.reachable_km):
            pair = _pair_if_feasible(
                worker, wi, tasks[ti], ti,
                worker.location.distance_to(point), current_time,
            )
            if pair is not None:
                pairs.append(pair)
    pairs.sort(key=lambda p: (p.worker_index, p.task_index))
    return pairs


def candidate_pairs(
    workers: list[Worker],
    tasks: list[Task],
    current_time: float,
    index: IndexKind = "kdtree",
) -> list[CandidatePair]:
    """Enumerate all feasible worker-task pairs, sorted by (worker, task).

    Parameters
    ----------
    index:
        ``"kdtree"`` (default) or ``"grid"`` query a spatial index built
        over the task locations; ``"dense"`` is the exhaustive scan used as
        the correctness oracle and for tiny instances; ``"auto"`` scans
        exhaustively below :data:`DENSE_SCAN_THRESHOLD` cells and uses the
        kd-tree beyond it.
    """
    if index not in ("kdtree", "grid", "dense", "auto"):
        raise ValueError(f"unknown index kind {index!r}")
    if not workers or not tasks:
        return []
    if index == "auto":
        index = (
            "dense"
            if len(workers) * len(tasks) <= DENSE_SCAN_THRESHOLD
            else "kdtree"
        )
    if index == "dense":
        return _dense_pairs(workers, tasks, current_time)
    return _indexed_pairs(workers, tasks, current_time, index)
