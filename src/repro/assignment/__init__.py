"""Task-assignment algorithms (paper Section IV).

* :class:`MTAAssigner` — Maximum Task Assignment baseline (max flow only);
* :class:`IAAssigner` — basic Influence-aware Assignment (MCMF with cost
  ``1/(if + 1)``);
* :class:`EIAAssigner` — Entropy-based IA (cost ``(s.e + 1)/(if + 1)``);
* :class:`DIAAssigner` — Distance-based IA (cost ``1/(F * if + 1)``);
* :class:`MIAssigner` — Maximum Influence baseline (greedy on influence);
* :class:`NearestNeighborAssigner` — the naive greedy of Figure 1.

All MCMF-based assigners accept an ``engine``:

* ``"mcmf"`` — the from-scratch successive-shortest-path solver on the
  general flow network (:mod:`repro.flow`), exact, readable — the
  correctness reference;
* ``"substrate"`` — the same SSP optimum through the array-native
  bipartite engine (:mod:`repro.flow.bipartite`), an order of magnitude
  faster than ``"mcmf"``;
* ``"dense"`` — a lexicographic reduction to the rectangular assignment
  problem solved by the Jonker-Volgenant implementation in scipy; the
  fallback for very large instances;
* ``"auto"`` (default) — from-scratch substrate up to a size threshold,
  dense beyond it.

All engines are equivalence-tested against each other in the test suite.
"""

from repro.assignment.base import (
    Assigner,
    FeasiblePairs,
    PreparedInstance,
    RoundState,
    compute_feasible,
)
from repro.assignment.candidates import CandidatePair, candidate_pairs
from repro.assignment.hungarian import hungarian, solve_lexicographic_hungarian
from repro.assignment.lexico import LexicographicCostAssigner
from repro.assignment.solvers import (
    solve_lexicographic,
    solve_lexicographic_dense,
    solve_lexicographic_matching,
    solve_lexicographic_mcmf,
    solve_lexicographic_substrate,
)
from repro.assignment.mta import MTAAssigner
from repro.assignment.ia import IAAssigner
from repro.assignment.eia import EIAAssigner
from repro.assignment.dia import DIAAssigner
from repro.assignment.mi import MIAssigner
from repro.assignment.greedy import NearestNeighborAssigner
from repro.assignment.partitioned import PartitionedAssigner

__all__ = [
    "Assigner",
    "FeasiblePairs",
    "PreparedInstance",
    "RoundState",
    "compute_feasible",
    "CandidatePair",
    "candidate_pairs",
    "hungarian",
    "LexicographicCostAssigner",
    "solve_lexicographic",
    "solve_lexicographic_dense",
    "solve_lexicographic_hungarian",
    "solve_lexicographic_matching",
    "solve_lexicographic_mcmf",
    "solve_lexicographic_substrate",
    "MTAAssigner",
    "IAAssigner",
    "EIAAssigner",
    "DIAAssigner",
    "MIAssigner",
    "NearestNeighborAssigner",
    "PartitionedAssigner",
]
