"""Shared assignment machinery: feasibility and per-instance caches.

Feasibility of a worker-task pair (paper Section IV-A):

1. the task is inside the worker's reachable circle:
   ``d(w.l, s.l) <= w.r``;
2. the worker can arrive before expiry:
   ``t + t(w.l, s.l) <= s.p + s.phi``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.data.instance import SCInstance
from repro.entities import Assignment, Task, Worker
from repro.flow.bipartite import MatchingResult
from repro.geo import pairwise_euclidean
from repro.influence import InfluenceModel, entropy_of_tasks


@dataclass(frozen=True)
class FeasiblePairs:
    """The feasibility structure of one instance.

    Attributes
    ----------
    workers / tasks:
        The candidate workers and open tasks, in matrix order.
    distance_km:
        Dense ``C x T`` worker-task distances.
    mask:
        Dense ``C x T`` boolean feasibility matrix.
    """

    workers: tuple[Worker, ...]
    tasks: tuple[Task, ...]
    distance_km: np.ndarray
    mask: np.ndarray

    @property
    def num_feasible(self) -> int:
        """``m`` — the number of available assignments over all workers."""
        return int(self.mask.sum())

    def feasible_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """``(worker_rows, task_columns)`` of all feasible pairs."""
        return np.nonzero(self.mask)


def compute_feasible(
    workers: list[Worker], tasks: list[Task], current_time: float
) -> FeasiblePairs:
    """Evaluate both feasibility conditions for every worker-task pair."""
    if not workers or not tasks:
        return FeasiblePairs(
            workers=tuple(workers),
            tasks=tuple(tasks),
            distance_km=np.zeros((len(workers), len(tasks))),
            mask=np.zeros((len(workers), len(tasks)), dtype=bool),
        )
    distance = pairwise_euclidean(
        [w.location for w in workers], [t.location for t in tasks]
    )
    radius = np.array([w.reachable_km for w in workers])[:, None]
    speed = np.array([w.speed_kmh for w in workers])[:, None]
    deadline = np.array([t.expiry_time for t in tasks])[None, :]
    reachable = distance <= radius
    in_time = current_time + distance / speed <= deadline
    return FeasiblePairs(
        workers=tuple(workers),
        tasks=tuple(tasks),
        distance_km=distance,
        mask=reachable & in_time,
    )


class PreparedInstance:
    """Caches the per-instance structures every algorithm shares.

    The paper's CPU-time metric covers the *assignment* computation; the
    influence matrix is part of the worker-task influence modeling component
    and is computed once per instance, shared by all algorithms.
    """

    def __init__(self, instance: SCInstance, influence: InfluenceModel | None = None) -> None:
        self.instance = instance
        self.influence = influence

    @cached_property
    def feasible(self) -> FeasiblePairs:
        """Feasibility structure of this instance."""
        return compute_feasible(
            self.instance.workers, self.instance.tasks, self.instance.current_time
        )

    @cached_property
    def influence_matrix(self) -> np.ndarray:
        """``if(w, s)`` per candidate worker and task (zeros if no model)."""
        if self.influence is None:
            return np.zeros((len(self.instance.workers), len(self.instance.tasks)))
        return self.influence.influence_matrix(self.instance.workers, self.instance.tasks)

    @cached_property
    def entropy_by_task(self) -> dict[int, float]:
        """Location entropy per task id (for EIA)."""
        return entropy_of_tasks(self.instance.tasks, self.instance.venue_visits)

    def entropy_vector(self) -> np.ndarray:
        """Location entropies aligned with the task axis of the matrices."""
        return np.array(
            [self.entropy_by_task[t.task_id] for t in self.instance.tasks]
        )

    def build_assignment(
        self,
        pairs: "list[tuple[int, int]] | tuple[np.ndarray, np.ndarray] | MatchingResult",
    ) -> Assignment:
        """Materialize an :class:`Assignment` from (worker_row, task_column)
        index pairs, validating feasibility and one-to-one matching.

        Accepts a list of index tuples, a ``(rows, cols)`` pair of index
        arrays, or a :class:`~repro.flow.MatchingResult` directly — the
        array forms validate vectorized and only fall back to the scalar
        walk to reproduce its precise error messages.
        """
        if isinstance(pairs, MatchingResult):
            pairs = (pairs.rows, pairs.cols)
        if (
            isinstance(pairs, tuple)
            and len(pairs) == 2
            and isinstance(pairs[0], np.ndarray)
        ):
            rows = np.asarray(pairs[0], dtype=np.int64)
            columns = np.asarray(pairs[1], dtype=np.int64)
            valid = (
                np.unique(rows).size == rows.size
                and np.unique(columns).size == columns.size
                and (rows.size == 0 or bool(self.feasible.mask[rows, columns].all()))
            )
            if valid:
                assignment = Assignment()
                workers, tasks = self.instance.workers, self.instance.tasks
                for row, column in zip(rows.tolist(), columns.tolist()):
                    assignment.add(tasks[column], workers[row])
                return assignment
            pairs = list(zip(rows.tolist(), columns.tolist()))
        assignment = Assignment()
        used_rows: set[int] = set()
        used_columns: set[int] = set()
        for row, column in pairs:
            if row in used_rows:
                worker = self.instance.workers[row]
                raise ValueError(
                    f"solver assigned worker row {row} "
                    f"(worker id {worker.worker_id}) to more than one task"
                )
            if column in used_columns:
                task = self.instance.tasks[column]
                raise ValueError(
                    f"solver assigned task column {column} "
                    f"(task id {task.task_id}) to more than one worker"
                )
            if not self.feasible.mask[row, column]:
                raise ValueError(
                    f"solver produced infeasible pair (worker row {row}, task column {column})"
                )
            used_rows.add(row)
            used_columns.add(column)
            assignment.add(self.instance.tasks[column], self.instance.workers[row])
        return assignment


class RoundState:
    """Incremental round preparation for online (batched-arrival) loops.

    Rebuilding a :class:`PreparedInstance` from scratch every batch round
    recomputes the distance, feasibility and influence matrices for the
    *whole* pool, although between rounds the pool only gains newly arrived
    workers and newly published tasks (assigned/expired entries merely
    leave).  ``RoundState`` keeps per-worker rows and per-task columns of
    those matrices in growing buffers keyed by (worker, task) identity, so
    each round only computes the rectangles

    * new workers x current tasks, and
    * previously seen workers x new tasks.

    Every cached quantity is time-independent (distances, influence values,
    location entropy); the time-dependent feasibility mask is re-derived
    from the cached distances each round, which keeps results bit-identical
    to a full per-round recomputation.
    """

    def __init__(self, influence: InfluenceModel | None = None) -> None:
        self.influence = influence
        self._row_of: dict[int, int] = {}
        self._col_of: dict[int, int] = {}
        self._row_worker: list[Worker] = []
        self._col_task: list[Task] = []
        self._distance = np.zeros((0, 0))
        self._influence_vals = np.zeros((0, 0))
        self._valid = np.zeros((0, 0), dtype=bool)
        self._entropy: dict[int, float] = {}

    # ---------------------------------------------------------------- buffers
    def _ensure_capacity(self, rows: int, columns: int) -> None:
        grown_rows = max(self._distance.shape[0], 4)
        while grown_rows < rows:
            grown_rows *= 2
        grown_columns = max(self._distance.shape[1], 4)
        while grown_columns < columns:
            grown_columns *= 2
        if (grown_rows, grown_columns) == self._distance.shape:
            return
        old_rows, old_columns = self._distance.shape

        def regrow(buffer: np.ndarray) -> np.ndarray:
            fresh = np.zeros((grown_rows, grown_columns), dtype=buffer.dtype)
            fresh[:old_rows, :old_columns] = buffer
            return fresh

        self._distance = regrow(self._distance)
        self._influence_vals = regrow(self._influence_vals)
        self._valid = regrow(self._valid)

    def _register(self, workers: Sequence[Worker], tasks: Sequence[Task]) -> tuple[list[int], list[int]]:
        """Assign buffer rows/columns to unseen entities; returns the
        positions (within ``workers`` / ``tasks``) whose cells need filling."""
        new_worker_positions: list[int] = []
        for position, worker in enumerate(workers):
            row = self._row_of.get(worker.worker_id)
            if row is None:
                row = len(self._row_worker)
                self._row_of[worker.worker_id] = row
                self._row_worker.append(worker)
                new_worker_positions.append(position)
            elif self._row_worker[row] != worker:
                # Same id, different attributes: every cached cell of the
                # row is stale, including columns absent from this round.
                self._row_worker[row] = worker
                self._valid[row, :] = False
                new_worker_positions.append(position)
        new_task_positions: list[int] = []
        for position, task in enumerate(tasks):
            column = self._col_of.get(task.task_id)
            if column is None:
                column = len(self._col_task)
                self._col_of[task.task_id] = column
                self._col_task.append(task)
                new_task_positions.append(position)
            elif self._col_task[column] != task:
                self._col_task[column] = task
                self._valid[:, column] = False
                self._entropy.pop(task.task_id, None)
                new_task_positions.append(position)
        self._ensure_capacity(len(self._row_worker), len(self._col_task))
        return new_worker_positions, new_task_positions

    def _fill(self, workers: Sequence[Worker], tasks: Sequence[Task],
              rows: np.ndarray, columns: np.ndarray) -> None:
        """Compute and store the ``workers x tasks`` rectangle."""
        if len(workers) == 0 or len(tasks) == 0:
            return
        grid = np.ix_(rows, columns)
        self._distance[grid] = pairwise_euclidean(
            [w.location for w in workers], [t.location for t in tasks]
        )
        if self.influence is not None:
            self._influence_vals[grid] = self.influence.influence_matrix(
                list(workers), list(tasks)
            )
        self._valid[grid] = True

    # ------------------------------------------------------------------- API
    def prepare(self, instance: SCInstance) -> PreparedInstance:
        """A :class:`PreparedInstance` for this round, with the feasibility,
        influence and entropy caches pre-populated incrementally."""
        workers, tasks = instance.workers, instance.tasks
        prepared = PreparedInstance(instance, self.influence)
        if not workers or not tasks:
            return prepared

        new_worker_positions, new_task_positions = self._register(workers, tasks)
        rows = np.fromiter(
            (self._row_of[w.worker_id] for w in workers), dtype=np.int64, count=len(workers)
        )
        columns = np.fromiter(
            (self._col_of[t.task_id] for t in tasks), dtype=np.int64, count=len(tasks)
        )

        # Rectangle 1: new workers x every current task.
        self._fill(
            [workers[p] for p in new_worker_positions], tasks,
            rows[new_worker_positions], columns,
        )
        # Rectangle 2: previously seen workers x new tasks.
        fresh_rows = set(new_worker_positions)
        old_positions = [p for p in range(len(workers)) if p not in fresh_rows]
        self._fill(
            [workers[p] for p in old_positions],
            [tasks[p] for p in new_task_positions],
            rows[old_positions], columns[new_task_positions],
        )
        # Safety net: any cell still unfilled (cannot happen while pools are
        # append-only, but identity invalidation keeps this exact).
        sub_valid = self._valid[np.ix_(rows, columns)]
        if not sub_valid.all():
            stale = np.nonzero(~sub_valid.all(axis=1))[0]
            self._fill([workers[p] for p in stale], tasks, rows[stale], columns)

        distance = self._distance[np.ix_(rows, columns)]
        radius = np.array([w.reachable_km for w in workers])[:, None]
        speed = np.array([w.speed_kmh for w in workers])[:, None]
        deadline = np.array([t.expiry_time for t in tasks])[None, :]
        mask = (distance <= radius) & (
            instance.current_time + distance / speed <= deadline
        )
        prepared.__dict__["feasible"] = FeasiblePairs(
            workers=tuple(workers),
            tasks=tuple(tasks),
            distance_km=distance,
            mask=mask,
        )
        prepared.__dict__["influence_matrix"] = self._influence_vals[
            np.ix_(rows, columns)
        ]

        unseen = [t for t in tasks if t.task_id not in self._entropy]
        if unseen:
            self._entropy.update(entropy_of_tasks(unseen, instance.venue_visits))
        prepared.__dict__["entropy_by_task"] = {
            t.task_id: self._entropy[t.task_id] for t in tasks
        }
        return prepared


class Assigner(abc.ABC):
    """Interface of every task-assignment algorithm."""

    #: Short name used in experiment tables ("MTA", "IA", ...).
    name: str = "base"

    @abc.abstractmethod
    def assign(self, prepared: PreparedInstance) -> Assignment:
        """Compute a task assignment for the prepared instance."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
