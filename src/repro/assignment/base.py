"""Shared assignment machinery: feasibility and per-instance caches.

Feasibility of a worker-task pair (paper Section IV-A):

1. the task is inside the worker's reachable circle:
   ``d(w.l, s.l) <= w.r``;
2. the worker can arrive before expiry:
   ``t + t(w.l, s.l) <= s.p + s.phi``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.data.instance import SCInstance
from repro.entities import Assignment, Task, Worker
from repro.geo import pairwise_euclidean
from repro.influence import InfluenceModel, entropy_of_tasks


@dataclass(frozen=True)
class FeasiblePairs:
    """The feasibility structure of one instance.

    Attributes
    ----------
    workers / tasks:
        The candidate workers and open tasks, in matrix order.
    distance_km:
        Dense ``C x T`` worker-task distances.
    mask:
        Dense ``C x T`` boolean feasibility matrix.
    """

    workers: tuple[Worker, ...]
    tasks: tuple[Task, ...]
    distance_km: np.ndarray
    mask: np.ndarray

    @property
    def num_feasible(self) -> int:
        """``m`` — the number of available assignments over all workers."""
        return int(self.mask.sum())

    def feasible_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """``(worker_rows, task_columns)`` of all feasible pairs."""
        return np.nonzero(self.mask)


def compute_feasible(
    workers: list[Worker], tasks: list[Task], current_time: float
) -> FeasiblePairs:
    """Evaluate both feasibility conditions for every worker-task pair."""
    if not workers or not tasks:
        return FeasiblePairs(
            workers=tuple(workers),
            tasks=tuple(tasks),
            distance_km=np.zeros((len(workers), len(tasks))),
            mask=np.zeros((len(workers), len(tasks)), dtype=bool),
        )
    distance = pairwise_euclidean(
        [w.location for w in workers], [t.location for t in tasks]
    )
    radius = np.array([w.reachable_km for w in workers])[:, None]
    speed = np.array([w.speed_kmh for w in workers])[:, None]
    deadline = np.array([t.expiry_time for t in tasks])[None, :]
    reachable = distance <= radius
    in_time = current_time + distance / speed <= deadline
    return FeasiblePairs(
        workers=tuple(workers),
        tasks=tuple(tasks),
        distance_km=distance,
        mask=reachable & in_time,
    )


class PreparedInstance:
    """Caches the per-instance structures every algorithm shares.

    The paper's CPU-time metric covers the *assignment* computation; the
    influence matrix is part of the worker-task influence modeling component
    and is computed once per instance, shared by all algorithms.
    """

    def __init__(self, instance: SCInstance, influence: InfluenceModel | None = None) -> None:
        self.instance = instance
        self.influence = influence

    @cached_property
    def feasible(self) -> FeasiblePairs:
        """Feasibility structure of this instance."""
        return compute_feasible(
            self.instance.workers, self.instance.tasks, self.instance.current_time
        )

    @cached_property
    def influence_matrix(self) -> np.ndarray:
        """``if(w, s)`` per candidate worker and task (zeros if no model)."""
        if self.influence is None:
            return np.zeros((len(self.instance.workers), len(self.instance.tasks)))
        return self.influence.influence_matrix(self.instance.workers, self.instance.tasks)

    @cached_property
    def entropy_by_task(self) -> dict[int, float]:
        """Location entropy per task id (for EIA)."""
        return entropy_of_tasks(self.instance.tasks, self.instance.venue_visits)

    def entropy_vector(self) -> np.ndarray:
        """Location entropies aligned with the task axis of the matrices."""
        return np.array(
            [self.entropy_by_task[t.task_id] for t in self.instance.tasks]
        )

    def build_assignment(self, pairs: list[tuple[int, int]]) -> Assignment:
        """Materialize an :class:`Assignment` from (worker_row, task_column)
        index pairs, validating feasibility."""
        assignment = Assignment()
        for row, column in pairs:
            if not self.feasible.mask[row, column]:
                raise ValueError(
                    f"solver produced infeasible pair (worker row {row}, task column {column})"
                )
            assignment.add(self.instance.tasks[column], self.instance.workers[row])
        return assignment


class Assigner(abc.ABC):
    """Interface of every task-assignment algorithm."""

    #: Short name used in experiment tables ("MTA", "IA", ...).
    name: str = "base"

    @abc.abstractmethod
    def assign(self, prepared: PreparedInstance) -> Assignment:
        """Compute a task assignment for the prepared instance."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
