"""Lexicographic (max cardinality, then min cost) matching solvers.

The ITA objective is lexicographic: maximize ``|A|`` first, minimize total
edge cost second.  Three exact solvers are provided:

* :func:`solve_lexicographic_mcmf` — builds the paper's Figure-4 flow graph
  (bulk :meth:`~repro.flow.FlowNetwork.add_edges`, no Python loops) and
  runs the from-scratch successive-shortest-path MCMF
  (:class:`repro.flow.MinCostMaxFlow`).  Since every augmentation increases
  flow by one and SSP minimizes cost at maximum flow, the result is exactly
  the lexicographic optimum.

* :func:`solve_lexicographic_substrate` — the same SSP optimum through the
  vectorized bipartite engine (:mod:`repro.flow.bipartite`), which skips
  the generic residual-graph walk; the fast from-scratch path.

* :func:`solve_lexicographic_dense` — embeds the problem in a rectangular
  assignment problem: infeasible pairs get a penalty ``BIG`` chosen so that
  one avoided penalty always outweighs the sum of all real costs; scipy's
  Jonker-Volgenant solver then returns a matching that first maximizes the
  number of feasible pairs and then minimizes their cost.  Equivalent to
  the from-scratch solvers (tested); the fallback for huge instances.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.exceptions import FlowError
from repro.flow import FlowNetwork, MinCostMaxFlow
from repro.flow.bipartite import MatchingResult, WarmStart, min_cost_matching


def solve_lexicographic_dense(
    cost: np.ndarray, feasible: np.ndarray
) -> list[tuple[int, int]]:
    """Solve max-cardinality-then-min-cost matching on a dense cost matrix.

    Parameters
    ----------
    cost:
        ``C x T`` non-negative costs (entries at infeasible positions are
        ignored).
    feasible:
        ``C x T`` boolean mask of allowed pairs.

    Returns
    -------
    list of ``(worker_row, task_column)`` pairs, feasible only.
    """
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise ValueError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    if cost.size == 0 or not feasible.any():
        return []
    finite_costs = cost[feasible]
    if np.any(finite_costs < 0):
        raise ValueError("costs must be non-negative")
    max_real = float(finite_costs.max(initial=0.0))
    matchable = min(cost.shape)
    big = (max_real + 1.0) * (matchable + 1)
    padded = np.where(feasible, cost, big)
    rows, columns = linear_sum_assignment(padded)
    return [
        (int(r), int(c)) for r, c in zip(rows, columns) if feasible[r, c]
    ]


def build_figure4_network(
    feasible: np.ndarray, cost: np.ndarray | None = None
) -> tuple[FlowNetwork, np.ndarray, np.ndarray, np.ndarray]:
    """Build the paper's Figure-4 flow network over a feasibility mask.

    Node layout: ``0`` = source, ``1..C`` = workers, ``C+1..C+T`` = tasks,
    ``C+T+1`` = sink.  All capacities are 1; worker-task edges carry the
    given costs (zero when ``cost`` is ``None``); source/sink edges cost 0.
    Returns ``(network, rows, columns, pair_edges)`` with the feasible pairs
    in row-major order aligned with their forward edge ids — the shared
    scaffolding of the max-flow and MCMF consumers.
    """
    n_workers, n_tasks = feasible.shape
    sink = n_workers + n_tasks + 1
    network = FlowNetwork(num_nodes=n_workers + n_tasks + 2)
    network.add_edges(
        np.zeros(n_workers, dtype=np.int64),
        1 + np.arange(n_workers),
        np.ones(n_workers, dtype=np.int64),
    )
    network.add_edges(
        1 + n_workers + np.arange(n_tasks),
        np.full(n_tasks, sink, dtype=np.int64),
        np.ones(n_tasks, dtype=np.int64),
    )
    rows, columns = np.nonzero(feasible)
    pair_edges = network.add_edges(
        1 + rows,
        1 + n_workers + columns,
        np.ones(len(rows), dtype=np.int64),
        None if cost is None else cost[rows, columns],
    )
    return network, rows, columns, pair_edges


def solve_lexicographic_mcmf(
    cost: np.ndarray, feasible: np.ndarray
) -> list[tuple[int, int]]:
    """Solve the same problem through the Figure-4 flow network."""
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise ValueError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    if cost.size == 0 or not feasible.any():
        return []
    if np.any(cost[feasible] < 0):
        raise ValueError("costs must be non-negative")

    network, rows, columns, pair_edges = build_figure4_network(feasible, cost)
    MinCostMaxFlow(network).solve(0, network.num_nodes - 1)
    used = network.flows(pair_edges) > 0
    return list(zip(rows[used].tolist(), columns[used].tolist()))


def solve_lexicographic_substrate(
    cost: np.ndarray, feasible: np.ndarray
) -> list[tuple[int, int]]:
    """Solve through the array-native bipartite SSP engine.

    Same exact optimum as :func:`solve_lexicographic_mcmf` (the matcher is
    the network solver specialized to the Figure-4 structure), an order of
    magnitude faster; pairs come back ascending by worker row.
    """
    try:
        return min_cost_matching(cost, feasible).pairs
    except FlowError as error:
        # Siblings in this module report bad inputs as ValueError.
        raise ValueError(str(error)) from error


def solve_lexicographic(
    cost: np.ndarray,
    feasible: np.ndarray,
    engine: str = "auto",
    dense_threshold: int = 60_000,
) -> list[tuple[int, int]]:
    """Dispatch between the solvers.

    ``"auto"`` uses the from-scratch array substrate below
    ``dense_threshold`` matrix cells and the dense scipy reduction above it
    (the threshold tripled when the substrate went array-native);
    ``"substrate"`` forces the vectorized bipartite SSP engine, ``"mcmf"``
    the general flow-network solver, and ``"hungarian"`` the from-scratch
    Kuhn-Munkres engine (scipy-free, same optimum).
    """
    if engine not in ("auto", "dense", "mcmf", "hungarian", "substrate"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "hungarian":
        from repro.assignment.hungarian import solve_lexicographic_hungarian

        return solve_lexicographic_hungarian(cost, feasible)
    if engine == "mcmf":
        return solve_lexicographic_mcmf(cost, feasible)
    if engine == "substrate" or (
        engine == "auto" and np.asarray(cost).size <= dense_threshold
    ):
        return solve_lexicographic_substrate(cost, feasible)
    return solve_lexicographic_dense(cost, feasible)


def solve_lexicographic_matching(
    cost: np.ndarray,
    feasible: np.ndarray,
    engine: str = "auto",
    dense_threshold: int = 60_000,
    *,
    warm: WarmStart | None = None,
    worker_ids: Sequence[Hashable] | None = None,
    task_ids: Sequence[Hashable] | None = None,
) -> MatchingResult:
    """Array-native variant of :func:`solve_lexicographic`.

    Returns the full :class:`~repro.flow.MatchingResult` — ``(rows, cols)``
    int64 arrays instead of a list of tuples — so downstream merge paths
    never re-loop over Python pairs.  On the substrate engine the optional
    ``warm`` state (with its worker/task ids) is threaded straight through
    to :func:`~repro.flow.min_cost_matching`; the list-based engines have no
    incremental structure to seed, so they ignore it and report their
    cardinality as the augmentation count (each SSP augmentation matches
    exactly one more pair, so the two measures coincide on cold solves).

    A *tracked* solve — one passing ``warm`` or the id vectors — pins
    ``"auto"`` to the substrate engine even above ``dense_threshold``:
    falling through to the scipy reduction there would drop the carry and
    turn warm streaming into a silent no-op exactly at the instance sizes
    where it pays.  Explicit engine choices are honored as given (and
    return ``warm=None``, which callers treat as staying cold).
    """
    if engine not in ("auto", "dense", "mcmf", "hungarian", "substrate"):
        raise ValueError(f"unknown engine {engine!r}")
    tracked = (
        warm is not None or worker_ids is not None or task_ids is not None
    )
    if engine == "substrate" or (
        engine == "auto"
        and (tracked or np.asarray(cost).size <= dense_threshold)
    ):
        try:
            return min_cost_matching(
                cost, feasible,
                warm=warm, worker_ids=worker_ids, task_ids=task_ids,
            )
        except FlowError as error:
            raise ValueError(str(error)) from error
    pairs = solve_lexicographic(cost, feasible, engine, dense_threshold)
    rows = np.fromiter((r for r, _ in pairs), dtype=np.int64, count=len(pairs))
    cols = np.fromiter((c for _, c in pairs), dtype=np.int64, count=len(pairs))
    cost = np.asarray(cost, dtype=float)
    total = float(cost[rows, cols].sum()) if rows.size else 0.0
    return MatchingResult(
        rows=rows, cols=cols, total_cost=total, augmentations=len(pairs)
    )
