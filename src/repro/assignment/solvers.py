"""Lexicographic (max cardinality, then min cost) matching solvers.

The ITA objective is lexicographic: maximize ``|A|`` first, minimize total
edge cost second.  Two exact solvers are provided:

* :func:`solve_lexicographic_mcmf` — builds the paper's Figure-4 flow graph
  and runs the from-scratch successive-shortest-path MCMF
  (:class:`repro.flow.MinCostMaxFlow`).  Since every augmentation increases
  flow by one and SSP minimizes cost at maximum flow, the result is exactly
  the lexicographic optimum.

* :func:`solve_lexicographic_dense` — embeds the problem in a rectangular
  assignment problem: infeasible pairs get a penalty ``BIG`` chosen so that
  one avoided penalty always outweighs the sum of all real costs; scipy's
  Jonker-Volgenant solver then returns a matching that first maximizes the
  number of feasible pairs and then minimizes their cost.  Equivalent to the
  MCMF solver (tested), orders of magnitude faster at paper scale.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.flow import FlowNetwork, MinCostMaxFlow


def solve_lexicographic_dense(
    cost: np.ndarray, feasible: np.ndarray
) -> list[tuple[int, int]]:
    """Solve max-cardinality-then-min-cost matching on a dense cost matrix.

    Parameters
    ----------
    cost:
        ``C x T`` non-negative costs (entries at infeasible positions are
        ignored).
    feasible:
        ``C x T`` boolean mask of allowed pairs.

    Returns
    -------
    list of ``(worker_row, task_column)`` pairs, feasible only.
    """
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise ValueError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    if cost.size == 0 or not feasible.any():
        return []
    finite_costs = cost[feasible]
    if np.any(finite_costs < 0):
        raise ValueError("costs must be non-negative")
    max_real = float(finite_costs.max(initial=0.0))
    matchable = min(cost.shape)
    big = (max_real + 1.0) * (matchable + 1)
    padded = np.where(feasible, cost, big)
    rows, columns = linear_sum_assignment(padded)
    return [
        (int(r), int(c)) for r, c in zip(rows, columns) if feasible[r, c]
    ]


def solve_lexicographic_mcmf(
    cost: np.ndarray, feasible: np.ndarray
) -> list[tuple[int, int]]:
    """Solve the same problem through the Figure-4 flow network.

    Node layout: ``0`` = source, ``1..C`` = workers, ``C+1..C+T`` = tasks,
    ``C+T+1`` = sink.  All capacities are 1; worker-task edges carry the
    given costs; source/sink edges cost 0.
    """
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise ValueError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    n_workers, n_tasks = cost.shape
    if cost.size == 0 or not feasible.any():
        return []
    if np.any(cost[feasible] < 0):
        raise ValueError("costs must be non-negative")

    source = 0
    sink = n_workers + n_tasks + 1
    network = FlowNetwork(num_nodes=n_workers + n_tasks + 2)
    for row in range(n_workers):
        network.add_edge(source, 1 + row, capacity=1, cost=0.0)
    for column in range(n_tasks):
        network.add_edge(1 + n_workers + column, sink, capacity=1, cost=0.0)
    edge_of_pair: dict[int, tuple[int, int]] = {}
    rows, columns = np.nonzero(feasible)
    for row, column in zip(rows, columns):
        edge_id = network.add_edge(
            1 + int(row), 1 + n_workers + int(column), capacity=1, cost=float(cost[row, column])
        )
        edge_of_pair[edge_id] = (int(row), int(column))

    MinCostMaxFlow(network).solve(source, sink)
    return [
        pair for edge_id, pair in edge_of_pair.items() if network.flow_on(edge_id) > 0
    ]


def solve_lexicographic(
    cost: np.ndarray,
    feasible: np.ndarray,
    engine: str = "auto",
    dense_threshold: int = 20_000,
) -> list[tuple[int, int]]:
    """Dispatch between the solvers.

    ``"auto"`` uses the from-scratch MCMF below ``dense_threshold`` matrix
    cells and the dense reduction above it; ``"hungarian"`` selects the
    from-scratch Kuhn-Munkres engine (scipy-free, same optimum).
    """
    if engine not in ("auto", "dense", "mcmf", "hungarian"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "hungarian":
        from repro.assignment.hungarian import solve_lexicographic_hungarian

        return solve_lexicographic_hungarian(cost, feasible)
    if engine == "mcmf" or (engine == "auto" and np.asarray(cost).size <= dense_threshold):
        return solve_lexicographic_mcmf(cost, feasible)
    return solve_lexicographic_dense(cost, feasible)
