"""A from-scratch Hungarian algorithm (Kuhn-Munkres, JV potentials form).

The dense lexicographic engine in :mod:`repro.assignment.solvers` leans on
scipy's rectangular assignment solver; this module provides the same exact
optimum without scipy — the classic O(n^2 * m) shortest-augmenting-path
formulation with dual potentials — both as an independent correctness
witness for the other two engines and as the reference implementation
discussed in DESIGN.md §5.

:func:`hungarian` solves the *complete* rectangular problem (every row gets
a column); :func:`solve_lexicographic_hungarian` layers the same BIG-penalty
reduction the dense engine uses, turning max-cardinality-then-min-cost into
a single complete assignment.
"""

from __future__ import annotations

import numpy as np


def hungarian(cost: np.ndarray) -> list[int]:
    """Minimum-cost complete assignment of rows to distinct columns.

    Parameters
    ----------
    cost:
        ``n x m`` matrix with ``n <= m`` and finite entries.

    Returns
    -------
    ``column_of_row`` — for each row, its assigned column.  Total cost is
    minimal over all complete assignments.

    Raises
    ------
    ValueError
        If ``n > m`` or the matrix contains non-finite entries.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost must be 2-d, got shape {cost.shape}")
    n, m = cost.shape
    if n == 0:
        return []
    if n > m:
        raise ValueError(f"need rows <= columns, got {n} x {m} (transpose first)")
    if not np.isfinite(cost).all():
        raise ValueError("cost matrix must be finite")

    infinity = float("inf")
    # 1-indexed duals and matching, as in the classical presentation:
    # u[i] row potential, v[j] column potential, p[j] = row matched to
    # column j (0 = free), way[j] = previous column on the alternating path.
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    p = np.zeros(m + 1, dtype=int)
    way = np.zeros(m + 1, dtype=int)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(m + 1, infinity)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = infinity
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                current = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Unwind the alternating path, flipping matched edges.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    column_of_row = [0] * n
    for j in range(1, m + 1):
        if p[j] != 0:
            column_of_row[p[j] - 1] = j - 1
    return column_of_row


def solve_lexicographic_hungarian(
    cost: np.ndarray, feasible: np.ndarray
) -> list[tuple[int, int]]:
    """Max-cardinality-then-min-cost matching via the Hungarian algorithm.

    Same contract as :func:`repro.assignment.solvers.solve_lexicographic_dense`
    (and equivalence-tested against it): infeasible pairs are padded with a
    penalty large enough that avoiding one always beats any real-cost total,
    then matched pairs landing on a penalty cell are dropped.
    """
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise ValueError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    if cost.size == 0 or not feasible.any():
        return []
    real = cost[feasible]
    if np.any(real < 0):
        raise ValueError("costs must be non-negative")
    matchable = min(cost.shape)
    big = (float(real.max(initial=0.0)) + 1.0) * (matchable + 1)
    padded = np.where(feasible, cost, big)

    transposed = padded.shape[0] > padded.shape[1]
    if transposed:
        padded = padded.T
    columns = hungarian(padded)
    pairs = []
    for row, column in enumerate(columns):
        r, c = (column, row) if transposed else (row, column)
        if feasible[r, c]:
            pairs.append((r, c))
    return pairs
