"""Geographic-partition assignment — a scalability extension.

The flow/assignment solvers are exact but super-linear in the instance
size; the standard scaling remedy in spatial crowdsourcing (see the
authors' follow-up, "Task allocation with geographic partition", CIKM'21)
is to split the area into cells, solve each cell independently, and merge.

This module holds the **partition/merge core** shared by the two spatial
decompositions in the library:

* :func:`bucket_pools` groups workers and tasks by an arbitrary spatial
  key; :func:`merge_assignments` folds per-bucket assignments back together
  in deterministic sorted-key order (so results never depend on dict
  insertion order — golden-fixture determinism).
* :class:`PartitionedAssigner` applies them offline with a plain
  square-cell key: workers near a cell border may lose access to feasible
  tasks in the neighbouring cell, so the result is a (usually slight)
  under-assignment relative to the global optimum — the classic
  quality/latency trade-off, quantified in
  ``benchmarks/bench_substrate_partition.py``.
* The streaming :class:`~repro.stream.shards.ShardLayout` /
  ``ShardExecutor`` pair applies the same core with a radius-aware
  component key whose buckets never split a feasible pair, making the
  merge exact rather than an approximation.

The wrapper preserves the per-instance invariants (each worker and task at
most once) by construction, since the buckets partition both sets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

from repro.assignment.base import Assigner, PreparedInstance
from repro.entities import Assignment, Task, Worker
from repro.geo import Point, cell_key


def bucket_pools(
    workers: Iterable[Worker],
    tasks: Iterable[Task],
    key_of: Callable[[Point], Hashable],
) -> dict[Hashable, tuple[list[Worker], list[Task]]]:
    """Group workers and tasks by the spatial key of their location.

    The shared partition step of every spatial decomposition: offline
    cells, streaming shards.  Input order is preserved inside each bucket.
    """
    buckets: dict[Hashable, tuple[list[Worker], list[Task]]] = defaultdict(
        lambda: ([], [])
    )
    for worker in workers:
        buckets[key_of(worker.location)][0].append(worker)
    for task in tasks:
        buckets[key_of(task.location)][1].append(task)
    return buckets


def merge_assignments(parts: Sequence[Assignment]) -> Assignment:
    """Fold per-bucket assignments into one, in the order given.

    Callers pass parts in sorted bucket-key order, which makes the merged
    pair order a pure function of the event data — never of dict insertion
    or pool-scheduling order.
    """
    merged = Assignment()
    for part in parts:
        for pair in part:
            merged.add(pair.task, pair.worker)
    return merged


class PartitionedAssigner(Assigner):
    """Runs a base assigner independently per geographic cell.

    Parameters
    ----------
    base:
        The algorithm solved inside each cell (any :class:`Assigner`).
    cell_km:
        Side length of the square partition cells.  Smaller cells mean
        faster, more parallelizable solves but more border loss; a good
        default is the workers' reachable radius.
    """

    def __init__(self, base: Assigner, cell_km: float = 25.0) -> None:
        if cell_km <= 0:
            raise ValueError(f"cell_km must be positive, got {cell_km}")
        self.base = base
        self.cell_km = cell_km
        self.name = f"{base.name}@{cell_km:g}km"

    def assign(self, prepared: PreparedInstance) -> Assignment:
        instance = prepared.instance
        buckets = bucket_pools(
            instance.workers,
            instance.tasks,
            lambda location: cell_key(location.x, location.y, self.cell_km),
        )
        parts: list[Assignment] = []
        # Cells solve in key order: the merge result must not depend on the
        # insertion order of the buckets (golden-fixture determinism).
        for _key, (workers, tasks) in sorted(buckets.items()):
            if not workers or not tasks:
                continue
            sub_instance = instance.with_workers(workers).with_tasks(tasks)
            sub_prepared = PreparedInstance(sub_instance, prepared.influence)
            parts.append(self.base.assign(sub_prepared))
        return merge_assignments(parts)
