"""Geographic-partition assignment — a scalability extension.

The flow/assignment solvers are exact but super-linear in the instance
size; the standard scaling remedy in spatial crowdsourcing (see the
authors' follow-up, "Task allocation with geographic partition", CIKM'21)
is to split the area into cells, solve each cell independently, and merge.

:class:`PartitionedAssigner` wraps any base :class:`~repro.assignment.base.
Assigner`: tasks are bucketed into square cells, each worker joins the cell
containing them, and the base algorithm runs per cell on a sub-instance.
Workers near a cell border may lose access to feasible tasks in the
neighbouring cell, so the result is a (usually slight) under-assignment
relative to the global optimum — the classic quality/latency trade-off,
quantified in ``benchmarks/bench_substrate_partition.py``.

The wrapper preserves the per-instance invariants (each worker and task at
most once) by construction, since the cells partition both sets.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.assignment.base import Assigner, PreparedInstance
from repro.entities import Assignment


class PartitionedAssigner(Assigner):
    """Runs a base assigner independently per geographic cell.

    Parameters
    ----------
    base:
        The algorithm solved inside each cell (any :class:`Assigner`).
    cell_km:
        Side length of the square partition cells.  Smaller cells mean
        faster, more parallelizable solves but more border loss; a good
        default is the workers' reachable radius.
    """

    def __init__(self, base: Assigner, cell_km: float = 25.0) -> None:
        if cell_km <= 0:
            raise ValueError(f"cell_km must be positive, got {cell_km}")
        self.base = base
        self.cell_km = cell_km
        self.name = f"{base.name}@{cell_km:g}km"

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_km), math.floor(y / self.cell_km))

    def assign(self, prepared: PreparedInstance) -> Assignment:
        instance = prepared.instance
        cells: dict[tuple[int, int], tuple[list, list]] = defaultdict(
            lambda: ([], [])
        )
        for worker in instance.workers:
            cells[self._cell_of(worker.location.x, worker.location.y)][0].append(worker)
        for task in instance.tasks:
            cells[self._cell_of(task.location.x, task.location.y)][1].append(task)

        merged = Assignment()
        # Cells solve in key order: the merge result must not depend on the
        # insertion order of the dicts above (golden-fixture determinism).
        for _key, (workers, tasks) in sorted(cells.items()):
            if not workers or not tasks:
                continue
            sub_instance = instance.with_workers(workers).with_tasks(tasks)
            sub_prepared = PreparedInstance(sub_instance, prepared.influence)
            for pair in self.base.assign(sub_prepared):
                merged.add(pair.task, pair.worker)
        return merged
