"""The naive nearest-worker greedy of the paper's running example (Fig. 1).

Tasks are processed in publication order; each is given to the nearest
still-free feasible worker.  Kept as an illustrative baseline — the
introduction uses it to motivate influence-aware assignment.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import Assigner, PreparedInstance
from repro.entities import Assignment


class NearestNeighborAssigner(Assigner):
    """Greedy nearest-worker assignment."""

    name = "NN"

    def assign(self, prepared: PreparedInstance) -> Assignment:
        feasible = prepared.feasible
        if feasible.num_feasible == 0:
            return Assignment()
        order = np.argsort([t.publication_time for t in feasible.tasks], kind="stable")
        used_workers: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for column in order:
            column = int(column)
            candidates = np.nonzero(feasible.mask[:, column])[0]
            candidates = [c for c in candidates if int(c) not in used_workers]
            if not candidates:
                continue
            distances = feasible.distance_km[candidates, column]
            best = int(candidates[int(np.argmin(distances))])
            used_workers.add(best)
            pairs.append((best, column))
        return prepared.build_assignment(pairs)
