"""DIA — Distance-based Influence-aware Assignment (paper Section IV-C).

Adapts IA by discounting influence with the worker's travel cost:

    w(n_i, n_{|W|+j}) = 1 / (F(w_i.l, s_j.l) * if(w_i, s_j) + 1)
    F(w.l, s.l) = 1 - min(1, d(w.l, s.l) / w.r)

Closer workers keep more of their influence and therefore get higher
priority, which empirically minimizes average travel cost.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import PreparedInstance
from repro.assignment.lexico import LexicographicCostAssigner


class DIAAssigner(LexicographicCostAssigner):
    """Distance-discounted influence-aware MCMF assignment."""

    name = "DIA"

    def edge_costs(self, prepared: PreparedInstance) -> np.ndarray:
        """The DIA cost matrix ``1 / (F * if + 1)``."""
        feasible = prepared.feasible
        radius = np.array([w.reachable_km for w in feasible.workers])[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(radius > 0, feasible.distance_km / np.maximum(radius, 1e-12), 1.0)
        discount = 1.0 - np.minimum(1.0, ratio)
        return 1.0 / (discount * prepared.influence_matrix + 1.0)
