"""Worker-task affinity via LDA (paper Section III-A, Figure 3).

Each worker's historical task categories form a document; the documents
train an LDA model; a worker's and a task's topic proportions are compared
to produce ``P_aff(w, s)``.
"""

from repro.affinity.model import AffinityModel
from repro.affinity.tfidf import TfidfAffinity

__all__ = ["AffinityModel", "TfidfAffinity"]
