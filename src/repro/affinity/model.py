"""The worker-task affinity model.

Pipeline (paper Figure 3):

1. the categories of the tasks each worker performed form the document
   ``dc_w``; the documents of all workers train the LDA model;
2. at assignment time, the trained model infers the topic distribution of a
   worker (from their history document) and of a task (from the categories
   at the task's location, ``dc_s``);
3. the affinity is ``P_aff(w, s) = sum_t P(w | t) * P(s | t)`` — with topic
   proportions as the estimator of the per-topic match, this is the inner
   product of the two topic-proportion vectors.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.entities import Task, TaskHistory
from repro.exceptions import NotFittedError
from repro.text import LDAModel, VariationalLDA


class AffinityModel:
    """Computes ``P_aff(w, s)`` from worker histories and task categories.

    Parameters
    ----------
    num_topics:
        ``|Top|``; the paper uses 50.
    lda:
        Optional pre-configured LDA engine.  Defaults to a
        :class:`~repro.text.VariationalLDA` with ``num_topics`` topics.
    seed:
        Seed for the default engine.
    """

    def __init__(self, num_topics: int = 50, lda: LDAModel | None = None, seed: int = 0) -> None:
        self.num_topics = num_topics
        self.lda = lda if lda is not None else VariationalLDA(num_topics=num_topics, seed=seed)
        # Dense (num fitted workers x topics) proportions, row-aligned with
        # the sorted worker ids — the same ordering SocialGraph assigns its
        # dense indices, so consumers can gather rows instead of re-stacking
        # per-worker vectors.
        self._theta_matrix: np.ndarray | None = None
        self._row_of: dict[int, int] = {}
        self._unknown_topics: dict[int, np.ndarray] = {}
        self._task_topic_cache: dict[tuple[str, ...], np.ndarray] = {}
        self._fitted = False

    def fit(self, histories: Mapping[int, TaskHistory]) -> "AffinityModel":
        """Train the LDA model on all workers' category documents.

        Workers with empty histories contribute empty documents and receive
        the uniform topic prior at query time.
        """
        worker_ids = sorted(histories)
        documents = [histories[w].category_document for w in worker_ids]
        if not any(documents):
            raise NotFittedError("every worker history is empty; cannot train LDA")
        self.lda.fit(documents)
        assert self.lda.doc_topic_ is not None
        self._theta_matrix = np.asarray(self.lda.doc_topic_, dtype=float)
        self._row_of = {worker_id: row for row, worker_id in enumerate(worker_ids)}
        self._unknown_topics.clear()
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("AffinityModel.fit must be called first")

    @property
    def effective_topics(self) -> int:
        """Number of topics of the underlying engine."""
        return self.lda.num_topics

    def worker_topics(self, worker_id: int) -> np.ndarray:
        """Topic proportions of a worker (uniform for unknown workers)."""
        self._require_fitted()
        assert self._theta_matrix is not None
        row = self._row_of.get(worker_id)
        if row is not None:
            return self._theta_matrix[row]
        theta = self._unknown_topics.get(worker_id)
        if theta is None:
            theta = np.full(self.effective_topics, 1.0 / self.effective_topics)
            self._unknown_topics[worker_id] = theta
        return theta

    def topic_matrix(self, worker_ids: Sequence[int]) -> np.ndarray:
        """Dense topic proportions for ``worker_ids``, one gathered row each.

        Equivalent to stacking :meth:`worker_topics` per id, but fitted
        workers come out of the dense fit-time matrix in one fancy-indexing
        gather; only unknown workers (uniform prior) are patched in
        afterwards.
        """
        self._require_fitted()
        assert self._theta_matrix is not None
        rows = np.fromiter(
            (self._row_of.get(worker_id, -1) for worker_id in worker_ids),
            dtype=np.int64,
            count=len(worker_ids),
        )
        theta = self._theta_matrix[rows]  # row -1 is a placeholder, fixed below
        unknown = np.flatnonzero(rows < 0)
        if unknown.size:
            theta[unknown] = 1.0 / self.effective_topics
        return theta

    def task_topics(self, categories: Sequence[str]) -> np.ndarray:
        """Topic proportions of a task document (cached by category tuple)."""
        self._require_fitted()
        key = tuple(categories)
        theta = self._task_topic_cache.get(key)
        if theta is None:
            theta = self.lda.infer(list(key))
            self._task_topic_cache[key] = theta
        return theta

    def affinity(self, worker_id: int, task: Task) -> float:
        """``P_aff(w, s)`` for one worker-task pair."""
        theta_w = self.worker_topics(worker_id)
        theta_s = self.task_topics(task.categories)
        return float(theta_w @ theta_s)

    def affinity_matrix(self, worker_ids: Sequence[int], tasks: Sequence[Task]) -> np.ndarray:
        """Return the ``len(worker_ids) x len(tasks)`` affinity matrix.

        The worker side is one dense gather from the fit-time topic matrix
        (:meth:`topic_matrix`) — no per-worker Python stacking — and is
        bit-identical to the historical per-vector path.
        """
        self._require_fitted()
        if not worker_ids or not tasks:
            return np.zeros((len(worker_ids), len(tasks)))
        theta_w = self.topic_matrix(worker_ids)
        theta_s = np.stack([self.task_topics(t.categories) for t in tasks])
        return theta_w @ theta_s.T
