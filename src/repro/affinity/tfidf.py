"""TF-IDF cosine affinity — the pre-topic-model baseline (extension).

DESIGN.md §5 calls out "affinity via document-topic dot product" as a design
choice; the natural ablation is the classic sparse lexical baseline: weight
each category by term-frequency x inverse-document-frequency over the
worker-history corpus and score a worker-task pair by cosine similarity.

Unlike LDA, TF-IDF gives zero affinity whenever the task's categories never
appear in a worker's history — no semantic smoothing across co-occurring
categories — which is exactly the deficiency that motivates the paper's LDA
choice.  The experiment suite uses this model to quantify that gap.

The class mirrors :class:`~repro.affinity.model.AffinityModel`'s interface
(``fit`` / ``affinity`` / ``affinity_matrix``) so the DITA pipeline can swap
it in without changes.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from repro.entities import Task, TaskHistory
from repro.exceptions import NotFittedError


class TfidfAffinity:
    """Cosine similarity between TF-IDF vectors of worker and task documents.

    Parameters
    ----------
    smooth:
        Laplace-style smoothing added inside the IDF logarithm
        (``idf = ln((1 + D) / (1 + df)) + 1``, the "smooth idf" convention),
        keeping weights finite for categories present in every document.
    """

    def __init__(self, smooth: bool = True) -> None:
        self.smooth = smooth
        self._vocabulary: dict[str, int] = {}
        self._idf: np.ndarray | None = None
        self._worker_vectors: dict[int, np.ndarray] = {}
        self._task_cache: dict[tuple[str, ...], np.ndarray] = {}

    # ---------------------------------------------------------------- fitting
    def fit(self, histories: Mapping[int, TaskHistory]) -> "TfidfAffinity":
        """Build the vocabulary and IDF from all workers' category documents,
        then precompute each worker's normalized TF-IDF vector."""
        documents = {w: histories[w].category_document for w in sorted(histories)}
        if not any(documents.values()):
            raise NotFittedError("every worker history is empty; cannot fit TF-IDF")

        terms = sorted({term for doc in documents.values() for term in doc})
        self._vocabulary = {term: i for i, term in enumerate(terms)}

        document_frequency = np.zeros(len(terms))
        non_empty = 0
        for doc in documents.values():
            if not doc:
                continue
            non_empty += 1
            for term in set(doc):
                document_frequency[self._vocabulary[term]] += 1
        if self.smooth:
            self._idf = np.log((1.0 + non_empty) / (1.0 + document_frequency)) + 1.0
        else:
            self._idf = np.log(non_empty / np.maximum(document_frequency, 1.0)) + 1.0

        self._worker_vectors = {
            worker_id: self._vectorize(doc) for worker_id, doc in documents.items()
        }
        return self

    def _require_fitted(self) -> None:
        if self._idf is None:
            raise NotFittedError("TfidfAffinity.fit must be called first")

    def _vectorize(self, document: Sequence[str]) -> np.ndarray:
        """Unit-norm TF-IDF vector of a document (zeros if nothing known)."""
        assert self._idf is not None
        vector = np.zeros(len(self._vocabulary))
        counts = Counter(document)
        for term, count in counts.items():
            index = self._vocabulary.get(term)
            if index is not None:
                vector[index] = count * self._idf[index]
        norm = float(np.linalg.norm(vector))
        return vector / norm if norm > 0 else vector

    # ---------------------------------------------------------------- queries
    @property
    def vocabulary_size(self) -> int:
        """Number of distinct categories seen at fit time."""
        self._require_fitted()
        return len(self._vocabulary)

    def worker_vector(self, worker_id: int) -> np.ndarray:
        """Normalized TF-IDF vector of a worker (zeros for unknown workers)."""
        self._require_fitted()
        vector = self._worker_vectors.get(worker_id)
        if vector is None:
            vector = np.zeros(len(self._vocabulary))
            self._worker_vectors[worker_id] = vector
        return vector

    def task_vector(self, categories: Sequence[str]) -> np.ndarray:
        """Normalized TF-IDF vector of a task document (cached)."""
        self._require_fitted()
        key = tuple(categories)
        vector = self._task_cache.get(key)
        if vector is None:
            vector = self._vectorize(list(key))
            self._task_cache[key] = vector
        return vector

    def affinity(self, worker_id: int, task: Task) -> float:
        """Cosine similarity standing in for ``P_aff(w, s)``."""
        return float(self.worker_vector(worker_id) @ self.task_vector(task.categories))

    def affinity_matrix(self, worker_ids: Sequence[int], tasks: Sequence[Task]) -> np.ndarray:
        """``len(worker_ids) x len(tasks)`` cosine-affinity matrix."""
        self._require_fitted()
        if not worker_ids or not tasks:
            return np.zeros((len(worker_ids), len(tasks)))
        worker_stack = np.stack([self.worker_vector(w) for w in worker_ids])
        task_stack = np.stack([self.task_vector(t.categories) for t in tasks])
        return worker_stack @ task_stack.T
