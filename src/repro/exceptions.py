"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch every library failure with a single ``except`` clause while still
being able to discriminate on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class DataError(ReproError):
    """A dataset is malformed, empty, or otherwise unusable."""


class NotFittedError(ReproError):
    """A model was queried before it was trained/fitted."""


class GraphError(ReproError):
    """A graph structure violates an invariant (bad node, bad edge, ...)."""


class FlowError(GraphError):
    """A flow-network operation failed (infeasible flow, bad capacity, ...)."""


class AssignmentError(ReproError):
    """Task assignment could not be performed on the given instance."""
