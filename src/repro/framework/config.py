"""Experiment configuration, including the paper's Table II defaults."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PaperDefaults:
    """Default parameter values of Table II plus Section V-A constants."""

    #: Default number of tasks |S|.
    num_tasks: int = 1500
    #: Default number of workers |W|.
    num_workers: int = 1200
    #: Default valid time of tasks ϕ (hours).
    valid_hours: float = 5.0
    #: Default reachable radius r (km).
    reachable_km: float = 25.0
    #: Common worker speed (km/h).
    speed_kmh: float = 5.0
    #: Number of LDA topics |Top|.
    num_topics: int = 50
    #: RPO approximation parameter ϵ.
    epsilon: float = 0.1
    #: RPO failure exponent o (λ = 1/|W|^o).
    o: float = 1.0
    #: Number of evaluation days averaged per experiment.
    num_days: int = 4

    #: The sweep grids of the evaluation section.
    task_sweep: tuple[int, ...] = (500, 1000, 1500, 2000, 2500)
    worker_sweep: tuple[int, ...] = (400, 800, 1200, 1600, 2000)
    valid_hours_sweep: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
    radius_sweep: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0, 25.0)


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of :class:`~repro.framework.DITAPipeline`.

    Attributes
    ----------
    num_topics:
        LDA topic count.
    lda_engine:
        ``"variational"`` (fast, default) or ``"gibbs"`` (reference).
    affinity_engine:
        ``"lda"`` (the paper's model, default) or ``"tfidf"`` (the lexical
        baseline ablation of DESIGN.md §5).
    restart:
        RWR restart probability for Historical Acceptance.
    movement_family:
        Jump-length family for willingness: ``"pareto"`` (paper default) or
        one of the :data:`~repro.willingness.MOVEMENT_FAMILIES` alternatives
        (``"exponential"``, ``"lognormal"``, ``"rayleigh"``).
    propagation_mode:
        ``"rpo"`` runs Algorithm 1 with its bounds; ``"fixed"`` samples
        exactly ``num_rrr_sets`` RRR sets (cheaper; used by tests and
        quick-look runs).
    propagation_model:
        Diffusion model for ``"fixed"`` sampling: ``"ic"`` (paper default)
        or ``"lt"`` (Linear Threshold extension).  RPO mode is IC-only —
        its bounds are stated for the IC estimator.
    edge_model:
        Arc-probability model of the social graph: ``"indegree"`` (paper
        default, ``1/indeg(v)``), ``"trivalency"``, or ``"uniform:<p>"``
        (e.g. ``"uniform:0.1"``).
    num_rrr_sets:
        Sample count in ``"fixed"`` mode.
    epsilon / o / max_rrr_sets:
        RPO parameters in ``"rpo"`` mode.
    seed:
        Master seed; every stochastic component derives from it.
    """

    num_topics: int = 50
    lda_engine: str = "variational"
    affinity_engine: str = "lda"
    restart: float = 0.15
    movement_family: str = "pareto"
    propagation_mode: str = "rpo"
    propagation_model: str = "ic"
    edge_model: str = "indegree"
    num_rrr_sets: int = 10_000
    epsilon: float = 0.1
    o: float = 1.0
    max_rrr_sets: int = 200_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.lda_engine not in ("variational", "gibbs"):
            raise ConfigurationError(f"unknown lda_engine {self.lda_engine!r}")
        if self.affinity_engine not in ("lda", "tfidf"):
            raise ConfigurationError(f"unknown affinity_engine {self.affinity_engine!r}")
        if self.propagation_mode not in ("rpo", "fixed"):
            raise ConfigurationError(f"unknown propagation_mode {self.propagation_mode!r}")
        if self.propagation_model not in ("ic", "lt"):
            raise ConfigurationError(f"unknown propagation_model {self.propagation_model!r}")
        if self.propagation_model == "lt" and self.propagation_mode == "rpo":
            raise ConfigurationError(
                "LT propagation requires propagation_mode='fixed' "
                "(the RPO bounds are stated for the IC estimator)"
            )
        self.parsed_edge_model()  # validate eagerly
        from repro.willingness import MOVEMENT_FAMILIES

        if self.movement_family not in MOVEMENT_FAMILIES:
            raise ConfigurationError(
                f"unknown movement_family {self.movement_family!r}; "
                f"choose from {sorted(MOVEMENT_FAMILIES)}"
            )
        if self.num_topics < 1:
            raise ConfigurationError("num_topics must be >= 1")
        if self.num_rrr_sets < 1:
            raise ConfigurationError("num_rrr_sets must be >= 1")

    def parsed_edge_model(self) -> str | tuple[str, float]:
        """The ``edge_model`` string as :class:`~repro.propagation.SocialGraph`
        expects it; raises :class:`ConfigurationError` on malformed values."""
        if self.edge_model in ("indegree", "trivalency"):
            return self.edge_model
        if self.edge_model.startswith("uniform:"):
            try:
                p = float(self.edge_model.split(":", 1)[1])
            except ValueError:
                raise ConfigurationError(
                    f"malformed uniform edge model {self.edge_model!r}"
                ) from None
            if not 0.0 < p <= 1.0:
                raise ConfigurationError(
                    f"uniform edge probability must be in (0, 1], got {p}"
                )
            return ("uniform", p)
        raise ConfigurationError(
            f"unknown edge_model {self.edge_model!r}; choose 'indegree', "
            "'trivalency', or 'uniform:<p>'"
        )

    def fast(self) -> "PipelineConfig":
        """A cheap variant for tests/examples: fixed sampling, fewer topics."""
        return replace(
            self,
            propagation_mode="fixed",
            num_rrr_sets=min(self.num_rrr_sets, 2000),
            num_topics=min(self.num_topics, 10),
        )
