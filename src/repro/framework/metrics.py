"""Evaluation metrics (paper Section V-B).

* **number of assigned tasks** — ``|A|``;
* **Average Influence** (Eq. 6) — ``AI = sum_{(s,w) in A} if(w, s) / |A|``;
* **Average Propagation** (Eq. 7) —
  ``AP = sum_{(s,w) in A} sum_{w_j != w} P_pro(w, w_j) / |A|``;
* **travel cost** — average worker-to-task distance over assigned pairs;
* **CPU time** — wall-clock seconds of the assignment computation
  (measured by the simulator, not here).

Percentile math (CPU-time distributions across days/runs) goes through
:class:`repro.obs.histo.LogHistogram` — the same bounded mergeable
histogram the streaming runtime uses — so batch and stream reporting
share one quantile implementation and one error bound.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.assignment.base import PreparedInstance
from repro.entities import Assignment
from repro.influence import InfluenceModel
from repro.obs.histo import SECONDS_HISTOGRAM, LogHistogram


def latency_percentiles(
    seconds: Iterable[float],
    qs: Sequence[float] = (50.0, 90.0, 99.0),
) -> dict[float, float]:
    """Percentiles of a latency sample set, quantized by the shared histogram.

    Records every sample into a fresh ``SECONDS_HISTOGRAM``-shaped
    :class:`LogHistogram` and reads the nearest-rank percentiles back, so the
    numbers carry the same ~3.7 % relative-error bound as the streaming
    runtime's round/wait reports.
    """
    histogram = LogHistogram(**SECONDS_HISTOGRAM)
    for value in seconds:
        histogram.record(float(value))
    return histogram.percentiles(qs)


def cpu_time_percentiles(
    results: Iterable["MetricsResult"],
    qs: Sequence[float] = (50.0, 90.0, 99.0),
) -> dict[float, float]:
    """CPU-time percentiles across a set of per-day/per-run metric results."""
    return latency_percentiles((r.cpu_seconds for r in results), qs)


@dataclass(frozen=True)
class MetricsResult:
    """All per-assignment metrics of one algorithm run."""

    algorithm: str
    num_assigned: int
    average_influence: float
    average_propagation: float
    average_travel_km: float
    cpu_seconds: float = 0.0

    def as_row(self) -> dict[str, float | int | str]:
        """A flat dict for table/CSV output."""
        return {
            "algorithm": self.algorithm,
            "assigned": self.num_assigned,
            "AI": self.average_influence,
            "AP": self.average_propagation,
            "travel_km": self.average_travel_km,
            "cpu_s": self.cpu_seconds,
        }


def evaluate_assignment(
    algorithm: str,
    assignment: Assignment,
    prepared: PreparedInstance,
    influence: InfluenceModel | None = None,
    cpu_seconds: float = 0.0,
) -> MetricsResult:
    """Compute the metric bundle of one assignment.

    ``influence`` defaults to the prepared instance's model; pass an
    explicit (e.g. full, non-ablated) model to score ablation variants on a
    common scale, as the paper's Figures 5-8 do.
    """
    model = influence if influence is not None else prepared.influence
    count = len(assignment)
    if count == 0:
        return MetricsResult(
            algorithm=algorithm,
            num_assigned=0,
            average_influence=0.0,
            average_propagation=0.0,
            average_travel_km=0.0,
            cpu_seconds=cpu_seconds,
        )

    total_influence = 0.0
    total_propagation = 0.0
    if model is not None:
        workers = [pair.worker for pair in assignment]
        tasks = [pair.task for pair in assignment]
        influence_matrix = model.influence_matrix(workers, tasks)
        for i in range(count):
            total_influence += float(influence_matrix[i, i])
            total_propagation += model.propagation_to_others(workers[i].worker_id)

    return MetricsResult(
        algorithm=algorithm,
        num_assigned=count,
        average_influence=total_influence / count,
        average_propagation=total_propagation / count,
        average_travel_km=assignment.average_travel_km(),
        cpu_seconds=cpu_seconds,
    )
