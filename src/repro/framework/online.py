"""Online (batched-arrival) task assignment over one day (extension).

The paper's protocol states that "a worker is online until the worker is
assigned a task" and that tasks become available at their publication time;
the day-granularity :class:`~repro.framework.simulator.Simulator` collapses
this into one assignment round per day.  This module plays the day out in
time order: arrivals enter the pools batch by batch, each batch triggers one
assignment round, assigned workers leave, unassigned tasks persist until
they expire, and unassigned workers optionally churn out after a patience
window.

The influence components are fitted once from history (they do not depend
on the intra-day arrival order), so the online loop reuses one
:class:`~repro.influence.InfluenceModel` across rounds.  Round preparation
is incremental: a :class:`~repro.assignment.RoundState` caches per-worker
influence/distance rows and per-task columns keyed by identity, so each
batch round only computes the rectangles introduced by newly arrived
workers and newly published tasks instead of rebuilding the prepared
instance from scratch.

.. note::
   The event-driven :class:`~repro.stream.StreamRuntime` is a strict
   superset of this simulator: configured with a
   :class:`~repro.stream.TimeWindowTrigger` over a
   :func:`~repro.stream.log_from_arrivals` event log it reproduces
   :meth:`OnlineSimulator.run` bit-identically (a regression-tested golden
   cross-check), and adds count/hybrid/latency-adaptive micro-batching,
   churn/cancellation/relocation events, multi-day replay, latency-budget
   admission control, a live spatial task index, wait/latency metrics, and
   checkpoint/replay.  This module remains the compact reference
   implementation the streaming runtime is pinned against — the scenario
   differential matrix in ``tests/scenarios/`` cross-checks every
   scenario class against it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.assignment.base import Assigner, PreparedInstance, RoundState
from repro.data.dataset import CheckInDataset
from repro.data.instance import InstanceBuilder, SCInstance
from repro.entities import Assignment, Task, Worker
from repro.exceptions import DataError
from repro.influence import InfluenceModel


@dataclass(frozen=True)
class WorkerArrival:
    """A worker together with the hour they come online."""

    worker: Worker
    arrival_time: float


@dataclass(frozen=True)
class OnlineStep:
    """Outcome of one batch round.

    Attributes
    ----------
    time:
        The round's assignment time (hours since dataset epoch).
    online_workers / open_tasks:
        Pool sizes *before* the round's assignment.
    assigned:
        Pairs matched in this round.
    expired_tasks:
        Tasks that reached their deadline unassigned during this batch.
    churned_workers:
        Workers who exceeded the patience window and left unassigned.
    cpu_seconds:
        Wall-clock cost of this round's assignment computation.
    """

    time: float
    online_workers: int
    open_tasks: int
    assigned: int
    expired_tasks: int
    churned_workers: int
    cpu_seconds: float


@dataclass
class OnlineResult:
    """Aggregate outcome of an online run."""

    steps: list[OnlineStep] = field(default_factory=list)
    assignment: Assignment = field(default_factory=Assignment)

    @property
    def total_assigned(self) -> int:
        """Tasks assigned over the whole run."""
        return len(self.assignment)

    @property
    def total_expired(self) -> int:
        """Tasks that expired unassigned."""
        return sum(step.expired_tasks for step in self.steps)

    @property
    def total_churned(self) -> int:
        """Workers that left unassigned (patience exceeded)."""
        return sum(step.churned_workers for step in self.steps)

    @property
    def total_cpu_seconds(self) -> float:
        """Summed assignment CPU time across rounds."""
        return sum(step.cpu_seconds for step in self.steps)


def day_arrivals(
    dataset: CheckInDataset,
    day: int,
    reachable_km: float = 25.0,
    speed_kmh: float = 5.0,
    builder: InstanceBuilder | None = None,
) -> list[WorkerArrival]:
    """Worker arrivals for a day: each active user comes online at their
    first check-in of the day, located as the day-instance builder locates
    them (most recent prior check-in, else that first check-in).

    ``builder`` reuses a caller's :class:`InstanceBuilder` (and with it the
    searchsorted day index, which is expensive to rebuild); it must have
    been constructed with the same ``reachable_km``/``speed_kmh``.
    Multi-day callers pass one builder for the whole horizon.
    """
    day_checkins = dataset.checkins_on_day(day)
    if not day_checkins:
        raise DataError(f"day {day} has no check-ins in {dataset.name!r}")
    day_start = 24.0 * day
    first_seen: dict[int, tuple[float, Worker]] = {}
    if builder is None:
        builder = InstanceBuilder(
            dataset, reachable_km=reachable_km, speed_kmh=speed_kmh
        )
    for checkin in day_checkins:
        if checkin.user_id in first_seen:
            continue
        location = builder.worker_location_at(checkin.user_id, day_start) or checkin.location
        first_seen[checkin.user_id] = (
            checkin.time,
            Worker(
                worker_id=checkin.user_id,
                location=location,
                reachable_km=reachable_km,
                speed_kmh=speed_kmh,
            ),
        )
    return sorted(
        (WorkerArrival(worker=w, arrival_time=t) for t, w in first_seen.values()),
        key=lambda a: (a.arrival_time, a.worker.worker_id),
    )


class OnlineSimulator:
    """Plays one day of arrivals through repeated assignment rounds.

    Parameters
    ----------
    assigner:
        The assignment algorithm run at every batch boundary.
    influence_model:
        The fitted influence model shared by all rounds (fit it from the
        same day's :class:`~repro.data.SCInstance` with the DITA pipeline).
    batch_hours:
        Round spacing; smaller batches approximate instant matching.
    patience_hours:
        If set, an unassigned worker goes offline this many hours after
        arriving; ``None`` reproduces the paper's "online until assigned".
    incremental:
        When True (default) rounds are prepared through a shared
        :class:`~repro.assignment.RoundState`, computing only the matrix
        rectangles introduced by new arrivals/publications.  False rebuilds
        every round from scratch — the reference path the incremental one is
        regression-tested against.
    """

    def __init__(
        self,
        assigner: Assigner,
        influence_model: InfluenceModel | None,
        batch_hours: float = 1.0,
        patience_hours: float | None = None,
        incremental: bool = True,
    ) -> None:
        if batch_hours <= 0:
            raise ValueError(f"batch_hours must be positive, got {batch_hours}")
        if patience_hours is not None and patience_hours < 0:
            raise ValueError(f"patience_hours must be non-negative, got {patience_hours}")
        self.assigner = assigner
        self.influence_model = influence_model
        self.batch_hours = batch_hours
        self.patience_hours = patience_hours
        self.incremental = incremental

    def run(
        self,
        base_instance: SCInstance,
        arrivals: list[WorkerArrival],
        end_time: float | None = None,
    ) -> OnlineResult:
        """Run the online loop.

        Parameters
        ----------
        base_instance:
            Supplies the task stream (publication times and deadlines),
            histories, social network and venue visits; its worker list is
            ignored in favour of ``arrivals``.
        arrivals:
            Time-ordered worker arrivals (see :func:`day_arrivals`).
        end_time:
            Last round time; defaults to the latest task deadline.
        """
        tasks = sorted(base_instance.tasks, key=lambda s: s.publication_time)
        if end_time is None:
            deadlines = [s.expiry_time for s in tasks]
            end_time = max(deadlines, default=base_instance.current_time)
        arrivals = sorted(arrivals, key=lambda a: a.arrival_time)

        result = OnlineResult()
        round_state = RoundState(self.influence_model)
        online: dict[int, Worker] = {}
        arrived_at: dict[int, float] = {}
        open_tasks: dict[int, Task] = {}
        next_arrival = 0
        next_task = 0

        current = min(
            (a.arrival_time for a in arrivals),
            default=base_instance.current_time,
        )
        if tasks:
            current = min(current, tasks[0].publication_time)

        while True:
            # Admit arrivals and publications up to the round time.
            while next_arrival < len(arrivals) and arrivals[next_arrival].arrival_time <= current:
                arrival = arrivals[next_arrival]
                online[arrival.worker.worker_id] = arrival.worker
                arrived_at[arrival.worker.worker_id] = arrival.arrival_time
                next_arrival += 1
            while next_task < len(tasks) and tasks[next_task].publication_time <= current:
                open_tasks[tasks[next_task].task_id] = tasks[next_task]
                next_task += 1

            # Expire tasks whose deadline passed before this round.
            expired = [s for s in open_tasks.values() if s.expiry_time < current]
            for task in expired:
                del open_tasks[task.task_id]

            # Churn out workers whose patience ran out.
            churned: list[int] = []
            if self.patience_hours is not None:
                churned = [
                    worker_id
                    for worker_id, since in arrived_at.items()
                    if worker_id in online and current - since > self.patience_hours
                ]
                for worker_id in churned:
                    del online[worker_id]

            pool_workers = len(online)
            pool_tasks = len(open_tasks)
            assigned_count = 0
            elapsed = 0.0
            if online and open_tasks:
                round_instance = base_instance.with_workers(
                    sorted(online.values(), key=lambda w: w.worker_id)
                ).with_tasks(sorted(open_tasks.values(), key=lambda s: s.task_id))
                round_instance.current_time = current
                if self.incremental:
                    prepared = round_state.prepare(round_instance)
                else:
                    prepared = PreparedInstance(round_instance, self.influence_model)
                started = time.perf_counter()
                assignment = self.assigner.assign(prepared)
                elapsed = time.perf_counter() - started
                for pair in assignment:
                    result.assignment.add(pair.task, pair.worker)
                    del online[pair.worker.worker_id]
                    del open_tasks[pair.task.task_id]
                assigned_count = len(assignment)

            result.steps.append(
                OnlineStep(
                    time=current,
                    online_workers=pool_workers,
                    open_tasks=pool_tasks,
                    assigned=assigned_count,
                    expired_tasks=len(expired),
                    churned_workers=len(churned),
                    cpu_seconds=elapsed,
                )
            )

            if current >= end_time:
                break
            current = min(current + self.batch_hours, end_time)

        return result
