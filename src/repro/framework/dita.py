"""The DITA pipeline: fit the influence components for one instance.

Mirrors Figure 2's "worker-task influence modeling" box: the historical
task-performing records train LDA (affinity) and Historical Acceptance
(willingness); the social network feeds IC-based RRR sampling (propagation);
the three are combined by :class:`~repro.influence.InfluenceModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.affinity import AffinityModel, TfidfAffinity
from repro.data.instance import SCInstance
from repro.framework.config import PipelineConfig
from repro.influence import InfluenceComponents, InfluenceModel
from repro.propagation import (
    RPO,
    RRRCollection,
    SocialGraph,
    sample_lt_rrr_sets_batched,
    sample_rrr_sets_batched,
)
from repro.text import GibbsLDA, VariationalLDA
from repro.willingness import GeneralizedHistoricalAcceptance, HistoricalAcceptance


@dataclass
class FittedModels:
    """Everything the pipeline fits for one instance."""

    graph: SocialGraph
    affinity: AffinityModel | TfidfAffinity
    willingness: HistoricalAcceptance | GeneralizedHistoricalAcceptance
    propagation: RRRCollection

    def influence_model(
        self, components: InfluenceComponents | None = None
    ) -> InfluenceModel:
        """Build an influence model (optionally an ablated one) on top of
        the fitted components — the components themselves are shared."""
        return InfluenceModel(
            graph=self.graph,
            affinity=self.affinity,
            willingness=self.willingness,
            propagation=self.propagation,
            components=components,
        )


class DITAPipeline:
    """Fits :class:`FittedModels` from an :class:`~repro.data.SCInstance`."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    def _make_lda(self):
        if self.config.lda_engine == "gibbs":
            return GibbsLDA(num_topics=self.config.num_topics, seed=self.config.seed)
        return VariationalLDA(num_topics=self.config.num_topics, seed=self.config.seed)

    def fit(self, instance: SCInstance) -> FittedModels:
        """Fit affinity, willingness and propagation for ``instance``."""
        graph = SocialGraph(
            instance.all_worker_ids,
            instance.social_edges,
            edge_probability=self.config.parsed_edge_model(),
            seed=self.config.seed,
        )

        if self.config.affinity_engine == "tfidf":
            affinity: AffinityModel | TfidfAffinity = TfidfAffinity().fit(
                instance.histories
            )
        else:
            affinity = AffinityModel(
                num_topics=self.config.num_topics, lda=self._make_lda()
            ).fit(instance.histories)

        if self.config.movement_family == "pareto":
            willingness: HistoricalAcceptance | GeneralizedHistoricalAcceptance = (
                HistoricalAcceptance(restart=self.config.restart).fit(
                    instance.histories
                )
            )
        else:
            willingness = GeneralizedHistoricalAcceptance(
                family=self.config.movement_family, restart=self.config.restart
            ).fit(instance.histories)

        if self.config.propagation_mode == "rpo":
            rpo = RPO(
                epsilon=self.config.epsilon,
                o=self.config.o,
                max_sets=self.config.max_rrr_sets,
                seed=self.config.seed,
            )
            propagation = rpo.run(graph).collection
        else:
            rng = np.random.default_rng(self.config.seed)
            propagation = RRRCollection(num_workers=graph.num_workers)
            sampler = (
                sample_lt_rrr_sets_batched
                if self.config.propagation_model == "lt"
                else sample_rrr_sets_batched
            )
            roots, indptr, flat = sampler(graph, self.config.num_rrr_sets, rng)
            propagation.extend_flat(roots, indptr, flat)

        return FittedModels(
            graph=graph,
            affinity=affinity,
            willingness=willingness,
            propagation=propagation,
        )
