"""The DITA framework: configuration, pipeline, metrics, and simulation.

This package wires the substrates together exactly as Figure 2 does:

1. :class:`DITAPipeline` fits the three influence components (LDA affinity,
   HA willingness, RPO propagation) from an instance's historical records
   and social network and returns an :class:`~repro.influence.InfluenceModel`;
2. :mod:`repro.framework.metrics` computes the paper's evaluation metrics
   (number of assigned tasks, Average Influence, Average Propagation,
   travel cost, CPU time);
3. :class:`Simulator` runs a set of algorithms over multiple day-instances
   and averages, replicating "run over 4 days and report average results".
"""

from repro.framework.config import PaperDefaults, PipelineConfig
from repro.framework.dita import DITAPipeline, FittedModels
from repro.framework.metrics import (
    MetricsResult,
    cpu_time_percentiles,
    evaluate_assignment,
    latency_percentiles,
)
from repro.framework.online import (
    OnlineResult,
    OnlineSimulator,
    OnlineStep,
    WorkerArrival,
    day_arrivals,
)
from repro.framework.simulator import AlgorithmRun, Simulator

__all__ = [
    "PaperDefaults",
    "PipelineConfig",
    "DITAPipeline",
    "FittedModels",
    "MetricsResult",
    "evaluate_assignment",
    "latency_percentiles",
    "cpu_time_percentiles",
    "AlgorithmRun",
    "Simulator",
    "OnlineSimulator",
    "OnlineResult",
    "OnlineStep",
    "WorkerArrival",
    "day_arrivals",
]
