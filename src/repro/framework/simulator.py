"""Run assignment algorithms over day-instances and average the metrics.

The paper runs every experiment "over 4 days of a month" and reports
averages; :class:`Simulator` reproduces that protocol: for every day it fits
the DITA models once, prepares the instance, times each algorithm's
assignment computation, scores it, and finally averages per algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.assignment.base import Assigner, PreparedInstance
from repro.data.instance import SCInstance
from repro.framework.config import PipelineConfig
from repro.framework.dita import DITAPipeline
from repro.framework.metrics import MetricsResult, evaluate_assignment
from repro.influence import InfluenceModel


@dataclass
class AlgorithmRun:
    """Accumulated results of one algorithm across days."""

    algorithm: str
    per_day: list[MetricsResult] = field(default_factory=list)

    def average(self) -> MetricsResult:
        """Mean of every metric over the recorded days."""
        if not self.per_day:
            return MetricsResult(self.algorithm, 0, 0.0, 0.0, 0.0, 0.0)
        n = len(self.per_day)
        return MetricsResult(
            algorithm=self.algorithm,
            num_assigned=round(sum(r.num_assigned for r in self.per_day) / n),
            average_influence=sum(r.average_influence for r in self.per_day) / n,
            average_propagation=sum(r.average_propagation for r in self.per_day) / n,
            average_travel_km=sum(r.average_travel_km for r in self.per_day) / n,
            cpu_seconds=sum(r.cpu_seconds for r in self.per_day) / n,
        )


class Simulator:
    """Times and scores a set of algorithms on a set of instances.

    Parameters
    ----------
    pipeline_config:
        DITA configuration used to fit the influence components per day.
    scoring_model:
        Which influence model scores the metrics: ``"full"`` (default, the
        non-ablated model — the paper scores ablations on the full
        influence) — or ``"own"`` to score each run with the same model
        used for assignment.
    """

    def __init__(
        self,
        pipeline_config: PipelineConfig | None = None,
        scoring_model: str = "full",
    ) -> None:
        if scoring_model not in ("full", "own"):
            raise ValueError(f"unknown scoring_model {scoring_model!r}")
        self.pipeline = DITAPipeline(pipeline_config)
        self.scoring_model = scoring_model

    def run_instance(
        self,
        instance: SCInstance,
        algorithms: list[Assigner],
        influence_model: InfluenceModel | None = None,
        full_model: InfluenceModel | None = None,
    ) -> list[MetricsResult]:
        """Run all algorithms on one instance.

        ``influence_model`` is the model that drives assignment;
        ``full_model`` scores the metrics.  Both default to a freshly fitted
        full model.
        """
        if influence_model is None or full_model is None:
            fitted = self.pipeline.fit(instance)
            full = fitted.influence_model()
            influence_model = influence_model or full
            full_model = full_model or full

        prepared = PreparedInstance(instance, influence_model)
        # Materialize shared caches outside the timed region: the influence
        # matrix belongs to the modeling component, not to assignment.
        _ = prepared.feasible
        _ = prepared.influence_matrix
        _ = prepared.entropy_by_task

        scorer = full_model if self.scoring_model == "full" else influence_model
        results = []
        for algorithm in algorithms:
            started = time.perf_counter()
            assignment = algorithm.assign(prepared)
            elapsed = time.perf_counter() - started
            results.append(
                evaluate_assignment(
                    algorithm.name,
                    assignment,
                    prepared,
                    influence=scorer,
                    cpu_seconds=elapsed,
                )
            )
        return results

    def run_days(
        self,
        instances: list[SCInstance],
        algorithms: list[Assigner],
    ) -> dict[str, MetricsResult]:
        """Run all algorithms over several day-instances; return averages."""
        runs = {a.name: AlgorithmRun(a.name) for a in algorithms}
        for instance in instances:
            for result in self.run_instance(instance, algorithms):
                runs[result.algorithm].per_day.append(result)
        return {name: run.average() for name, run in runs.items()}
