"""A residual flow network with paired forward/backward edges.

Every call to :meth:`FlowNetwork.add_edge` creates the forward edge and its
zero-capacity residual twin at ``edge_id ^ 1``, the classic trick that lets
augmenting algorithms push flow back without special-casing.
"""

from __future__ import annotations

from repro.exceptions import FlowError


class FlowNetwork:
    """A directed flow network over ``num_nodes`` dense node ids.

    Edges carry integer capacities (unit capacities in the assignment use
    case) and float costs.  The structure-of-arrays layout keeps the hot
    loops of the solvers allocation-free.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise FlowError(f"a flow network needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self.edge_to: list[int] = []
        self.edge_cap: list[int] = []
        self.edge_cost: list[float] = []
        self.adjacency: list[list[int]] = [[] for _ in range(num_nodes)]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise FlowError(f"node {node} out of range [0, {self.num_nodes})")

    def add_edge(self, source: int, target: int, capacity: int, cost: float = 0.0) -> int:
        """Add ``source -> target`` with ``capacity`` and per-unit ``cost``.

        Returns the forward edge id; the residual twin lives at ``id ^ 1``
        with capacity 0 and cost ``-cost``.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            raise FlowError(f"self-loop on node {source}")
        if capacity < 0:
            raise FlowError(f"negative capacity {capacity}")
        edge_id = len(self.edge_to)
        self.edge_to.append(target)
        self.edge_cap.append(capacity)
        self.edge_cost.append(cost)
        self.adjacency[source].append(edge_id)
        self.edge_to.append(source)
        self.edge_cap.append(0)
        self.edge_cost.append(-cost)
        self.adjacency[target].append(edge_id + 1)
        return edge_id

    @property
    def num_edges(self) -> int:
        """Number of forward edges."""
        return len(self.edge_to) // 2

    def flow_on(self, edge_id: int) -> int:
        """Current flow on forward edge ``edge_id`` (= residual twin's cap)."""
        if edge_id % 2 != 0:
            raise FlowError("flow_on expects a forward (even) edge id")
        return self.edge_cap[edge_id ^ 1]

    def residual(self, edge_id: int) -> int:
        """Remaining capacity of edge ``edge_id`` (forward or residual)."""
        return self.edge_cap[edge_id]

    def push(self, edge_id: int, amount: int) -> None:
        """Push ``amount`` units through ``edge_id``, updating the twin."""
        if amount < 0 or amount > self.edge_cap[edge_id]:
            raise FlowError(
                f"cannot push {amount} through edge {edge_id} "
                f"(residual {self.edge_cap[edge_id]})"
            )
        self.edge_cap[edge_id] -= amount
        self.edge_cap[edge_id ^ 1] += amount
