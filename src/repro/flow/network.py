"""An array-native residual flow network with paired forward/backward edges.

Every edge insertion creates the forward edge and its zero-capacity residual
twin at ``edge_id ^ 1``, the classic trick that lets augmenting algorithms
push flow back without special-casing.  Storage is structure-of-arrays on
numpy buffers with capacity doubling (the same slab discipline as
``propagation.RRRCollection``), so bulk edge insertion, residual masks and
per-frontier gathers in the solvers are all O(1) index algebra:

* ``edge_to`` / ``edge_cap`` / ``edge_cost`` — per-directed-edge arrays
  (twins interleaved with their forward edges);
* ``csr()`` — a ``(indptr, csr_edges)`` adjacency view, rebuilt lazily
  after structural changes; within a node, edges keep insertion order.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError

_INITIAL_CAPACITY = 32


def csr_gather(indptr: np.ndarray, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR positions of every entry in ``frontier``'s rows.

    The frontier-batch gather shared by the solvers: returns
    ``(positions, counts)`` where ``positions`` concatenates the ranges
    ``indptr[f]:indptr[f+1]`` for each frontier node ``f`` (in frontier
    order) and ``counts`` is the per-node range length.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    bounds = np.cumsum(counts)
    positions = np.repeat(starts - (bounds - counts), counts) + np.arange(total)
    return positions, counts


class FlowNetwork:
    """A directed flow network over ``num_nodes`` dense node ids.

    Edges carry integer capacities (unit capacities in the assignment use
    case) and float costs.  The flat-array layout keeps the hot loops of the
    solvers allocation-free and lets callers add whole edge batches at once
    with :meth:`add_edges`.

    The ``edge_to`` / ``edge_cap`` / ``edge_cost`` properties return live
    views into the current buffers; re-read them after adding edges rather
    than holding a view across structural changes (capacity doubling swaps
    the underlying buffer).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise FlowError(f"a flow network needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self._heads = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._tails = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._cap = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._cost = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0  # directed edges, twins included
        self._indptr: np.ndarray | None = None
        self._csr_edges: np.ndarray | None = None

    # ------------------------------------------------------------- storage
    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self._heads)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_heads", "_tails", "_cap", "_cost"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    @property
    def edge_to(self) -> np.ndarray:
        """Head node of every directed edge (twins interleaved)."""
        return self._heads[: self._size]

    @property
    def edge_tail(self) -> np.ndarray:
        """Tail node of every directed edge (twins interleaved)."""
        return self._tails[: self._size]

    @property
    def edge_cap(self) -> np.ndarray:
        """Residual capacity of every directed edge."""
        return self._cap[: self._size]

    @property
    def edge_cost(self) -> np.ndarray:
        """Per-unit cost of every directed edge (twins negated)."""
        return self._cost[: self._size]

    @property
    def adjacency(self) -> list[list[int]]:
        """Per-node outgoing edge-id lists (compatibility view).

        Built from the CSR arrays on demand; prefer :meth:`csr` in
        performance-sensitive code.
        """
        indptr, csr_edges = self.csr()
        return [
            csr_edges[indptr[node] : indptr[node + 1]].tolist()
            for node in range(self.num_nodes)
        ]

    # ---------------------------------------------------------------- build
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise FlowError(f"node {node} out of range [0, {self.num_nodes})")

    def add_edge(self, source: int, target: int, capacity: int, cost: float = 0.0) -> int:
        """Add ``source -> target`` with ``capacity`` and per-unit ``cost``.

        Returns the forward edge id; the residual twin lives at ``id ^ 1``
        with capacity 0 and cost ``-cost``.
        """
        edge_ids = self.add_edges(
            np.array([source], dtype=np.int64),
            np.array([target], dtype=np.int64),
            np.array([capacity]),
            np.array([cost], dtype=np.float64),
        )
        return int(edge_ids[0])

    def add_edges(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        capacities: np.ndarray,
        costs: np.ndarray | None = None,
    ) -> np.ndarray:
        """Add a whole batch of edges at once; returns the forward edge ids.

        All arguments are equal-length 1-d arrays; residual twins are created
        exactly as in :meth:`add_edge`.  This is the fast path used by the
        assignment-graph builders.
        """
        sources = np.asarray(sources, dtype=np.int64).ravel()
        targets = np.asarray(targets, dtype=np.int64).ravel()
        capacities = np.asarray(capacities).ravel()
        if capacities.dtype.kind == "f":
            if not np.all(np.floor(capacities) == capacities):
                raise FlowError(
                    "capacities must be integral (the residual arrays are int64); "
                    f"got {float(capacities[np.floor(capacities) != capacities][0])}"
                )
        capacities = capacities.astype(np.int64)
        if costs is None:
            costs = np.zeros(len(sources), dtype=np.float64)
        else:
            costs = np.asarray(costs, dtype=np.float64).ravel()
        if not (len(sources) == len(targets) == len(capacities) == len(costs)):
            raise FlowError(
                "add_edges arrays disagree on length: "
                f"{len(sources)}/{len(targets)}/{len(capacities)}/{len(costs)}"
            )
        out_of_range = (sources < 0) | (sources >= self.num_nodes) | (
            targets < 0
        ) | (targets >= self.num_nodes)
        if out_of_range.any():
            bad = int(np.nonzero(out_of_range)[0][0])
            node = int(sources[bad]) if not 0 <= sources[bad] < self.num_nodes else int(targets[bad])
            raise FlowError(f"node {node} out of range [0, {self.num_nodes})")
        loops = sources == targets
        if loops.any():
            raise FlowError(f"self-loop on node {int(sources[np.nonzero(loops)[0][0]])}")
        negative = capacities < 0
        if negative.any():
            raise FlowError(
                f"negative capacity {int(capacities[np.nonzero(negative)[0][0]])}"
            )

        count = len(sources)
        base = self._size
        self._ensure_capacity(base + 2 * count)
        forward = base + 2 * np.arange(count, dtype=np.int64)
        self._heads[forward] = targets
        self._heads[forward + 1] = sources
        self._tails[forward] = sources
        self._tails[forward + 1] = targets
        self._cap[forward] = capacities
        self._cap[forward + 1] = 0
        self._cost[forward] = costs
        self._cost[forward + 1] = -costs
        self._size = base + 2 * count
        self._indptr = None
        self._csr_edges = None
        return forward

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, csr_edges)`` adjacency over directed edge ids.

        ``csr_edges[indptr[u]:indptr[u+1]]`` lists node ``u``'s outgoing
        edges in insertion order.  Rebuilt lazily after edge additions.
        """
        if self._indptr is None:
            tails = self._tails[: self._size]
            # Stable sort by tail keeps edges in insertion order per node.
            self._csr_edges = np.argsort(tails, kind="stable").astype(np.int64)
            counts = np.bincount(tails, minlength=self.num_nodes)
            self._indptr = np.concatenate(
                ([0], np.cumsum(counts, dtype=np.int64))
            )
        assert self._csr_edges is not None
        return self._indptr, self._csr_edges

    # ---------------------------------------------------------------- query
    @property
    def num_edges(self) -> int:
        """Number of forward edges."""
        return self._size // 2

    def flow_on(self, edge_id: int) -> int:
        """Current flow on forward edge ``edge_id`` (= residual twin's cap)."""
        if edge_id % 2 != 0:
            raise FlowError("flow_on expects a forward (even) edge id")
        return int(self._cap[edge_id ^ 1])

    def flows(self, edge_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`flow_on` over an array of forward edge ids."""
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if (edge_ids % 2 != 0).any():
            raise FlowError("flows expects forward (even) edge ids")
        return self._cap[edge_ids ^ 1]

    def residual(self, edge_id: int) -> int:
        """Remaining capacity of edge ``edge_id`` (forward or residual)."""
        return int(self._cap[edge_id])

    def push(self, edge_id: int, amount: int) -> None:
        """Push ``amount`` units through ``edge_id``, updating the twin."""
        if amount < 0 or amount > self._cap[edge_id]:
            raise FlowError(
                f"cannot push {amount} through edge {edge_id} "
                f"(residual {int(self._cap[edge_id])})"
            )
        self._cap[edge_id] -= amount
        self._cap[edge_id ^ 1] += amount
