"""Minimum-cost maximum-flow via successive shortest augmenting paths.

Each round finds a minimum-cost path in the residual network and augments
along it; with all original costs finite this terminates with the maximum
flow whose total cost is minimal among all maximum flows — exactly the
objective of the paper's Ford-Fulkerson + LP formulation, computed in one
pass.

Since the array-substrate rewrite the shortest-path phase is Dijkstra on
Johnson-reduced costs (:mod:`repro.flow.potentials`), not SPFA: potentials
``h`` keep every residual cost ``c + h(u) - h(v)`` non-negative, so each
phase is O((V + E) log V) with vectorized per-node relaxation.  Graphs with
negative *original* costs bootstrap their potentials with one guarded
Bellman-Ford pass — a negative-cost cycle now raises :class:`FlowError`
instead of hanging the solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork
from repro.flow.potentials import (
    ResidualPricing,
    bellman_ford_potentials,
    dijkstra_reduced,
    extract_path,
    scan_shortest_paths,
)


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a min-cost max-flow computation."""

    max_flow: int
    total_cost: float


class MinCostMaxFlow:
    """Successive-shortest-path MCMF over a :class:`FlowNetwork`.

    After :meth:`solve`, :attr:`potential` holds the final Johnson
    potentials — the complementary-slackness certificate: every residual
    edge has non-negative reduced cost, so the residual graph contains no
    negative-cost cycle and the flow is cost-optimal at its value.

    A network may carry flow already, provided that flow is min-cost for
    its value (e.g. a previous :meth:`solve` — warm restart): the guarded
    Bellman-Ford bootstrap prices the exposed negative twins.  A
    *suboptimal* pre-flow leaves a negative residual cycle and raises
    :class:`FlowError`, like any genuinely negative-cycled cost structure.
    """

    def __init__(self, network: FlowNetwork, engine: str = "auto") -> None:
        if engine not in ("auto", "scan", "dijkstra"):
            raise FlowError(f"unknown shortest-path engine {engine!r}")
        self.network = network
        self.engine = engine
        #: Final node potentials; ``None`` until :meth:`solve` runs.
        self.potential: np.ndarray | None = None

    def _shortest_paths(
        self,
        source: int,
        sink: int,
        potential: np.ndarray,
        pricing: ResidualPricing | None = None,
    ):
        engine = self.engine
        if engine == "auto":
            # Dense, shallow graphs (the assignment networks) are fastest
            # under whole-graph scans; sparse deep ones under the heap.
            engine = "scan" if 2 * self.network.num_edges >= 4 * self.network.num_nodes else "dijkstra"
        if engine == "scan":
            return scan_shortest_paths(
                self.network, source, potential, sink=sink, pricing=pricing
            )
        return dijkstra_reduced(
            self.network, source, potential, sink=sink, pricing=pricing
        )

    def solve(self, source: int, sink: int) -> FlowResult:
        """Run MCMF from ``source`` to ``sink``; mutates the network."""
        if source == sink:
            raise FlowError("source and sink must differ")
        network = self.network
        cap = network.edge_cap
        cost = network.edge_cost
        # Zero potentials are only valid when no *active* residual edge has
        # negative cost — a network that already carries flow exposes the
        # negated twins of its used edges, so check the residual graph, not
        # just the forward costs.
        active_costs = cost[cap > 0]
        if active_costs.size and active_costs.min() < 0:
            potential = bellman_ford_potentials(network, source)
        else:
            potential = np.zeros(network.num_nodes)
        # Incremental pricing: active flags and reduced costs are maintained
        # across augmentations instead of recompacted from scratch per phase.
        pricing = ResidualPricing(network, potential)
        total_flow = 0
        total_cost = 0.0
        while True:
            distance, in_edge = self._shortest_paths(
                source, sink, potential, pricing=pricing
            )
            if in_edge[sink] == -1:
                self.potential = potential
                return FlowResult(max_flow=total_flow, total_cost=total_cost)
            # The search stops once the sink settles, so unsettled nodes only
            # carry tentative labels; capping at distance[sink] keeps every
            # residual reduced cost non-negative (Johnson's invariant).
            potential = potential + np.minimum(distance, distance[sink])

            path = extract_path(network, source, sink, in_edge)
            bottleneck = int(cap[path].min())
            assert bottleneck > 0
            cap[path] -= bottleneck
            cap[path ^ 1] += bottleneck
            total_flow += bottleneck
            total_cost += bottleneck * float(cost[path].sum())
            pricing.update(potential, path)
