"""Minimum-cost maximum-flow via successive shortest augmenting paths.

Each round finds a minimum-cost path in the residual network (SPFA — a
queue-based Bellman-Ford that tolerates the negative residual costs created
by pushed flow) and augments along it.  With all original costs finite this
terminates with the maximum flow whose total cost is minimal among all
maximum flows — exactly the objective of the paper's Ford-Fulkerson + LP
formulation, computed in one pass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork


@dataclass(frozen=True)
class FlowResult:
    """Outcome of a min-cost max-flow computation."""

    max_flow: int
    total_cost: float


class MinCostMaxFlow:
    """Successive-shortest-path MCMF over a :class:`FlowNetwork`."""

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network

    def _spfa(self, source: int, sink: int) -> tuple[list[float], list[int]]:
        """Shortest distances by cost and the incoming edge of each node."""
        network = self.network
        infinity = float("inf")
        distance = [infinity] * network.num_nodes
        in_edge = [-1] * network.num_nodes
        in_queue = [False] * network.num_nodes
        distance[source] = 0.0
        queue: deque[int] = deque([source])
        in_queue[source] = True
        while queue:
            node = queue.popleft()
            in_queue[node] = False
            node_distance = distance[node]
            for edge_id in network.adjacency[node]:
                if network.edge_cap[edge_id] <= 0:
                    continue
                target = network.edge_to[edge_id]
                candidate = node_distance + network.edge_cost[edge_id]
                if candidate < distance[target] - 1e-12:
                    distance[target] = candidate
                    in_edge[target] = edge_id
                    if not in_queue[target]:
                        in_queue[target] = True
                        # Small-label-first heuristic keeps SPFA fast on
                        # assignment graphs.
                        if queue and candidate < distance[queue[0]]:
                            queue.appendleft(target)
                        else:
                            queue.append(target)
        return distance, in_edge

    def solve(self, source: int, sink: int) -> FlowResult:
        """Run MCMF from ``source`` to ``sink``; mutates the network."""
        if source == sink:
            raise FlowError("source and sink must differ")
        network = self.network
        total_flow = 0
        total_cost = 0.0
        while True:
            distance, in_edge = self._spfa(source, sink)
            if in_edge[sink] == -1:
                return FlowResult(max_flow=total_flow, total_cost=total_cost)
            # Bottleneck along the found path.
            bottleneck = None
            node = sink
            while node != source:
                edge_id = in_edge[node]
                residual = network.edge_cap[edge_id]
                bottleneck = residual if bottleneck is None else min(bottleneck, residual)
                node = network.edge_to[edge_id ^ 1]
            assert bottleneck is not None and bottleneck > 0
            node = sink
            while node != source:
                edge_id = in_edge[node]
                network.push(edge_id, bottleneck)
                node = network.edge_to[edge_id ^ 1]
            total_flow += bottleneck
            total_cost += bottleneck * distance[sink]
