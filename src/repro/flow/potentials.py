"""Shared reduced-cost machinery for min-cost max-flow.

Successive-shortest-path MCMF needs, per augmentation, a cheapest residual
path.  The classic Johnson trick maintains node potentials ``h`` so the
reduced costs

    c'(u, v) = c(u, v) + h(u) - h(v) >= 0

stay non-negative on every residual edge, which lets each phase run Dijkstra
(O((V + E) log V)) instead of Bellman-Ford (O(V * E)).  This module hosts
the pieces both solvers share:

* :func:`dijkstra_reduced` — reduced-cost Dijkstra over the CSR arrays with
  vectorized per-node relaxation;
* :class:`ResidualPricing` — incrementally maintained active flags and
  reduced costs over the full CSR adjacency, so successive augmentations
  reprice only the edges whose potentials or residual status actually
  changed instead of rebuilding the compaction from scratch;
* :func:`bellman_ford_potentials` — a queue-based Bellman-Ford (SPFA) that
  bootstraps valid potentials when original costs may be negative, with an
  explicit relaxation-count guard that raises :class:`FlowError` on a
  negative-cost cycle instead of looping forever;
* :func:`extract_path` — walk the ``in_edge`` tree, returning the edge ids
  from source to sink.

:class:`PotentialMinCostMaxFlow` is kept as the historical name of the
Dijkstra-with-potentials solver; since the rewrite it is simply
:class:`repro.flow.mincost.MinCostMaxFlow` restricted to non-negative
original costs (checked eagerly, matching its old contract).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork, csr_gather

#: Slack used when comparing float path costs.
COST_EPS = 1e-12


def _compact_reduced(
    network: FlowNetwork, potential: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency compacted to active edges, priced at reduced cost.

    Both shortest-path engines start a run this way: the potentials and the
    residual mask are fixed for the whole search, so active edges are
    compacted and priced once in a few vectorized passes.  Returns
    ``(act_indptr, act_edges, act_heads, act_reduced)``, with tiny float
    negatives in the reduced costs clamped to zero.
    """
    indptr, csr_edges = network.csr()
    active = network.edge_cap[csr_edges] > 0
    act_edges = csr_edges[active]
    cumulative = np.concatenate(([0], np.cumsum(active, dtype=np.int64)))
    act_indptr = cumulative[indptr]
    act_heads = network.edge_to[act_edges]
    act_reduced = (
        network.edge_cost[act_edges]
        + potential[network.edge_tail[act_edges]]
        - potential[act_heads]
    )
    np.maximum(act_reduced, 0.0, out=act_reduced)
    return act_indptr, act_edges, act_heads, act_reduced


class ResidualPricing:
    """Incrementally maintained edge pricing across MCMF augmentations.

    :func:`_compact_reduced` rebuilds the active-edge compaction and
    re-prices *every* residual edge at the start of every shortest-path run
    — O(E) work per augmentation even though a single augmentation flips
    the residual status of only the path edges and, in the common
    late-solve case (``distance[sink] == 0``), changes no potential at all.

    This class keeps the *full* CSR slot layout fixed and maintains, per
    slot, an ``active`` flag and the ``reduced`` cost priced at the current
    potentials.  Because boolean masking preserves CSR order, iterating the
    full layout filtered by ``active`` visits edges in exactly the order of
    the compacted arrays, so both engines relax the same edges at the same
    values in the same sequence — distances and parent edges stay
    bit-identical to the compacting path.

    :meth:`update` folds one augmentation in: path slots get their active
    flags refreshed from capacities, and reduced costs are recomputed only
    on slots incident to nodes whose potential value changed.  When the
    change set is a large fraction of the graph the incremental gather
    costs more than it saves, so a full vectorized reprice runs instead.

    The invariant throughout: every slot (active or not) carries the
    reduced cost of its edge at ``self.potential``, computed by the same
    elementwise formula and clamp as :func:`_compact_reduced`.
    """

    #: Full reprice once potentials changed on >= 1/FRACTION of the nodes.
    FULL_REPRICE_FRACTION = 4

    def __init__(self, network: FlowNetwork, potential: np.ndarray) -> None:
        self.network = network
        indptr, csr_edges = network.csr()
        self.indptr = indptr
        self.csr_edges = csr_edges
        self.heads = network.edge_to[csr_edges]
        self._tails = network.edge_tail[csr_edges]
        self._costs = network.edge_cost[csr_edges]
        #: Slot of each edge id in the CSR layout (inverse permutation).
        self._slot_of = np.empty(csr_edges.size, dtype=np.int64)
        self._slot_of[csr_edges] = np.arange(csr_edges.size, dtype=np.int64)
        # Incoming-slot index: slots grouped by head node, so one changed
        # node locates both its outgoing and incoming slots in O(degree).
        order = np.argsort(self.heads, kind="stable")
        self._in_order = order
        self._in_indptr = np.searchsorted(
            self.heads[order], np.arange(network.num_nodes + 1)
        )
        self.active = network.edge_cap[csr_edges] > 0
        self.potential = np.array(potential, dtype=float, copy=True)
        self.reduced = np.empty(csr_edges.size)
        self._reprice(slice(None))

    def _reprice(self, slots) -> None:
        """Recompute ``reduced`` on ``slots`` at the current potentials.

        Same elementwise expression and zero clamp as
        :func:`_compact_reduced` — bit-identity depends on it.
        """
        reduced = (
            self._costs[slots]
            + self.potential[self._tails[slots]]
            - self.potential[self.heads[slots]]
        )
        np.maximum(reduced, 0.0, out=reduced)
        self.reduced[slots] = reduced

    def update(self, new_potential: np.ndarray, path: np.ndarray) -> None:
        """Fold one augmentation into the pricing.

        ``path`` is the augmented path's edge ids *after* the caller pushed
        flow (capacities already updated); both twins of every path edge
        refresh their active flags.  Reduced costs are then repriced only
        on slots incident to nodes whose potential value changed — by value
        comparison, so a ``-0.0``/``+0.0`` flip (never observable in the
        reduced-cost formula) does not trigger work.
        """
        twins = np.concatenate([path, path ^ 1])
        self.active[self._slot_of[twins]] = self.network.edge_cap[twins] > 0
        changed = np.nonzero(new_potential != self.potential)[0]
        if changed.size == 0:
            return
        self.potential[:] = new_potential
        if self.FULL_REPRICE_FRACTION * changed.size >= self.network.num_nodes:
            self._reprice(slice(None))
            return
        out_slots, _ = csr_gather(self.indptr, changed)
        in_slots = self._in_order[csr_gather(self._in_indptr, changed)[0]]
        self._reprice(np.unique(np.concatenate([out_slots, in_slots])))


def dijkstra_reduced(
    network: FlowNetwork,
    source: int,
    potential: np.ndarray,
    sink: int | None = None,
    pricing: ResidualPricing | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shortest reduced-cost distances from ``source`` over residual edges.

    Returns ``(distance, in_edge)``; unreachable nodes keep ``inf`` /
    ``-1``.  ``potential`` must make every residual reduced cost
    non-negative (tiny float negatives are clamped to zero).

    The potentials and the residual mask are fixed for the whole run, so the
    run starts by compacting the CSR adjacency down to the active edges and
    pricing every one of them in a handful of vectorized passes; the heap
    loop then only slices pre-priced views.  When ``sink`` is given the
    search stops as soon as the sink settles — tentative labels of unsettled
    nodes are then lower-bounded by ``distance[sink]``, which is exactly the
    cap the caller must apply when folding distances back into potentials.

    With ``pricing`` the compaction step is skipped: the heap loop slices
    the full CSR layout and filters each node's slots by the maintained
    active mask, visiting the same edges at the same reduced costs in the
    same order (``potential`` is then only used for documentation of the
    contract — the pricing object carries the current values).
    """
    if pricing is None:
        act_indptr, act_edges, act_heads, act_reduced = _compact_reduced(
            network, potential
        )
        active = None
    else:
        act_indptr, act_edges = pricing.indptr, pricing.csr_edges
        act_heads, act_reduced = pricing.heads, pricing.reduced
        active = pricing.active
    distance = np.full(network.num_nodes, np.inf)
    in_edge = np.full(network.num_nodes, -1, dtype=np.int64)
    done = np.zeros(network.num_nodes, dtype=bool)
    distance[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        node_distance, node = heapq.heappop(heap)
        if done[node]:
            continue
        done[node] = True
        if node == sink:
            break
        low, high = act_indptr[node], act_indptr[node + 1]
        if low == high:
            continue
        if active is None:
            targets = act_heads[low:high]
            candidates = node_distance + act_reduced[low:high]
            edge_ids = act_edges[low:high]
        else:
            mask = active[low:high]
            targets = act_heads[low:high][mask]
            candidates = node_distance + act_reduced[low:high][mask]
            edge_ids = act_edges[low:high][mask]
        better = np.nonzero(candidates < distance[targets] - COST_EPS)[0]
        for position in better:
            target = int(targets[position])
            candidate = float(candidates[position])
            # Re-check: the batch may relax the same target twice.
            if candidate < distance[target] - COST_EPS:
                distance[target] = candidate
                in_edge[target] = int(edge_ids[position])
                heapq.heappush(heap, (candidate, target))
    return distance, in_edge


def scan_shortest_paths(
    network: FlowNetwork,
    source: int,
    potential: np.ndarray,
    sink: int | None = None,
    pricing: ResidualPricing | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Label-correcting shortest paths by vectorized frontier scans.

    Same contract as :func:`dijkstra_reduced` (non-negative reduced costs
    guaranteed by ``potential``), different engine: a batched SPFA in the
    style of ``propagation.batched_cascade`` — each level relaxes every
    active residual edge leaving the current frontier with a handful of
    numpy kernels, and improved nodes form the next frontier.  Duplicate
    heads inside one batch are resolved exactly by re-scattering until no
    candidate beats the written label (labels strictly decrease, so the
    inner loop terminates).

    When ``sink`` is given, labels at or above the sink's tentative label
    are pruned: with non-negative reduced costs they can never lie on a
    cheaper augmenting path, and the prefix labels of any node that *does*
    end below the sink are themselves below the sink, so no needed
    relaxation is ever dropped.  Pruned nodes keep stale/infinite labels —
    callers must cap dual updates at ``distance[sink]``, exactly as for the
    early-exiting Dijkstra.  This kills the label-correcting churn that
    otherwise re-relaxes most of the graph every level.

    With ``pricing`` the compaction step is skipped: each frontier scan
    gathers slots from the full CSR layout and filters the batch by the
    maintained active mask.  Boolean masking preserves gather order, so
    the batch holds the same edges at the same reduced costs in the same
    sequence as the compacted arrays — the re-scatter resolution and hence
    distances and parent edges stay bit-identical.
    """
    if pricing is None:
        act_indptr, act_edges, act_heads, act_reduced = _compact_reduced(
            network, potential
        )
        active = None
    else:
        act_indptr, act_edges = pricing.indptr, pricing.csr_edges
        act_heads, act_reduced = pricing.heads, pricing.reduced
        active = pricing.active
    distance = np.full(network.num_nodes, np.inf)
    in_edge = np.full(network.num_nodes, -1, dtype=np.int64)
    distance[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        if sink is not None:
            frontier = frontier[distance[frontier] < distance[sink] - COST_EPS]
            if frontier.size == 0:
                break
        positions, counts = csr_gather(act_indptr, frontier)
        if active is not None:
            # Repeat BEFORE masking so each candidate keeps its own node's
            # label, then drop inactive slots — order is preserved.
            base = np.repeat(distance[frontier], counts)
            mask = active[positions]
            positions = positions[mask]
            if positions.size == 0:
                break
            heads_batch = act_heads[positions]
            candidates = base[mask] + act_reduced[positions]
        else:
            if positions.size == 0:
                break
            heads_batch = act_heads[positions]
            candidates = (
                np.repeat(distance[frontier], counts) + act_reduced[positions]
            )
        touched: list[np.ndarray] = []
        while True:
            limit = distance[heads_batch]
            if sink is not None:
                np.minimum(limit, distance[sink], out=limit)
            improved = np.nonzero(candidates < limit - COST_EPS)[0]
            if improved.size == 0:
                break
            winners = heads_batch[improved]
            distance[winners] = candidates[improved]
            in_edge[winners] = act_edges[positions[improved]]
            touched.append(winners)
        if not touched:
            break
        frontier = np.unique(np.concatenate(touched))
    return distance, in_edge


def bellman_ford_potentials(network: FlowNetwork, source: int) -> np.ndarray:
    """Valid starting potentials when original costs may be negative.

    Queue-based Bellman-Ford (SPFA) over the residual edges.  A node
    re-entering the queue more than ``num_nodes`` times proves a
    negative-cost cycle, which successive-shortest-path MCMF cannot price —
    the guard raises :class:`FlowError` instead of relaxing forever (the
    latent hazard of the pre-rewrite SPFA solver).  Nodes unreachable from
    ``source`` get potential 0; they can never join an augmenting path.
    """
    indptr, csr_edges = network.csr()
    heads = network.edge_to
    cap = network.edge_cap
    cost = network.edge_cost
    num_nodes = network.num_nodes
    distance = np.full(num_nodes, np.inf)
    distance[source] = 0.0
    in_queue = np.zeros(num_nodes, dtype=bool)
    visits = np.zeros(num_nodes, dtype=np.int64)
    queue = [source]
    in_queue[source] = True
    while queue:
        next_queue: list[int] = []
        for node in queue:
            in_queue[node] = False
        for node in queue:
            node_distance = distance[node]
            edges = csr_edges[indptr[node] : indptr[node + 1]]
            edges = edges[cap[edges] > 0]
            if edges.size == 0:
                continue
            targets = heads[edges]
            candidates = node_distance + cost[edges]
            improved = candidates < distance[targets] - COST_EPS
            for target, candidate in zip(targets[improved], candidates[improved]):
                target = int(target)
                if candidate < distance[target] - COST_EPS:
                    distance[target] = candidate
                    if not in_queue[target]:
                        visits[target] += 1
                        if visits[target] > num_nodes:
                            raise FlowError(
                                "negative-cost cycle detected while computing "
                                f"potentials (node {target} relaxed more than "
                                f"{num_nodes} times)"
                            )
                        in_queue[target] = True
                        next_queue.append(target)
        queue = next_queue
    np.nan_to_num(distance, copy=False, posinf=0.0)
    return distance


def extract_path(network: FlowNetwork, source: int, sink: int, in_edge: np.ndarray) -> np.ndarray:
    """Edge ids of the found augmenting path, sink-to-source order reversed."""
    heads = network.edge_to
    path: list[int] = []
    node = sink
    while node != source:
        edge_id = int(in_edge[node])
        path.append(edge_id)
        node = int(heads[edge_id ^ 1])
    return np.asarray(path[::-1], dtype=np.int64)


class PotentialMinCostMaxFlow:
    """Dijkstra-with-potentials MCMF over non-negative original costs.

    Historically this class was the fast alternative to the SPFA-based
    :class:`~repro.flow.mincost.MinCostMaxFlow`; the rewrite made Johnson
    potentials the main engine, so this wrapper only adds the eager
    non-negative-cost check of its original contract before delegating.
    """

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        #: Final node potentials; ``None`` until :meth:`solve` runs.
        self.potential: np.ndarray | None = None

    def solve(self, source: int, sink: int):
        """Run MCMF from ``source`` to ``sink``; mutates the network."""
        from repro.flow.mincost import MinCostMaxFlow

        forward_costs = self.network.edge_cost[0::2]
        if forward_costs.size:
            negative = np.nonzero(forward_costs < 0)[0]
            if negative.size:
                edge_id = int(negative[0]) * 2
                raise FlowError(
                    "PotentialMinCostMaxFlow requires non-negative edge costs; "
                    f"edge {edge_id} has cost {float(forward_costs[negative[0]])}"
                )
        solver = MinCostMaxFlow(self.network)
        result = solver.solve(source, sink)
        self.potential = solver.potential
        return result
