"""Min-cost max-flow via Dijkstra with Johnson potentials (extension).

The SPFA-based solver in :mod:`repro.flow.mincost` tolerates the negative
residual costs created by pushed flow at the price of Bellman-Ford-style
worst cases.  When every *original* edge cost is non-negative — true for all
of the library's assignment graphs — the classic remedy is to maintain node
potentials ``h`` and run Dijkstra on the reduced costs

    c'(u, v) = c(u, v) + h(u) - h(v) >= 0,

updating ``h += dist`` after every augmentation.  Same exact optimum as the
SPFA solver (equivalence-tested), with an O((V + E) log V) shortest-path
phase instead of O(V * E).
"""

from __future__ import annotations

import heapq

from repro.exceptions import FlowError
from repro.flow.mincost import FlowResult
from repro.flow.network import FlowNetwork


class PotentialMinCostMaxFlow:
    """Successive shortest paths with Dijkstra + potentials.

    Requires every forward edge cost to be non-negative (checked at
    :meth:`solve` time); the residual graph then never exposes a negative
    reduced cost.
    """

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network

    def _dijkstra(
        self, source: int, sink: int, potential: list[float]
    ) -> tuple[list[float], list[int]]:
        """Reduced-cost shortest distances and the incoming edge per node."""
        network = self.network
        infinity = float("inf")
        distance = [infinity] * network.num_nodes
        in_edge = [-1] * network.num_nodes
        distance[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > distance[node] + 1e-12:
                continue
            for edge_id in network.adjacency[node]:
                if network.edge_cap[edge_id] <= 0:
                    continue
                target = network.edge_to[edge_id]
                reduced = (
                    network.edge_cost[edge_id] + potential[node] - potential[target]
                )
                # Clamp the tiny negatives produced by float accumulation.
                if reduced < 0:
                    reduced = 0.0
                candidate = d + reduced
                if candidate < distance[target] - 1e-12:
                    distance[target] = candidate
                    in_edge[target] = edge_id
                    heapq.heappush(heap, (candidate, target))
        return distance, in_edge

    def solve(self, source: int, sink: int) -> FlowResult:
        """Run MCMF from ``source`` to ``sink``; mutates the network."""
        if source == sink:
            raise FlowError("source and sink must differ")
        network = self.network
        for edge_id in range(0, len(network.edge_cost), 2):
            if network.edge_cost[edge_id] < 0:
                raise FlowError(
                    "PotentialMinCostMaxFlow requires non-negative edge costs; "
                    f"edge {edge_id} has cost {network.edge_cost[edge_id]}"
                )

        potential = [0.0] * network.num_nodes
        total_flow = 0
        total_cost = 0.0
        while True:
            distance, in_edge = self._dijkstra(source, sink, potential)
            if in_edge[sink] == -1:
                return FlowResult(max_flow=total_flow, total_cost=total_cost)
            for node in range(network.num_nodes):
                if distance[node] < float("inf"):
                    potential[node] += distance[node]

            bottleneck = None
            node = sink
            while node != source:
                edge_id = in_edge[node]
                residual = network.edge_cap[edge_id]
                bottleneck = residual if bottleneck is None else min(bottleneck, residual)
                node = network.edge_to[edge_id ^ 1]
            assert bottleneck is not None and bottleneck > 0

            path_cost = 0.0
            node = sink
            while node != source:
                edge_id = in_edge[node]
                network.push(edge_id, bottleneck)
                path_cost += network.edge_cost[edge_id]
                node = network.edge_to[edge_id ^ 1]

            total_flow += bottleneck
            total_cost += bottleneck * path_cost
