"""Array-native lexicographic bipartite matching (SSP on a dense matrix).

The Figure-4 assignment networks are three-layer bipartite graphs, which
lets the successive-shortest-path machinery of :mod:`repro.flow.mincost`
drop the generic CSR walk entirely: the residual graph is a ``W x T``
reduced-cost matrix plus a partial matching, and one augmentation is a few
whole-matrix/whole-frontier numpy kernels.

The algorithm is the one the general solver runs, specialized:

* Johnson duals keep every feasible reduced cost ``rc = c - u(w) - v(t)``
  non-negative, matched pairs exactly tight (``rc == 0``), so reverse
  residual edges cost zero and a matched worker's label is simply its
  task's label;
* each augmentation is a multi-source (all unmatched workers) shortest-path
  search by alternating vectorized sweeps — a per-column min over the
  improved rows, a conflict-free scatter back through matched columns —
  pruned against the best sink label found so far;
* duals fold back capped at the sink distance, exactly like the early-exit
  Dijkstra of :func:`repro.flow.potentials.dijkstra_reduced`.

Infeasible pairs are priced ``inf``, which makes the same code solve the
*lexicographic* objective (maximum cardinality first, minimum cost second):
augmentation stops exactly when no feasible augmenting path remains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import FlowError
from repro.flow.potentials import COST_EPS


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of a lexicographic bipartite matching."""

    #: ``(worker_row, task_column)`` pairs, ascending by worker row.
    pairs: list[tuple[int, int]]
    #: Total cost over the matched pairs.
    total_cost: float


def min_cost_matching(cost: np.ndarray, feasible: np.ndarray) -> MatchingResult:
    """Maximum-cardinality, then minimum-cost matching on a cost matrix.

    Parameters
    ----------
    cost:
        ``W x T`` non-negative costs (entries at infeasible positions are
        ignored).
    feasible:
        ``W x T`` boolean mask of allowed pairs.

    Computes the exact optimum of the paper's MCMF formulation (equal flow
    value and equal total cost — oracle-tested against both the general
    network solver and scipy's Jonker-Volgenant implementation).
    """
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise FlowError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    num_workers, num_tasks = cost.shape
    if cost.size == 0 or not feasible.any():
        return MatchingResult(pairs=[], total_cost=0.0)
    if np.any(cost[feasible] < 0):
        raise FlowError("min_cost_matching requires non-negative costs")

    # Reduced costs under the running duals; infeasible pairs never relax.
    reduced = np.where(feasible, cost, np.inf)
    row_match = np.full(num_workers, -1, dtype=np.int64)
    col_match = np.full(num_tasks, -1, dtype=np.int64)
    columns = np.arange(num_tasks)

    while True:
        free_rows = np.nonzero(row_match < 0)[0]
        if free_rows.size == 0:
            break
        dist_w = np.where(row_match < 0, 0.0, np.inf)
        dist_t = np.full(num_tasks, np.inf)
        parent_t = np.full(num_tasks, -1, dtype=np.int64)
        best_cost = np.inf
        best_t = -1
        rows = free_rows
        while rows.size:
            # Forward sweep: cheapest entry per column over the improved rows.
            sub = dist_w[rows, None] + reduced[rows]
            winner = np.argmin(sub, axis=0)
            values = sub[winner, columns]
            improved = values < dist_t - COST_EPS
            if best_t >= 0:
                improved &= values < best_cost - COST_EPS
            hit = np.nonzero(improved)[0]
            if hit.size == 0:
                break
            dist_t[hit] = values[hit]
            parent_t[hit] = rows[winner[hit]]
            # Sink relaxation: an improved unmatched column ends a path.
            open_cols = hit[col_match[hit] < 0]
            if open_cols.size:
                candidate = open_cols[np.argmin(dist_t[open_cols])]
                if dist_t[candidate] < best_cost - COST_EPS:
                    best_cost = float(dist_t[candidate])
                    best_t = int(candidate)
            # Reverse sweep: matched columns hand their (zero-reduced-cost)
            # label to their matched worker — conflict-free, the matching
            # is injective.
            taken_cols = hit[col_match[hit] >= 0]
            if taken_cols.size == 0:
                break
            workers = col_match[taken_cols]
            labels = dist_t[taken_cols]
            better = labels < dist_w[workers] - COST_EPS
            if best_t >= 0:
                better &= labels < best_cost - COST_EPS
            rows = workers[better]
            dist_w[rows] = labels[better]
        if best_t < 0:
            break  # no augmenting path: maximum cardinality reached
        # Fold labels into the duals, capped at the sink label (pruned and
        # unreached nodes carry the cap), preserving rc >= 0 everywhere and
        # rc == 0 on matched pairs.
        reduced += (
            np.minimum(dist_w, best_cost)[:, None]
            - np.minimum(dist_t, best_cost)[None, :]
        )
        np.maximum(reduced, 0.0, out=reduced)
        # Flip the matching along the parent chain.
        column = best_t
        while True:
            worker = int(parent_t[column])
            previous = int(row_match[worker])
            row_match[worker] = column
            col_match[column] = worker
            if previous == -1:
                break
            column = previous

    matched_rows = np.nonzero(row_match >= 0)[0]
    pairs = [(int(row), int(row_match[row])) for row in matched_rows]
    total = float(cost[matched_rows, row_match[matched_rows]].sum()) if pairs else 0.0
    return MatchingResult(pairs=pairs, total_cost=total)
