"""Array-native lexicographic bipartite matching (SSP on a dense matrix).

The Figure-4 assignment networks are three-layer bipartite graphs, which
lets the successive-shortest-path machinery of :mod:`repro.flow.mincost`
drop the generic CSR walk entirely: the residual graph is a ``W x T``
reduced-cost matrix plus a partial matching, and one augmentation is a few
whole-matrix/whole-frontier numpy kernels.

The algorithm is the one the general solver runs, specialized:

* Johnson duals keep every feasible reduced cost ``rc = c - u(w) - v(t)``
  non-negative, matched pairs exactly tight (``rc == 0``), so reverse
  residual edges cost zero and a matched worker's label is simply its
  task's label;
* each augmentation is a multi-source (all unmatched workers) shortest-path
  search by alternating vectorized sweeps — a per-column min over the
  improved rows, a conflict-free scatter back through matched columns —
  pruned against the best sink label found so far;
* duals fold back capped at the sink distance, exactly like the early-exit
  Dijkstra of :func:`repro.flow.potentials.dijkstra_reduced`.

Infeasible pairs are priced ``inf``, which makes the same code solve the
*lexicographic* objective (maximum cardinality first, minimum cost second):
augmentation stops exactly when no feasible augmenting path remains.

Warm starts
-----------

Streaming rounds solve near-identical instances back to back: surviving
workers and tasks carry spatial prices from one micro-batch to the next,
so the previous round's duals are an almost-optimal potential for the next
round's matrix.  A :class:`WarmStart` carries the final duals and matching
keyed by *caller ids* (worker/task identities, not row/column indices —
rows shift between rounds).

Warm solves run the successive-shortest-path machinery in its general
form: the residual network's virtual source and sink carry their own
potentials ``U`` and ``V`` (the Jonker–Volgenant restart), so per-entity
carried duals are legal as long as the full reduced-cost system is
non-negative:

* ``c - u - v >= 0`` on feasible pairs, exactly ``0`` on seeded matches;
* the source band ``u_matched <= U <= u_free`` (source arcs to free rows
  price ``u - U >= 0``, which is where free rows start the label sweep);
* the sink band ``v_matched <= V <= v_free`` (sink arcs from free columns
  price ``v - V >= 0``, added to a column's label when competing for the
  cheapest augmenting path).

Seeding re-establishes this system for arbitrary input: carried duals are
sanitized and price-capped per column, and a monotone fixpoint pass
rejects any carried match that breaks tightness or the bands.  A cold
solve is the special case ``u = v = 0``, ``U = V = 0``, where every
band term is exactly ``0.0`` — the cold path is unchanged, byte for byte.
Because validity is re-established by construction rather than trusted,
*any* carried state — including adversarially perturbed duals — yields the
same lexicographic optimum as a cold solve; only the amount of remaining
augmentation work varies.

Retired-pair geometry
---------------------

A retire-everything stream re-pools *neither* side of an assigned pair,
so no carried match ever survives — but that very structure is the warm
accelerator.  Every entity the carry knows (a *stale* id, keyed in the
carried dual maps) was **free** in the previous round's maximum matching;
a feasible stale-stale pair would have been an augmenting path of length
one, contradicting maximality, and feasibility only shrinks between
rounds (locations are static while warm state lives — relocations
invalidate it — and deadlines tighten).  The feasible region of a warm
matrix is therefore an **L-shape**: fresh rows against all columns, plus
stale rows against fresh columns; the stale-stale block is dead.  The
solver verifies that claim against the mask in one pass (a lying carry
degrades gracefully to the full sweep), permutes stale entities last so
the two live blocks are contiguous, and then every label sweep and every
dual fold runs on the L-shape only — the dominant win when a mature pool
of stranded entities dwarfs each round's arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.exceptions import FlowError
from repro.flow.potentials import COST_EPS


@dataclass
class WarmStart:
    """Dual/matching state carried between consecutive matching solves.

    Keys are caller-supplied worker/task ids (row and column indices are
    meaningless across rounds).  Contents are advisory: the solver never
    trusts them, it re-validates everything at seed time.
    """

    #: Final worker duals ``u`` of the producing solve, by worker id.
    worker_duals: dict[Hashable, float] = field(default_factory=dict)
    #: Final task duals ``v`` of the producing solve, by task id.
    task_duals: dict[Hashable, float] = field(default_factory=dict)
    #: Matched pairs of the producing solve, worker id -> task id.
    matches: dict[Hashable, Hashable] = field(default_factory=dict)


@dataclass(frozen=True, eq=False)
class MatchingResult:
    """Outcome of a lexicographic bipartite matching."""

    #: Matched worker rows, ascending, int64.
    rows: np.ndarray
    #: Matched task columns aligned with :attr:`rows`, int64.
    cols: np.ndarray
    #: Total cost over the matched pairs.
    total_cost: float
    #: Augmenting-path searches performed (solver effort; a warm solve of
    #: an unchanged instance performs zero).
    augmentations: int = 0
    #: Matched pairs accepted from the warm seed (0 on cold solves).
    seeded: int = 0
    #: Updated carry-over state when ids were supplied, else ``None``.
    warm: WarmStart | None = None

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """``(worker_row, task_column)`` tuples, ascending by worker row."""
        return [
            (int(row), int(col)) for row, col in zip(self.rows, self.cols)
        ]


def _seed_from_warm(
    cost: np.ndarray,
    feasible: np.ndarray,
    warm: WarmStart,
    worker_ids: Sequence[Hashable],
    task_ids: Sequence[Hashable],
) -> tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int,
    float, float,
]:
    """Build ``(reduced, u, v, row_match, col_match, seeded, U, V)``.

    The warm loop's exactness needs the full reduced-cost system of the
    residual network to be non-negative, including the virtual source and
    sink arcs, whatever the carry contains:

    * every feasible reduced cost ``c - u - v`` is non-negative and exactly
      ``0.0`` on seeded matches;
    * a source potential ``U`` with ``u <= U`` on matched rows and
      ``u >= U`` on free rows (source arcs price ``u - U``);
    * a sink potential ``V`` with ``v <= V`` on matched columns and
      ``v >= V`` on free feasible columns (sink arcs price ``v - V``).

    Free-entity duals are otherwise unconstrained — that is the point: a
    retire-everything stream seeds zero matches, and with an empty matching
    the bands are just ``U = min(u)``/``V = min(v)``, so every carried
    price survives.

    Sanitized duals are clipped to the instance's own cost span; each
    column's price is capped at ``bound = min_i(c - u)`` (lowering a free
    column's price only raises reduced costs, so the cap is always safe).
    A carried match is accepted only if both ids are present, the pair is
    feasible and exactly tight, and the column is unclaimed.  A fixpoint
    pass then rejects any match whose column price breaks its bound (a
    negative reduced cost elsewhere in the column) or whose duals stick
    out of the bands; each rejection frees its endpoints — which satisfy
    the *free*-side band inequalities by the very violation that rejected
    them, or are re-capped — but can drag ``U``/``V`` down, so the pass
    repeats until stable.  Matches only ever leave, so it terminates.

    Exact float comparisons throughout: ``v <= bound <= c - u`` entry-wise
    makes ``(c - u) - v >= 0`` exact by IEEE monotonicity, so no clamping
    is needed and seeded tightness survives the subtraction.
    """
    num_workers, num_tasks = cost.shape
    finite = cost[feasible]
    span = (float(finite.max()) + 1.0) * (min(num_workers, num_tasks) + 1.0)

    v = np.zeros(num_tasks, dtype=float)
    if warm.task_duals:
        duals = warm.task_duals
        for column, task_id in enumerate(task_ids):
            v[column] = duals.get(task_id, 0.0)
        v[~np.isfinite(v)] = 0.0
        np.clip(v, -span, span, out=v)
    u = np.zeros(num_workers, dtype=float)
    if warm.worker_duals:
        duals = warm.worker_duals
        for row, worker_id in enumerate(worker_ids):
            u[row] = duals.get(worker_id, 0.0)
        u[~np.isfinite(u)] = 0.0
        np.clip(u, -span, 0.0, out=u)

    row_match = np.full(num_workers, -1, dtype=np.int64)
    col_match = np.full(num_tasks, -1, dtype=np.int64)
    if warm.matches:
        row_of = {worker_id: row for row, worker_id in enumerate(worker_ids)}
        col_of = {task_id: column for column, task_id in enumerate(task_ids)}
        for worker_id, task_id in warm.matches.items():
            row = row_of.get(worker_id)
            column = col_of.get(task_id)
            if row is None or column is None:
                continue
            if not feasible[row, column] or col_match[column] >= 0:
                continue
            if cost[row, column] - u[row] - v[column] != 0.0:
                continue  # not tight under the carried duals
            row_match[row] = column
            col_match[column] = row

    feasible_cols = feasible.any(axis=0)
    # Per-column price cap (u is fixed from here on, so it never moves).
    shifted = np.where(feasible, cost - u[:, None], np.inf)
    bound = shifted.min(axis=0)
    free_cols = (col_match < 0) & feasible_cols
    v[free_cols] = np.minimum(v[free_cols], bound[free_cols])
    while True:
        free_rows = row_match < 0
        source_floor = float(u[free_rows].min()) if free_rows.any() else np.inf
        free_cols = (col_match < 0) & feasible_cols
        sink_floor = float(v[free_cols].min()) if free_cols.any() else np.inf
        matched_cols = np.nonzero(col_match >= 0)[0]
        if matched_cols.size == 0:
            break
        rows_m = col_match[matched_cols]
        bad = matched_cols[
            (v[matched_cols] > bound[matched_cols])
            | (v[matched_cols] > sink_floor)
            | (u[rows_m] > source_floor)
        ]
        if bad.size == 0:
            break
        row_match[col_match[bad]] = -1
        col_match[bad] = -1
        # Freed columns are free now: cap their price (safe lowering).
        v[bad] = np.minimum(v[bad], bound[bad])
    v[~feasible_cols] = 0.0
    if not np.isfinite(source_floor):
        source_floor = 0.0  # no free rows: the loop exits before sweeping
    if not np.isfinite(sink_floor):
        sink_floor = 0.0  # no open feasible column: no path can complete

    reduced = np.where(feasible, cost - u[:, None] - v[None, :], np.inf)
    seeded = int((row_match >= 0).sum())
    return reduced, u, v, row_match, col_match, seeded, source_floor, sink_floor


def min_cost_matching(
    cost: np.ndarray,
    feasible: np.ndarray,
    *,
    warm: WarmStart | None = None,
    worker_ids: Sequence[Hashable] | None = None,
    task_ids: Sequence[Hashable] | None = None,
) -> MatchingResult:
    """Maximum-cardinality, then minimum-cost matching on a cost matrix.

    Parameters
    ----------
    cost:
        ``W x T`` non-negative costs (entries at infeasible positions are
        ignored).
    feasible:
        ``W x T`` boolean mask of allowed pairs.
    warm:
        Optional :class:`WarmStart` from a previous solve of a similar
        instance.  Requires ``worker_ids``/``task_ids``.  The result is the
        same lexicographic optimum a cold solve computes; the seed only
        reduces the number of augmentations.
    worker_ids / task_ids:
        Stable per-row / per-column identities.  Supplying them (even with
        ``warm=None``) makes the result carry an updated :attr:`~MatchingResult.warm`
        state for the next solve.

    Computes the exact optimum of the paper's MCMF formulation (equal flow
    value and equal total cost — oracle-tested against both the general
    network solver and scipy's Jonker-Volgenant implementation).
    """
    cost = np.asarray(cost, dtype=float)
    feasible = np.asarray(feasible, dtype=bool)
    if cost.shape != feasible.shape:
        raise FlowError(f"shape mismatch: cost {cost.shape} vs mask {feasible.shape}")
    num_workers, num_tasks = cost.shape
    track = worker_ids is not None or task_ids is not None
    if track:
        if worker_ids is None or task_ids is None:
            raise FlowError("worker_ids and task_ids must be supplied together")
        if len(worker_ids) != num_workers or len(task_ids) != num_tasks:
            raise FlowError(
                "id/axis mismatch: "
                f"{len(worker_ids)} worker ids for {num_workers} rows, "
                f"{len(task_ids)} task ids for {num_tasks} columns"
            )
    if warm is not None and not track:
        raise FlowError("warm starts require worker_ids and task_ids")
    empty = np.empty(0, dtype=np.int64)
    if cost.size == 0 or not feasible.any():
        return MatchingResult(
            rows=empty, cols=empty, total_cost=0.0,
            warm=WarmStart() if track else None,
        )
    if np.any(cost[feasible] < 0):
        raise FlowError("min_cost_matching requires non-negative costs")

    if warm is not None:
        (
            reduced, u, v, row_match, col_match, seeded,
            source_floor, sink_floor,
        ) = _seed_from_warm(cost, feasible, warm, worker_ids, task_ids)
    else:
        # Reduced costs under the running duals; infeasible pairs never
        # relax.  (The cold path: zero duals, empty matching.)
        reduced = np.where(feasible, cost, np.inf)
        u = np.zeros(num_workers, dtype=float)
        v = np.zeros(num_tasks, dtype=float)
        row_match = np.full(num_workers, -1, dtype=np.int64)
        col_match = np.full(num_tasks, -1, dtype=np.int64)
        seeded = 0
        source_floor = 0.0
        sink_floor = 0.0
    # Heterogeneous seeded duals need the general source/sink potentials:
    # free rows start their label at the source-arc price ``u - U`` and
    # open columns compete on ``label + (v - V)``.  On a cold solve both
    # terms are exactly ``0.0``, so the biased arithmetic is gated to keep
    # the cold path byte-identical.
    biased = warm is not None
    sink_bias = v - sink_floor if biased else None
    # Retired-pair geometry (module docstring): every id the carry knows
    # was free in the previous maximum matching, so a genuine stream carry
    # has no feasible stale-stale pair.  Verify the claim in one pass —
    # once the mask itself confirms it, the optimization is sound whatever
    # the carry's history — and permute stale entities last so the live
    # L-shape is two contiguous blocks.
    lshaped = False
    if warm is not None:
        stale_row = np.fromiter(
            (worker_id in warm.worker_duals for worker_id in worker_ids),
            dtype=bool, count=num_workers,
        )
        stale_col = np.fromiter(
            (task_id in warm.task_duals for task_id in task_ids),
            dtype=bool, count=num_tasks,
        )
        if stale_row.any() and stale_col.any():
            lshaped = not feasible[np.ix_(stale_row, stale_col)].any()
    if lshaped:
        row_perm = np.argsort(stale_row, kind="stable")  # fresh rows first
        col_perm = np.argsort(stale_col, kind="stable")
        row_inv = np.empty_like(row_perm)
        row_inv[row_perm] = np.arange(num_workers)
        col_inv = np.empty_like(col_perm)
        col_inv[col_perm] = np.arange(num_tasks)
        reduced = reduced[np.ix_(row_perm, col_perm)]
        u = u[row_perm]
        v = v[col_perm]
        shuffled = row_match[row_perm]
        row_match = np.where(shuffled >= 0, col_inv[shuffled], -1)
        shuffled = col_match[col_perm]
        col_match = np.where(shuffled >= 0, row_inv[shuffled], -1)
        sink_bias = v - sink_floor
        fresh_row_count = num_workers - int(stale_row.sum())
        fresh_col_count = num_tasks - int(stale_col.sum())
    columns = np.arange(num_tasks)
    augmentations = 0

    while True:
        free_rows = np.nonzero(row_match < 0)[0]
        if free_rows.size == 0:
            break
        dist_w = np.where(row_match < 0, u - source_floor, np.inf)
        dist_t = np.full(num_tasks, np.inf)
        parent_t = np.full(num_tasks, -1, dtype=np.int64)
        best_cost = np.inf
        best_t = -1
        rows = free_rows
        while rows.size:
            # Forward sweep: cheapest entry per column over the improved
            # rows — restricted to the live L-shape when the retired-pair
            # geometry holds (stale rows only ever reach fresh columns).
            if lshaped:
                fresh_rows = rows[rows < fresh_row_count]
                stale_rows = rows[rows >= fresh_row_count]
                values = np.full(num_tasks, np.inf)
                origin = np.full(num_tasks, -1, dtype=np.int64)
                if fresh_rows.size:
                    sub = dist_w[fresh_rows, None] + reduced[fresh_rows]
                    winner = np.argmin(sub, axis=0)
                    values = sub[winner, columns]
                    origin = fresh_rows[winner]
                if stale_rows.size and fresh_col_count:
                    sub = (
                        dist_w[stale_rows, None]
                        + reduced[stale_rows, :fresh_col_count]
                    )
                    winner = np.argmin(sub, axis=0)
                    stale_vals = sub[winner, np.arange(fresh_col_count)]
                    gain = stale_vals < values[:fresh_col_count]
                    cols_won = np.nonzero(gain)[0]
                    values[cols_won] = stale_vals[gain]
                    origin[cols_won] = stale_rows[winner[gain]]
            else:
                sub = dist_w[rows, None] + reduced[rows]
                winner = np.argmin(sub, axis=0)
                values = sub[winner, columns]
                origin = rows[winner]
            improved = values < dist_t - COST_EPS
            if best_t >= 0:
                improved &= values < best_cost - COST_EPS
            hit = np.nonzero(improved)[0]
            if hit.size == 0:
                break
            dist_t[hit] = values[hit]
            parent_t[hit] = origin[hit]
            # Sink relaxation: an improved unmatched column ends a path,
            # at its label plus the sink-arc price (zero on cold solves).
            open_cols = hit[col_match[hit] < 0]
            if open_cols.size:
                if biased:
                    sink_vals = dist_t[open_cols] + sink_bias[open_cols]
                    pick = int(np.argmin(sink_vals))
                    value = float(sink_vals[pick])
                    candidate = int(open_cols[pick])
                else:
                    candidate = int(open_cols[np.argmin(dist_t[open_cols])])
                    value = float(dist_t[candidate])
                if value < best_cost - COST_EPS:
                    best_cost = value
                    best_t = candidate
            # Reverse sweep: matched columns hand their (zero-reduced-cost)
            # label to their matched worker — conflict-free, the matching
            # is injective.
            taken_cols = hit[col_match[hit] >= 0]
            if taken_cols.size == 0:
                break
            workers = col_match[taken_cols]
            labels = dist_t[taken_cols]
            better = labels < dist_w[workers] - COST_EPS
            if best_t >= 0:
                better &= labels < best_cost - COST_EPS
            rows = workers[better]
            dist_w[rows] = labels[better]
        if best_t < 0:
            break  # no augmenting path: maximum cardinality reached
        augmentations += 1
        # Fold labels into the duals, capped at the sink label (pruned and
        # unreached nodes carry the cap), preserving rc >= 0 everywhere and
        # rc == 0 on matched pairs.
        fold_w = np.minimum(dist_w, best_cost)
        fold_t = np.minimum(dist_t, best_cost)
        if lshaped:
            # Only the live blocks fold; the dead stale-stale block stays
            # ``inf`` and is never read.
            live = reduced[:fresh_row_count]
            live += fold_w[:fresh_row_count, None] - fold_t[None, :]
            np.maximum(live, 0.0, out=live)
            if fresh_col_count:
                live = reduced[fresh_row_count:, :fresh_col_count]
                live += (
                    fold_w[fresh_row_count:, None]
                    - fold_t[:fresh_col_count][None, :]
                )
                np.maximum(live, 0.0, out=live)
        else:
            reduced += fold_w[:, None] - fold_t[None, :]
            np.maximum(reduced, 0.0, out=reduced)
        if track:
            u -= fold_w
            v += fold_t
        if biased:
            # The sink potential advances by the path length (the source
            # potential never moves: the source's own distance is zero).
            sink_floor += best_cost
            sink_bias = v - sink_floor
        # Flip the matching along the parent chain.
        column = best_t
        while True:
            worker = int(parent_t[column])
            previous = int(row_match[worker])
            row_match[worker] = column
            col_match[column] = worker
            if previous == -1:
                break
            column = previous

    matched_rows = np.nonzero(row_match >= 0)[0]
    matched_cols = row_match[matched_rows]
    if lshaped:
        # Back to caller index space (the permutation was internal).
        matched_rows = row_perm[matched_rows]
        matched_cols = col_perm[matched_cols]
        order = np.argsort(matched_rows)
        matched_rows = matched_rows[order]
        matched_cols = matched_cols[order]
        restored = np.empty_like(u)
        restored[row_perm] = u
        u = restored
        restored = np.empty_like(v)
        restored[col_perm] = v
        v = restored
    total = (
        float(cost[matched_rows, matched_cols].sum()) if matched_rows.size else 0.0
    )
    warm_out: WarmStart | None = None
    if track:
        warm_out = WarmStart(
            worker_duals={
                worker_id: float(dual) for worker_id, dual in zip(worker_ids, u)
            },
            task_duals={
                task_id: float(dual) for task_id, dual in zip(task_ids, v)
            },
            matches={
                worker_ids[int(row)]: task_ids[int(col)]
                for row, col in zip(matched_rows, matched_cols)
            },
        )
    return MatchingResult(
        rows=matched_rows.astype(np.int64, copy=False),
        cols=matched_cols.astype(np.int64, copy=False),
        total_cost=total,
        augmentations=augmentations,
        seeded=seeded,
        warm=warm_out,
    )
