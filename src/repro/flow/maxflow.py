"""Maximum-flow algorithms: Edmonds-Karp and Dinic.

Edmonds-Karp is the BFS instantiation of Ford-Fulkerson the paper cites; it
is kept as the readable reference.  Dinic is the fast path used by the MTA
baseline on large assignment graphs (unit capacities make it O(E * sqrt(V))).
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork


def edmonds_karp(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum flow from ``source`` to ``sink`` (Edmonds-Karp).

    Mutates ``network`` (pushes flow); returns the max-flow value.
    """
    if source == sink:
        raise FlowError("source and sink must differ")
    total = 0
    while True:
        parent_edge = [-1] * network.num_nodes
        parent_edge[source] = -2
        queue: deque[int] = deque([source])
        while queue and parent_edge[sink] == -1:
            node = queue.popleft()
            for edge_id in network.adjacency[node]:
                target = network.edge_to[edge_id]
                if parent_edge[target] == -1 and network.edge_cap[edge_id] > 0:
                    parent_edge[target] = edge_id
                    queue.append(target)
        if parent_edge[sink] == -1:
            return total
        # Find the bottleneck, then push.
        bottleneck = None
        node = sink
        while node != source:
            edge_id = parent_edge[node]
            residual = network.edge_cap[edge_id]
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = network.edge_to[edge_id ^ 1]
        assert bottleneck is not None and bottleneck > 0
        node = sink
        while node != source:
            edge_id = parent_edge[node]
            network.push(edge_id, bottleneck)
            node = network.edge_to[edge_id ^ 1]
        total += bottleneck


class Dinic:
    """Dinic's algorithm: BFS level graph + DFS blocking flow."""

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self._level: list[int] = []
        self._iter: list[int] = []

    def _bfs(self, source: int, sink: int) -> bool:
        network = self.network
        self._level = [-1] * network.num_nodes
        self._level[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in network.adjacency[node]:
                target = network.edge_to[edge_id]
                if network.edge_cap[edge_id] > 0 and self._level[target] < 0:
                    self._level[target] = self._level[node] + 1
                    queue.append(target)
        return self._level[sink] >= 0

    def _dfs(self, node: int, sink: int, limit: int) -> int:
        if node == sink:
            return limit
        network = self.network
        adjacency = network.adjacency[node]
        while self._iter[node] < len(adjacency):
            edge_id = adjacency[self._iter[node]]
            target = network.edge_to[edge_id]
            if network.edge_cap[edge_id] > 0 and self._level[target] == self._level[node] + 1:
                pushed = self._dfs(target, sink, min(limit, network.edge_cap[edge_id]))
                if pushed > 0:
                    network.push(edge_id, pushed)
                    return pushed
            self._iter[node] += 1
        return 0

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow; mutates the underlying network."""
        if source == sink:
            raise FlowError("source and sink must differ")
        total = 0
        while self._bfs(source, sink):
            self._iter = [0] * self.network.num_nodes
            while True:
                pushed = self._dfs(source, sink, 1 << 60)
                if pushed == 0:
                    break
                total += pushed
        return total
