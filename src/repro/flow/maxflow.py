"""Maximum-flow algorithms: Edmonds-Karp and Dinic.

Edmonds-Karp is the BFS instantiation of Ford-Fulkerson the paper cites; it
is kept as the readable reference.  Dinic is the fast path used by the MTA
baseline on large assignment graphs (unit capacities make it O(E * sqrt(V))).

Dinic runs over the :meth:`~repro.flow.network.FlowNetwork.csr` arrays: the
level BFS advances whole frontiers with one vectorized capacity mask per
level, and only the blocking-flow DFS spine remains a Python loop (with
current-arc pointers, so each phase touches every edge O(1) times
amortized).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork, csr_gather


def edmonds_karp(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum flow from ``source`` to ``sink`` (Edmonds-Karp).

    Mutates ``network`` (pushes flow); returns the max-flow value.
    """
    if source == sink:
        raise FlowError("source and sink must differ")
    indptr, csr_edges = network.csr()
    heads = network.edge_to
    cap = network.edge_cap
    total = 0
    while True:
        parent_edge = [-1] * network.num_nodes
        parent_edge[source] = -2
        queue: deque[int] = deque([source])
        while queue and parent_edge[sink] == -1:
            node = queue.popleft()
            for position in range(indptr[node], indptr[node + 1]):
                edge_id = int(csr_edges[position])
                target = int(heads[edge_id])
                if parent_edge[target] == -1 and cap[edge_id] > 0:
                    parent_edge[target] = edge_id
                    queue.append(target)
        if parent_edge[sink] == -1:
            return total
        # Find the bottleneck, then push.
        bottleneck = None
        node = sink
        while node != source:
            edge_id = parent_edge[node]
            residual = int(cap[edge_id])
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = int(heads[edge_id ^ 1])
        assert bottleneck is not None and bottleneck > 0
        node = sink
        while node != source:
            edge_id = parent_edge[node]
            network.push(edge_id, bottleneck)
            node = int(heads[edge_id ^ 1])
        total += bottleneck


class Dinic:
    """Dinic's algorithm: vectorized BFS level graph + DFS blocking flow."""

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self._level: np.ndarray = np.empty(0, dtype=np.int64)

    def _bfs(self, source: int, sink: int) -> bool:
        """Level the residual graph, advancing whole frontiers per step."""
        network = self.network
        indptr, csr_edges = network.csr()
        heads = network.edge_to
        cap = network.edge_cap
        level = np.full(network.num_nodes, -1, dtype=np.int64)
        level[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            positions, _counts = csr_gather(indptr, frontier)
            if positions.size == 0:
                break
            edges = csr_edges[positions]
            edges = edges[cap[edges] > 0]
            targets = heads[edges]
            targets = targets[level[targets] < 0]
            if targets.size == 0:
                break
            frontier = np.unique(targets)
            level[frontier] = depth
        self._level = level
        return level[sink] >= 0

    def _blocking_flow(self, source: int, sink: int) -> int:
        """Current-arc DFS blocking flow over one level graph.

        The spine runs on plain Python lists (scalar list indexing beats
        ndarray scalar indexing several-fold); the updated capacities are
        written back to the network's arrays before returning.
        """
        network = self.network
        indptr_arr, csr_edges_arr = network.csr()
        indptr = indptr_arr.tolist()
        csr_edges = csr_edges_arr.tolist()
        heads = network.edge_to.tolist()
        cap = network.edge_cap.tolist()
        level = self._level.tolist()
        it = indptr[: network.num_nodes]
        total = 0
        path: list[int] = []
        node = source
        while True:
            if node == sink:
                bottleneck = min(cap[edge_id] for edge_id in path)
                for edge_id in path:
                    cap[edge_id] -= bottleneck
                    cap[edge_id ^ 1] += bottleneck
                total += bottleneck
                # Restart from the source with current arcs retained.
                path = []
                node = source
                continue
            advanced = False
            next_level = level[node] + 1
            end = indptr[node + 1]
            while it[node] < end:
                edge_id = csr_edges[it[node]]
                target = heads[edge_id]
                if cap[edge_id] > 0 and level[target] == next_level:
                    path.append(edge_id)
                    node = target
                    advanced = True
                    break
                it[node] += 1
            if not advanced:
                if node == source:
                    break
                # Dead end: retreat and advance the parent's current arc.
                edge_id = path.pop()
                node = heads[edge_id ^ 1]
                it[node] += 1
        network.edge_cap[:] = cap
        return total

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow; mutates the underlying network."""
        if source == sink:
            raise FlowError("source and sink must differ")
        total = 0
        while self._bfs(source, sink):
            total += self._blocking_flow(source, sink)
        return total
