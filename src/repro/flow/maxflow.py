"""Maximum-flow algorithms: Edmonds-Karp and Dinic.

Edmonds-Karp is the BFS instantiation of Ford-Fulkerson the paper cites; it
is kept as the readable reference.  Dinic is the fast path used by the MTA
baseline on large assignment graphs (unit capacities make it O(E * sqrt(V))).

Dinic runs over the :meth:`~repro.flow.network.FlowNetwork.csr` arrays: the
level BFS advances whole frontiers with one vectorized capacity mask per
level, and each blocking-flow phase first *compacts* the level graph with
one vectorized mask — an arc is usable for the whole phase iff it had
residual capacity at phase start and advances exactly one level (its twin
is level-backward, so mid-phase pushes can only remove capacity from the
compacted set, never add it).  The current-arc DFS spine then walks only
the compacted arcs, and the capacity deltas fold back into the network in
one fancy-indexed update per phase.  On unit-capacity networks (the
Figure-4 assignment graphs) the walk skips the bottleneck scan entirely —
level BFS + unit-path DFS is exactly Hopcroft-Karp, batched.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork, csr_gather


def edmonds_karp(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum flow from ``source`` to ``sink`` (Edmonds-Karp).

    Mutates ``network`` (pushes flow); returns the max-flow value.
    """
    if source == sink:
        raise FlowError("source and sink must differ")
    indptr, csr_edges = network.csr()
    heads = network.edge_to
    cap = network.edge_cap
    total = 0
    while True:
        parent_edge = [-1] * network.num_nodes
        parent_edge[source] = -2
        queue: deque[int] = deque([source])
        while queue and parent_edge[sink] == -1:
            node = queue.popleft()
            for position in range(indptr[node], indptr[node + 1]):
                edge_id = int(csr_edges[position])
                target = int(heads[edge_id])
                if parent_edge[target] == -1 and cap[edge_id] > 0:
                    parent_edge[target] = edge_id
                    queue.append(target)
        if parent_edge[sink] == -1:
            return total
        # Find the bottleneck, then push.
        bottleneck = None
        node = sink
        while node != source:
            edge_id = parent_edge[node]
            residual = int(cap[edge_id])
            bottleneck = residual if bottleneck is None else min(bottleneck, residual)
            node = int(heads[edge_id ^ 1])
        assert bottleneck is not None and bottleneck > 0
        node = sink
        while node != source:
            edge_id = parent_edge[node]
            network.push(edge_id, bottleneck)
            node = int(heads[edge_id ^ 1])
        total += bottleneck


class Dinic:
    """Dinic's algorithm: vectorized BFS level graph + DFS blocking flow."""

    def __init__(self, network: FlowNetwork) -> None:
        self.network = network
        self._level: np.ndarray = np.empty(0, dtype=np.int64)
        # Per-structure caches: keyed on the csr_edges array identity, which
        # FlowNetwork swaps out on any structural change.  Avoids
        # re-materializing the per-position tails between phases of one
        # solve (the network's csr() itself is already lazy).
        self._tails_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._unit_caps: bool | None = None

    def _position_tails(self, csr_edges: np.ndarray) -> np.ndarray:
        """Tail node of every CSR position, cached per network structure."""
        cache = self._tails_cache
        if cache is None or cache[0] is not csr_edges:
            cache = (csr_edges, self.network.edge_tail[csr_edges])
            self._tails_cache = cache
        return cache[1]

    def _bfs(self, source: int, sink: int) -> bool:
        """Level the residual graph, advancing whole frontiers per step."""
        network = self.network
        indptr, csr_edges = network.csr()
        heads = network.edge_to
        cap = network.edge_cap
        level = np.full(network.num_nodes, -1, dtype=np.int64)
        level[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            positions, _counts = csr_gather(indptr, frontier)
            if positions.size == 0:
                break
            edges = csr_edges[positions]
            edges = edges[cap[edges] > 0]
            targets = heads[edges]
            targets = targets[level[targets] < 0]
            if targets.size == 0:
                break
            # Dedup through a flag array: O(V + hits) beats the O(n log n)
            # sort of np.unique on the multi-million-arc frontiers, and
            # flatnonzero yields the same ascending order.
            seen = np.zeros(network.num_nodes, dtype=bool)
            seen[targets] = True
            frontier = np.flatnonzero(seen)
            level[frontier] = depth
        self._level = level
        return level[sink] >= 0

    def _blocking_flow(self, source: int, sink: int) -> int:
        """Current-arc DFS blocking flow over one *compacted* level graph.

        The admissible arc set is fixed for the whole phase: an arc is
        usable iff it had residual capacity at phase start and advances
        exactly one level.  (Its twin is level-backward, so no augmentation
        within the phase can give it capacity back — pushes only remove
        arcs from the set.)  One vectorized mask compacts the CSR down to
        those arcs, the DFS spine walks the compacted lists (scalar list
        indexing beats ndarray scalar indexing several-fold, and the walk
        now skips every level-inadmissible arc for free), and the capacity
        deltas fold back into the network with one fancy-indexed update —
        no per-phase ``tolist()`` of the full edge arrays.
        """
        network = self.network
        num_nodes = network.num_nodes
        indptr, csr_edges = network.csr()
        heads = network.edge_to
        cap = network.edge_cap
        level = self._level
        tails = self._position_tails(csr_edges)
        tail_levels = level[tails]
        usable = (
            (cap[csr_edges] > 0)
            & (tail_levels >= 0)
            & (level[heads[csr_edges]] == tail_levels + 1)
        )
        arc_edges = csr_edges[usable]
        if arc_edges.size == 0:
            return 0
        # csr_edges is grouped by tail in insertion order, so the mask keeps
        # both the grouping and the per-node arc order the walk relies on.
        arc_tails = tails[usable]
        arc_heads = heads[arc_edges]
        offsets = np.concatenate(
            ([0], np.cumsum(np.bincount(arc_tails, minlength=num_nodes)))
        )
        start_cap = cap[arc_edges]
        unit = self._unit_caps
        if unit is None:
            unit = bool((start_cap <= 1).all())
        if unit and level[sink] == 3:
            pushed = self._three_level_unit_phase(
                arc_edges, arc_tails, arc_heads, offsets, source, sink
            )
            if pushed is not None:
                return pushed
        arc_cap = start_cap.tolist()
        arc_heads = arc_heads.tolist()
        arc_tails = arc_tails.tolist()
        it = offsets[:num_nodes].tolist()
        ends = offsets[1:].tolist()

        total = 0
        path: list[int] = []  # positions into the compacted arrays
        node = source
        while True:
            if node == sink:
                if unit:
                    # Hopcroft-Karp fast path: every bottleneck is 1.
                    bottleneck = 1
                else:
                    bottleneck = min(arc_cap[position] for position in path)
                for position in path:
                    arc_cap[position] -= bottleneck
                total += bottleneck
                # Restart from the source with current arcs retained.
                path = []
                node = source
                continue
            advanced = False
            position = it[node]
            end = ends[node]
            while position < end:
                if arc_cap[position] > 0:
                    it[node] = position
                    path.append(position)
                    node = arc_heads[position]
                    advanced = True
                    break
                position += 1
            if not advanced:
                it[node] = end
                if node == source:
                    break
                # Dead end: retreat and advance the parent's current arc.
                position = path.pop()
                node = arc_tails[position]
                it[node] = position + 1
        # Fold the deltas back: arc ids are unique per CSR position and an
        # admissible arc's twin is never admissible, so plain fancy-indexed
        # updates suffice.
        new_cap = np.asarray(arc_cap, dtype=cap.dtype)
        pushed = start_cap - new_cap
        cap[arc_edges] = new_cap
        cap[arc_edges ^ 1] += pushed
        return total

    def _three_level_unit_phase(
        self,
        arc_edges: np.ndarray,
        arc_tails: np.ndarray,
        arc_heads: np.ndarray,
        offsets: np.ndarray,
        source: int,
        sink: int,
    ) -> int | None:
        """Batched blocking flow for a three-level unit phase (Figure 4).

        When the sink sits at level 3 of a unit-capacity level graph, every
        augmenting path is ``source -> left -> right -> sink`` and the
        blocking flow is a maximal matching between the two middle layers.
        The current-arc DFS finds a very specific one: processing left
        nodes in source-arc order, each takes the first right node (in its
        own arc order) whose sink arc is still open — serial first-fit.
        That greedy is exactly worker-proposing deferred acceptance where
        every right node prefers the lower-priority proposer: rejections
        and evictions replay precisely the "already taken when my turn
        came" outcomes of the serial pass, so the fixpoint is the same
        matching — but deferred acceptance runs as a handful of vectorized
        proposal rounds instead of a Python walk over every arc.

        Returns ``None`` (caller falls back to the generic walk) if a
        middle node carries parallel source or sink arcs, where one node
        could host two unit paths and the matching framing breaks.
        """
        network = self.network
        cap = network.edge_cap
        num_nodes = network.num_nodes
        level = self._level
        src_pos = np.flatnonzero(arc_tails == source)
        sink_pos = np.flatnonzero(arc_heads == sink)
        if src_pos.size == 0 or sink_pos.size == 0:
            return 0
        left = arc_heads[src_pos]
        right = arc_tails[sink_pos]
        if (np.bincount(left, minlength=num_nodes) > 1).any():
            return None
        if (np.bincount(right, minlength=num_nodes) > 1).any():
            return None
        # Deep wanderings past level 3 never reach the sink (it is pinned
        # at level 3), so the DFS would retreat out of them untouched;
        # only arcs out of left nodes into sink-reachable right nodes
        # matter.  A right node's open sink arc is its "open for matching"
        # bit; nodes without one are dead ends the cursor skips.
        sink_arc_of = np.full(num_nodes, -1, dtype=np.int64)
        sink_arc_of[right] = sink_pos
        count = left.size
        cursor = offsets[left].copy()
        stop = offsets[left + 1]
        holder = np.full(num_nodes, count, dtype=np.int64)
        holder_arc = np.full(num_nodes, -1, dtype=np.int64)
        active = np.arange(count, dtype=np.int64)
        while active.size:
            # Advance cursors past exhausted lists and dead-end columns.
            while True:
                active = active[cursor[active] < stop[active]]
                if active.size == 0:
                    break
                target = arc_heads[cursor[active]]
                dead = sink_arc_of[target] < 0
                if not dead.any():
                    break
                cursor[active[dead]] += 1
            if active.size == 0:
                break
            previous = holder[target]
            np.minimum.at(holder, target, active)
            outcome = holder[target]
            won = outcome == active
            holder_arc[target[won]] = cursor[active[won]]
            rejected = active[~won]
            cursor[rejected] += 1
            evicted_mask = np.zeros(count, dtype=bool)
            displaced = previous[previous != outcome]
            evicted_mask[displaced[displaced < count]] = True
            evicted = np.flatnonzero(evicted_mask)
            cursor[evicted] += 1
            active = np.concatenate((rejected, evicted))
        matched = np.flatnonzero(holder < count)
        matched = matched[level[matched] == 2]
        if matched.size == 0:
            return 0
        used = arc_edges[np.concatenate((
            src_pos[holder[matched]], holder_arc[matched],
            sink_arc_of[matched],
        ))]
        cap[used] -= 1
        cap[used ^ 1] += 1
        return int(matched.size)

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow; mutates the underlying network."""
        if source == sink:
            raise FlowError("source and sink must differ")
        # Unit-capacity networks (the Figure-4 assignment graphs) stay
        # unit-capacity for the whole run — every bottleneck is 1 — so the
        # blocking flow can skip its per-path bottleneck scan.  Decided
        # once per solve.
        self._unit_caps = bool((self.network.edge_cap <= 1).all())
        total = 0
        while self._bfs(source, sink):
            total += self._blocking_flow(source, sink)
        return total
