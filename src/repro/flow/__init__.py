"""Flow-network substrate: residual graphs, max-flow, min-cost max-flow.

The paper converts task assignment to Minimum-Cost Maximum-Flow on the graph
of Figure 4 and solves it with Ford-Fulkerson plus a cost-minimizing LP.  We
implement the substrate from scratch on flat-CSR arrays (the same layout the
propagation engine uses):

* :class:`FlowNetwork` — a residual network with paired forward/backward
  edges stored as ``(indptr, heads, capacity, cost)`` numpy slabs; bulk
  :meth:`~FlowNetwork.add_edges` builds assignment graphs without Python
  loops;
* :func:`edmonds_karp` — BFS-based Ford-Fulkerson (max flow only), the
  readable reference;
* :class:`Dinic` — level-graph/blocking-flow max flow; the level BFS
  advances whole frontiers with vectorized capacity masks;
* :class:`MinCostMaxFlow` — successive shortest augmenting paths via
  Dijkstra on Johnson-reduced costs (shared machinery in
  :mod:`repro.flow.potentials`); returns exactly the (max flow, min cost)
  pair the paper's Ford-Fulkerson + LP pipeline produces, in one pass, and
  raises :class:`~repro.exceptions.FlowError` on negative-cost cycles
  instead of hanging;
* :class:`PotentialMinCostMaxFlow` — the historical name of the
  Dijkstra-with-potentials engine, now a thin wrapper that additionally
  rejects negative original costs eagerly;
* :func:`min_cost_matching` — the SSP machinery specialized to the
  three-layer bipartite assignment graphs: a dense reduced-cost matrix
  plus vectorized sweeps, 15-40x faster than the general solver on the
  Figure-4 instances (same exact optimum, oracle-tested); accepts a
  :class:`WarmStart` carrying a previous solve's duals + matching so
  streaming rounds re-augment only what changed.
"""

from repro.flow.network import FlowNetwork
from repro.flow.maxflow import edmonds_karp, Dinic
from repro.flow.mincost import MinCostMaxFlow, FlowResult
from repro.flow.potentials import (
    PotentialMinCostMaxFlow,
    bellman_ford_potentials,
    dijkstra_reduced,
    scan_shortest_paths,
)
from repro.flow.bipartite import MatchingResult, WarmStart, min_cost_matching

__all__ = [
    "FlowNetwork",
    "edmonds_karp",
    "Dinic",
    "MinCostMaxFlow",
    "FlowResult",
    "PotentialMinCostMaxFlow",
    "bellman_ford_potentials",
    "dijkstra_reduced",
    "scan_shortest_paths",
    "MatchingResult",
    "WarmStart",
    "min_cost_matching",
]
