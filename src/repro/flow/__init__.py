"""Flow-network substrate: residual graphs, max-flow, min-cost max-flow.

The paper converts task assignment to Minimum-Cost Maximum-Flow on the graph
of Figure 4 and solves it with Ford-Fulkerson plus a cost-minimizing LP.  We
implement the substrate from scratch:

* :class:`FlowNetwork` — a residual network with paired forward/backward
  edges;
* :func:`edmonds_karp` — BFS-based Ford-Fulkerson (max flow only);
* :class:`Dinic` — level-graph/blocking-flow max flow, the fast pure path;
* :class:`MinCostMaxFlow` — successive shortest augmenting paths (SPFA),
  which returns exactly the (max flow, min cost) pair the paper's
  Ford-Fulkerson + LP pipeline produces, in one pass;
* :class:`PotentialMinCostMaxFlow` — the same optimum via Dijkstra with
  Johnson potentials (needs non-negative original costs — always true for
  the assignment graphs).
"""

from repro.flow.network import FlowNetwork
from repro.flow.maxflow import edmonds_karp, Dinic
from repro.flow.mincost import MinCostMaxFlow, FlowResult
from repro.flow.potentials import PotentialMinCostMaxFlow

__all__ = [
    "FlowNetwork",
    "edmonds_karp",
    "Dinic",
    "MinCostMaxFlow",
    "FlowResult",
    "PotentialMinCostMaxFlow",
]
