"""Check-in events, the raw material of both datasets.

A check-in records that a user visited a venue at a time.  The simulator
derives tasks (from venues), worker availability (from check-in times) and
historical task-performing records (from past check-ins) from these events,
exactly as the paper's experimental setup does (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import Point


@dataclass(frozen=True, slots=True)
class CheckIn:
    """A single user check-in.

    Attributes
    ----------
    user_id:
        The user (future worker) who checked in.
    venue_id:
        The venue visited.
    location:
        Venue location (planar km).
    time:
        Hours since the dataset epoch.
    categories:
        Venue category labels.
    """

    user_id: int
    venue_id: int
    location: Point
    time: float
    categories: tuple[str, ...] = ()

    @property
    def day(self) -> int:
        """The zero-based day index of this check-in (24 h granularity)."""
        return int(self.time // 24.0)

    @property
    def hour_of_day(self) -> float:
        """Hours elapsed since that day's midnight."""
        return self.time - 24.0 * self.day
