"""Workers (paper Definition 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import Point


@dataclass(frozen=True, slots=True)
class Worker:
    """A worker ``w = (l, r)`` with a location and a reachable radius.

    The reachable range of a worker is the circle centred at ``location``
    with radius ``reachable_km`` within which the worker accepts assignments.

    Attributes
    ----------
    worker_id:
        Unique identifier; doubles as the node id in the social network.
    location:
        Current location ``w.l`` (planar km).
    reachable_km:
        Reachable radius ``w.r`` in kilometres.
    speed_kmh:
        Travel speed; the paper sets a common 5 km/h but the algorithms
        support per-worker speeds.
    """

    worker_id: int
    location: Point
    reachable_km: float
    speed_kmh: float = 5.0

    def __post_init__(self) -> None:
        if self.reachable_km < 0:
            raise ValueError(f"reachable_km must be non-negative, got {self.reachable_km}")
        if self.speed_kmh <= 0:
            raise ValueError(f"speed_kmh must be positive, got {self.speed_kmh}")

    def can_reach(self, point: Point) -> bool:
        """Return whether ``point`` lies within the worker's reachable circle."""
        return self.location.distance_to(point) <= self.reachable_km

    def travel_hours_to(self, point: Point) -> float:
        """Return the travel time in hours from the worker to ``point``."""
        return self.location.distance_to(point) / self.speed_kmh

    def with_radius(self, reachable_km: float) -> "Worker":
        """Return a copy with a different reachable radius (for r sweeps)."""
        return Worker(
            worker_id=self.worker_id,
            location=self.location,
            reachable_km=reachable_km,
            speed_kmh=self.speed_kmh,
        )

    def moved_to(self, location: Point) -> "Worker":
        """Return a copy relocated to ``location``."""
        return Worker(
            worker_id=self.worker_id,
            location=location,
            reachable_km=self.reachable_km,
            speed_kmh=self.speed_kmh,
        )
