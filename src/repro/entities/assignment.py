"""Task assignments (paper Definition 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.entities.task import Task
from repro.entities.worker import Worker


@dataclass(frozen=True, slots=True)
class AssignedPair:
    """A single worker-task pair ``(s, w)`` inside an assignment."""

    task: Task
    worker: Worker

    @property
    def travel_km(self) -> float:
        """Euclidean travel distance from the worker to the task."""
        return self.worker.location.distance_to(self.task.location)


class Assignment:
    """A spatial task assignment ``A``: a set of worker-task pairs where each
    worker and each task appears at most once.

    The class enforces the at-most-once invariant on insertion; violating it
    raises :class:`ValueError` rather than silently corrupting results.
    """

    def __init__(self, pairs: Iterable[AssignedPair] = ()) -> None:
        self.pairs: list[AssignedPair] = []
        self._workers: set[int] = set()
        self._tasks: set[int] = set()
        for pair in pairs:
            self.add(pair.task, pair.worker)

    def __len__(self) -> int:
        """``|A|`` — the total number of assigned tasks."""
        return len(self.pairs)

    def __iter__(self) -> Iterator[AssignedPair]:
        return iter(self.pairs)

    def __repr__(self) -> str:
        return f"Assignment(|A|={len(self.pairs)})"

    def add(self, task: Task, worker: Worker) -> None:
        """Append ``(task, worker)``, enforcing the at-most-once invariant."""
        if worker.worker_id in self._workers:
            raise ValueError(f"worker {worker.worker_id} already assigned")
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.task_id} already assigned")
        self.pairs.append(AssignedPair(task=task, worker=worker))
        self._workers.add(worker.worker_id)
        self._tasks.add(task.task_id)

    @property
    def assigned_worker_ids(self) -> frozenset[int]:
        """Ids of workers that received a task."""
        return frozenset(self._workers)

    @property
    def assigned_task_ids(self) -> frozenset[int]:
        """Ids of tasks that were assigned."""
        return frozenset(self._tasks)

    def total_travel_km(self) -> float:
        """Sum of worker-to-task travel distances over all pairs."""
        return sum(pair.travel_km for pair in self.pairs)

    def average_travel_km(self) -> float:
        """Mean travel distance (0.0 for an empty assignment)."""
        if not self.pairs:
            return 0.0
        return self.total_travel_km() / len(self.pairs)
