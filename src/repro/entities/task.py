"""Spatial tasks (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo import Point


@dataclass(frozen=True, slots=True)
class Task:
    """A spatial task ``s = (l, p, phi, C)``.

    Attributes
    ----------
    task_id:
        Unique identifier within an instance.
    location:
        Task location ``s.l`` in planar km coordinates.
    publication_time:
        ``s.p`` — the time (hours since epoch of the instance) at which the
        task becomes available.
    valid_hours:
        ``s.phi`` — the task expires at ``publication_time + valid_hours``.
    categories:
        ``s.C`` — the task's category labels (e.g. venue categories).
    venue_id:
        Optional id of the venue the task was derived from; ties the task to
        historical visit counts for location entropy.
    """

    task_id: int
    location: Point
    publication_time: float
    valid_hours: float
    categories: tuple[str, ...] = field(default=())
    venue_id: int | None = None

    def __post_init__(self) -> None:
        if self.valid_hours < 0:
            raise ValueError(f"valid_hours must be non-negative, got {self.valid_hours}")

    @property
    def expiry_time(self) -> float:
        """The deadline ``s.p + s.phi`` after which the task cannot be done."""
        return self.publication_time + self.valid_hours

    def is_expired_at(self, time: float) -> bool:
        """Return whether the task has expired at ``time``."""
        return time > self.expiry_time

    def with_valid_hours(self, valid_hours: float) -> "Task":
        """Return a copy with a different validity window (for ϕ sweeps)."""
        return Task(
            task_id=self.task_id,
            location=self.location,
            publication_time=self.publication_time,
            valid_hours=valid_hours,
            categories=self.categories,
            venue_id=self.venue_id,
        )
