"""Core domain entities of the spatial-crowdsourcing platform.

These mirror the paper's Definitions 1-4: spatial tasks, workers, worker-task
assignments, plus check-ins and historical task-performing records used by
the influence model.
"""

from repro.entities.task import Task
from repro.entities.worker import Worker
from repro.entities.checkin import CheckIn
from repro.entities.records import PerformedTask, TaskHistory
from repro.entities.assignment import Assignment, AssignedPair

__all__ = [
    "Task",
    "Worker",
    "CheckIn",
    "PerformedTask",
    "TaskHistory",
    "Assignment",
    "AssignedPair",
]
