"""Historical task-performing records (the ``S_w`` of paper Section III-B).

``S_w = {(s_1, ta_1, tl_1), ...}`` is a worker's chronological sequence of
performed tasks with arrival and completion times.  Both the Historical
Acceptance willingness model and the LDA affinity model consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.geo import Point


@dataclass(frozen=True, slots=True)
class PerformedTask:
    """One completed task in a worker's history: ``(s_i, ta_i, tl_i)``."""

    location: Point
    arrival_time: float
    completion_time: float
    categories: tuple[str, ...] = ()
    venue_id: int | None = None

    def __post_init__(self) -> None:
        if self.completion_time < self.arrival_time:
            raise ValueError(
                f"completion_time {self.completion_time} precedes "
                f"arrival_time {self.arrival_time}"
            )


@dataclass(slots=True)
class TaskHistory:
    """A worker's full historical task-performing record, time-ordered.

    The constructor sorts by arrival time, so callers may pass records in any
    order.  Iteration yields :class:`PerformedTask` chronologically.
    """

    worker_id: int
    performed: list[PerformedTask] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.performed = sorted(self.performed, key=lambda p: p.arrival_time)

    def __len__(self) -> int:
        return len(self.performed)

    def __iter__(self) -> Iterator[PerformedTask]:
        return iter(self.performed)

    def add(self, record: PerformedTask) -> None:
        """Insert ``record`` keeping chronological order."""
        self.performed.append(record)
        self.performed.sort(key=lambda p: p.arrival_time)

    @property
    def locations(self) -> list[Point]:
        """Visited locations in chronological order."""
        return [p.location for p in self.performed]

    @property
    def category_document(self) -> list[str]:
        """All categories of performed tasks, in order — the LDA document
        ``dc_w`` of paper Figure 3."""
        doc: list[str] = []
        for record in self.performed:
            doc.extend(record.categories)
        return doc

    def venue_visit_counts(self) -> dict[int, int]:
        """Return ``venue_id -> number of visits`` (ignores ``None`` venues)."""
        counts: dict[int, int] = {}
        for record in self.performed:
            if record.venue_id is not None:
                counts[record.venue_id] = counts.get(record.venue_id, 0) + 1
        return counts

    @staticmethod
    def from_records(worker_id: int, records: Iterable[PerformedTask]) -> "TaskHistory":
        """Build a history from any iterable of performed-task records."""
        return TaskHistory(worker_id=worker_id, performed=list(records))
