"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Generate (or load) a dataset and print its statistics.
``generate-data``
    Materialize a synthetic BK/FS-like world as SNAP-format files.
``assign``
    Run the assignment algorithms on one day and print the metric table.
``sweep``
    Run a paper-style parameter sweep (comparison or ablation) and print
    the per-figure series; optionally save JSON/CSV.
``seeds``
    Greedy influence-maximization seed selection over the social network.
``stream``
    Play one day (or, with ``--days N``, a multi-day horizon with
    overnight relocation and churn) as an event stream through the
    micro-batched :class:`~repro.stream.StreamRuntime` and print
    latency/throughput metrics; supports checkpointing/resuming runs and
    latency-budget admission control (``--admission-budget/-policy``).

Every command accepts ``--world bk|fs --scale S --seed N`` to pick the
synthetic world, or ``--snap-dir DIR`` to read SNAP-format files instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.data import (
    CheckInDataset,
    InstanceBuilder,
    brightkite_like,
    foursquare_like,
    generate_dataset,
    load_dataset_from_snap,
)
from repro.framework.config import PipelineConfig


#: Assignment algorithms offered by ``assign`` and ``stream``.
ASSIGNER_NAMES = ("MTA", "IA", "EIA", "DIA", "MI", "NN")


def _assigner_registry() -> dict[str, type]:
    from repro.assignment import (
        DIAAssigner,
        EIAAssigner,
        IAAssigner,
        MIAssigner,
        MTAAssigner,
        NearestNeighborAssigner,
    )

    return {
        "MTA": MTAAssigner,
        "IA": IAAssigner,
        "EIA": EIAAssigner,
        "DIA": DIAAssigner,
        "MI": MIAssigner,
        "NN": NearestNeighborAssigner,
    }


def _add_world_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--world", choices=("bk", "fs"), default="bk",
                        help="synthetic world family (default: bk)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="population scale factor (default: 0.1)")
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")
    parser.add_argument("--snap-dir", type=Path, default=None,
                        help="load SNAP files (edges.txt/checkins.txt/"
                             "categories.txt) from this directory instead")


def _add_pipeline_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topics", type=int, default=20, help="LDA topics")
    parser.add_argument("--rrr-sets", type=int, default=20_000,
                        help="fixed RRR sample count")
    parser.add_argument("--rpo", action="store_true",
                        help="use the RPO bounds instead of fixed sampling")
    parser.add_argument("--affinity", choices=("lda", "tfidf"), default="lda")
    parser.add_argument("--movement", default="pareto",
                        help="movement family (pareto/exponential/lognormal/rayleigh)")


def _dataset_from(args: argparse.Namespace) -> CheckInDataset:
    if args.snap_dir is not None:
        categories = args.snap_dir / "categories.txt"
        return load_dataset_from_snap(
            name=args.snap_dir.name,
            edges_path=args.snap_dir / "edges.txt",
            checkins_path=args.snap_dir / "checkins.txt",
            categories_path=categories if categories.exists() else None,
        )
    factory = brightkite_like if args.world == "bk" else foursquare_like
    return generate_dataset(factory(scale=args.scale, seed=args.seed))


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig(
        num_topics=args.topics,
        affinity_engine=args.affinity,
        movement_family=args.movement,
        propagation_mode="rpo" if args.rpo else "fixed",
        num_rrr_sets=args.rrr_sets,
        seed=args.seed,
    )


# ------------------------------------------------------------------ commands
def cmd_info(args: argparse.Namespace) -> int:
    dataset = _dataset_from(args)
    print(dataset.describe())
    box = dataset.bounding_box()
    print(f"area: {box.width:.1f} x {box.height:.1f} km")
    builder = InstanceBuilder(dataset)
    days = builder.richest_days(count=4)
    print(f"richest days: {days}")
    for day in days:
        instance = builder.build_day(day)
        print(f"  day {day}: {instance.num_workers} workers, "
              f"{instance.num_tasks} tasks")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.data import validate_dataset

    dataset = _dataset_from(args)
    report = validate_dataset(dataset)
    print(report)
    return 0 if report.passed else 1


def cmd_generate_data(args: argparse.Namespace) -> int:
    from repro.data.writers import save_dataset_to_snap

    dataset = _dataset_from(args)
    paths = save_dataset_to_snap(dataset, args.out)
    print(dataset.describe())
    for kind, path in paths.items():
        print(f"wrote {kind}: {path}")
    return 0


def cmd_assign(args: argparse.Namespace) -> int:
    from repro.framework import Simulator

    known = _assigner_registry()
    names = args.algorithms or ["MTA", "IA", "EIA", "DIA", "MI"]
    unknown = [n for n in names if n not in known]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}; "
              f"choose from {', '.join(known)}", file=sys.stderr)
        return 2

    dataset = _dataset_from(args)
    builder = InstanceBuilder(dataset, valid_hours=args.valid_hours,
                              reachable_km=args.radius)
    day = args.day if args.day is not None else builder.richest_days(count=1)[0]
    instance = builder.build_day(
        day, num_tasks=args.num_tasks, num_workers=args.num_workers,
        assignment_hour=args.assignment_hour, seed=args.seed,
    )
    print(f"{instance.name}: {instance.num_workers} workers, "
          f"{instance.num_tasks} tasks")

    config = _pipeline_config(args)
    simulator = Simulator(config)
    results = simulator.run_instance(instance, [known[name]() for name in names])

    header = f"{'algorithm':10s} {'assigned':>9s} {'AI':>9s} {'AP':>9s} " \
             f"{'travel km':>10s} {'cpu s':>8s}"
    print("\n" + header)
    print("-" * len(header))
    for metrics in results:
        print(f"{metrics.algorithm:10s} {metrics.num_assigned:9d} "
              f"{metrics.average_influence:9.4f} {metrics.average_propagation:9.3f} "
              f"{metrics.average_travel_km:10.2f} {metrics.cpu_seconds:8.3f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ExperimentRunner,
        ExperimentSettings,
        format_series,
        format_sweep_table,
        run_ablation_sweep,
        run_comparison_sweep,
    )
    from repro.experiments.io import export_csv, save_sweep
    from repro.experiments.report import write_report

    dataset = _dataset_from(args)
    settings = ExperimentSettings(scale=args.scale, num_days=args.days,
                                  seed=args.seed,
                                  assignment_hour=args.assignment_hour)
    runner = ExperimentRunner(dataset, settings, _pipeline_config(args))

    grids = {
        "num_tasks": settings.task_sweep,
        "num_workers": settings.worker_sweep,
        "valid_hours": settings.valid_hours_sweep,
        "reachable_km": settings.radius_sweep,
    }
    values = grids[args.parameter]
    if args.kind == "ablation":
        result = run_ablation_sweep(runner, args.parameter, values)
        print(format_series(result, "average_influence",
                            title=f"AI vs {args.parameter} ({dataset.name})"))
    else:
        result = run_comparison_sweep(runner, args.parameter, values)
        print(format_sweep_table(result, title=f"{dataset.name} vs {args.parameter}"))

    if args.out:
        print(f"saved JSON: {save_sweep(result, args.out)}")
    if args.csv:
        print(f"saved CSV: {export_csv(result, args.csv)}")
    if args.markdown:
        title = f"{dataset.name} — {args.kind} vs {args.parameter}"
        path = write_report({title: result}, args.markdown,
                            heading="Sweep report")
        print(f"saved markdown: {path}")
    return 0


def cmd_seeds(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.propagation import (
        RRRCollection,
        SocialGraph,
        sample_rrr_sets,
        select_seeds,
    )

    dataset = _dataset_from(args)
    builder = InstanceBuilder(dataset)
    day = builder.richest_days(count=1)[0]
    instance = builder.build_day(day)
    graph = SocialGraph(instance.all_worker_ids, instance.social_edges)
    print(f"social network: {graph.num_workers} workers, "
          f"{graph.num_edges // 2} friendships")

    rng = np.random.default_rng(args.seed)
    collection = RRRCollection(num_workers=graph.num_workers)
    roots, members = sample_rrr_sets(graph, args.rrr_sets, rng)
    collection.extend(roots, members)

    result = select_seeds(collection, args.k)
    print(f"\nestimated spread of {len(result.seeds)} seeds: "
          f"{result.estimated_spread:.2f} workers")
    print(f"{'rank':>5s} {'worker':>8s} {'marginal sets':>14s}")
    for rank, (index, marginal) in enumerate(
        zip(result.seeds, result.marginal_coverage), start=1
    ):
        print(f"{rank:5d} {graph.worker_at(index):8d} {marginal:14d}")
    return 0


def _admission_request(args: argparse.Namespace) -> dict | None:
    """The run's admission-control identity (None when disabled)."""
    if args.admission_budget is None:
        return None
    return {
        "policy": args.admission_policy or "defer",
        "budget_seconds": args.admission_budget,
    }


def _rebalance_request(args: argparse.Namespace) -> dict | None:
    """The run's shard-rebalance identity (None when disabled)."""
    if not args.rebalance:
        return None
    return {
        "interval": args.rebalance_interval,
        "alpha": args.rebalance_alpha,
        "hysteresis": args.rebalance_hysteresis,
    }


def _validate_stream_flags(args: argparse.Namespace, trigger) -> str | None:
    """Check checkpoint/trigger/shard/admission flag combinations early.

    Returns an error message (or None) — run *before* datasets are built
    and influence models fitted, so a mismatched ``--resume`` fails in
    milliseconds with a clear message instead of a fingerprint traceback
    after minutes of fitting.
    """
    if args.executor != "serial" and args.shards is None:
        return "--executor requires --shards (the unsharded runtime has no backend)"
    if args.pipeline and args.shards is None:
        return "--pipeline requires --shards (there is nothing to overlap)"
    if args.rebalance and args.shards is None:
        return "--rebalance requires --shards (there is no layout to repack)"
    if args.rebalance_interval < 1:
        return f"--rebalance-interval must be >= 1, got {args.rebalance_interval}"
    if not 0.0 < args.rebalance_alpha <= 1.0:
        return f"--rebalance-alpha must be in (0, 1], got {args.rebalance_alpha}"
    if args.rebalance_hysteresis < 0.0:
        return (
            f"--rebalance-hysteresis must be >= 0, got {args.rebalance_hysteresis}"
        )
    if args.shards is not None and args.shards < 1:
        return f"--shards must be >= 1, got {args.shards}"
    if args.max_rounds is not None and args.max_rounds < 0:
        return f"--max-rounds must be non-negative, got {args.max_rounds}"
    if args.days < 1:
        return f"--days must be >= 1, got {args.days}"
    if args.segment_days is not None and args.segment_days < 1:
        return f"--segment-days must be >= 1, got {args.segment_days}"
    if args.metrics_port is not None and not 0 <= args.metrics_port <= 65535:
        return f"--metrics-port must be in [0, 65535], got {args.metrics_port}"
    if args.admission_policy is not None and args.admission_budget is None:
        return "--admission-policy requires --admission-budget"
    if args.admission_budget is not None and args.admission_budget <= 0:
        return f"--admission-budget must be positive, got {args.admission_budget}"
    if args.checkpoint_every is not None:
        if args.checkpoint is None:
            return "--checkpoint-every requires --checkpoint"
        if args.checkpoint_every < 1:
            return f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
    if args.resume is None:
        return None

    from repro.exceptions import DataError
    from repro.stream import load_checkpoint_meta, validate_checkpoint_meta

    if not args.resume.exists():
        return f"--resume checkpoint not found: {args.resume}"
    try:
        meta = load_checkpoint_meta(args.resume)
        validate_checkpoint_meta(
            meta,
            trigger_kind=trigger.kind,
            patience_hours=args.patience_hours,
            sharded=args.shards is not None,
            shard_request=(
                {"shards": args.shards, "cell_km": None}
                if args.shards is not None else None
            ),
            admission=_admission_request(args),
            pipeline=args.pipeline,
            rebalance=_rebalance_request(args),
            segmented=args.segment_days is not None,
        )
    except DataError as error:
        return (
            f"cannot resume from {args.resume}: {error} "
            "(--trigger/--patience-hours/--shards/--pipeline/--rebalance-*/"
            "--admission-*/--segment-days must match the checkpointed run)"
        )
    except (OSError, ValueError) as error:
        return f"cannot read checkpoint {args.resume}: {error}"
    return None


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.stream import (
        AdaptiveTrigger,
        CountTrigger,
        HybridTrigger,
        TimeWindowTrigger,
        canonical_checkpoint_path,
    )

    # One canonical on-disk path for every save/load below: bare paths get
    # the .ckpt suffix here, so --checkpoint run/ckpt and --resume run/ckpt
    # always mean the same manifest.
    if args.checkpoint is not None:
        args.checkpoint = canonical_checkpoint_path(args.checkpoint)
    if args.resume is not None:
        args.resume = canonical_checkpoint_path(args.resume)

    assigner = _assigner_registry()[args.algorithm]()

    if args.trigger == "count":
        trigger = CountTrigger(args.batch_count)
    elif args.trigger == "window":
        trigger = TimeWindowTrigger(args.window_hours)
    elif args.trigger == "hybrid":
        trigger = HybridTrigger(args.batch_count, args.window_hours)
    else:
        trigger = AdaptiveTrigger(
            target_seconds=args.latency_budget,
            initial_window_hours=args.window_hours,
        )

    problem = _validate_stream_flags(args, trigger)
    if problem is not None:
        print(problem, file=sys.stderr)
        return 2

    from repro.obs import MetricsRegistry, MetricsServer, Observability, Tracer

    registry = MetricsRegistry() if args.metrics_port is not None else None
    tracer = Tracer() if args.trace is not None else None
    obs = (
        Observability(registry=registry, tracer=tracer)
        if registry is not None or tracer is not None
        else None
    )
    server = None
    try:
        if registry is not None:
            # Bind before the (potentially slow) dataset build and model
            # fit so scrapers can reach /metrics for the whole run.
            server = MetricsServer(registry, port=args.metrics_port).start()
            print(f"metrics: {server.url}", flush=True)
        return _run_stream(args, assigner, trigger, obs)
    finally:
        if server is not None:
            server.close()
        if tracer is not None:
            written = tracer.write(args.trace)
            print(f"trace: {written}", flush=True)


def _run_stream(args: argparse.Namespace, assigner, trigger, obs) -> int:
    from repro.exceptions import DataError
    from repro.stream import (
        AdmissionController,
        ShardRebalancer,
        StreamRuntime,
        day_stream,
        multi_day_stream,
    )
    from repro.stream.events import KIND_ARRIVAL, KIND_RELOCATE

    dataset = _dataset_from(args)
    builder = InstanceBuilder(dataset)
    day = args.day if args.day is not None else builder.richest_days(count=1)[0]
    if args.days > 1:
        replay_days = [
            d for d in range(day, day + args.days)
            if dataset.checkins_on_day(d)
        ]
        instance, log = multi_day_stream(
            dataset, replay_days,
            valid_hours=args.valid_hours, reachable_km=args.radius,
        )
    else:
        instance, log = day_stream(
            dataset, day, valid_hours=args.valid_hours, reachable_km=args.radius
        )
    print(f"{instance.name}: {len(log)} events "
          f"({int((log.kinds == KIND_ARRIVAL).sum())} arrivals, "
          f"{int((log.kinds == KIND_RELOCATE).sum())} relocations, "
          f"{len(instance.tasks)} tasks)")

    if args.segment_days is not None:
        from repro.stream import SegmentedEventLog

        log = SegmentedEventLog.from_log(
            log, segment_hours=24.0 * args.segment_days
        )
        print(f"segments: {log.segment_count} windows of "
              f"{args.segment_days} day(s), {len(log)} events")

    admission = None
    if args.admission_budget is not None:
        admission = AdmissionController(
            budget_seconds=args.admission_budget,
            policy=args.admission_policy or "defer",
        )

    rebalance = None
    if args.rebalance:
        rebalance = ShardRebalancer(
            interval=args.rebalance_interval,
            alpha=args.rebalance_alpha,
            hysteresis=args.rebalance_hysteresis,
        )

    influence = None
    if not args.no_influence:
        from repro.framework import DITAPipeline

        influence = DITAPipeline(_pipeline_config(args)).fit(instance).influence_model()

    if args.resume is not None:
        try:
            runtime = StreamRuntime.resume(
                args.resume, assigner, influence, trigger, instance, log,
                patience_hours=args.patience_hours,
                shards=args.shards, executor=args.executor,
                admission=admission,
                pipeline=args.pipeline, rebalance=rebalance, obs=obs,
                warm=args.warm,
            )
        except DataError as error:
            print(f"cannot resume from {args.resume}: {error}", file=sys.stderr)
            return 2
    else:
        runtime = StreamRuntime(
            assigner, influence, trigger, instance, log,
            patience_hours=args.patience_hours,
            shards=args.shards, executor=args.executor,
            admission=admission,
            pipeline=args.pipeline, rebalance=rebalance, obs=obs,
            warm=args.warm,
        )
    # Context-managed so pipelined executors never leak worker threads,
    # whatever path exits the block (including validation errors below).
    with runtime:
        if args.resume is not None:
            print(f"resumed from {args.resume} "
                  f"at round {len(runtime.result.rounds)}")
        if runtime.shard_executor is not None:
            layout = runtime.shard_executor.layout
            mode = " pipelined" if args.pipeline else ""
            print(f"sharded: {layout.num_shards} shards over "
                  f"{len(layout.cells)} cells ({args.executor}{mode} backend)")
        if args.checkpoint_every is None:
            result = runtime.run(max_rounds=args.max_rounds)
        else:
            remaining = args.max_rounds
            result = runtime.run(max_rounds=0)
            while not runtime.done and (remaining is None or remaining > 0):
                step = (
                    args.checkpoint_every if remaining is None
                    else min(args.checkpoint_every, remaining)
                )
                result = runtime.run(max_rounds=step)
                saved = runtime.checkpoint(args.checkpoint)
                print(f"checkpoint: {saved} "
                      f"(after round {len(result.rounds)})", flush=True)
                if remaining is not None:
                    remaining -= step

        active = [r for r in result.rounds if r.assigned or r.drained_events]
        shown = active[-args.show_rounds:] if args.show_rounds > 0 else []
        if shown:
            print(f"\n{'t':>7s} {'online':>7s} {'open':>6s} {'drained':>8s} "
                  f"{'assigned':>9s} {'expired':>8s} {'churned':>8s}")
        for record in shown:
            print(f"{record.time:7.2f} {record.online_workers:7d} "
                  f"{record.open_tasks:6d} {record.drained_events:8d} "
                  f"{record.assigned:9d} {record.expired_tasks:8d} "
                  f"{record.churned_workers:8d}")
        print(f"\n{result.summary().as_text()}")
        if runtime.shard_executor is not None:
            phases = result.metrics.phase_totals()
            print("phases (s):        " + "  ".join(
                f"{name} {seconds:.3f}" for name, seconds in phases.items()
            ))
            if runtime.shard_executor.rebalancer is not None:
                print(f"shard repacks:     {result.metrics.total_repacks}")
        if not runtime.done:
            print(f"\nstopped after {args.max_rounds} rounds "
                  "(stream not exhausted)")
        if args.checkpoint is not None:
            saved = runtime.checkpoint(args.checkpoint)
            print(f"checkpoint: {saved}")
    return 0


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Influence-aware task assignment (ICDE 2022) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="dataset statistics")
    _add_world_arguments(info)
    info.set_defaults(handler=cmd_info)

    validate = subparsers.add_parser(
        "validate", help="statistical validation checks on a dataset"
    )
    _add_world_arguments(validate)
    validate.set_defaults(handler=cmd_validate)

    generate = subparsers.add_parser("generate-data",
                                     help="write a synthetic world as SNAP files")
    _add_world_arguments(generate)
    generate.add_argument("--out", type=Path, required=True,
                          help="output directory")
    generate.set_defaults(handler=cmd_generate_data)

    assign = subparsers.add_parser("assign", help="one-day assignment run")
    _add_world_arguments(assign)
    _add_pipeline_arguments(assign)
    assign.add_argument("--day", type=int, default=None,
                        help="zero-based day (default: richest)")
    assign.add_argument("--num-tasks", type=int, default=None)
    assign.add_argument("--num-workers", type=int, default=None)
    assign.add_argument("--valid-hours", type=float, default=5.0)
    assign.add_argument("--radius", type=float, default=25.0)
    assign.add_argument("--assignment-hour", type=float, default=None,
                        help="assignment instant as an offset into the day "
                             "(default: day start; 24 = day end)")
    assign.add_argument("--algorithms", nargs="*", default=None,
                        help="subset of MTA IA EIA DIA MI NN")
    assign.set_defaults(handler=cmd_assign)

    sweep = subparsers.add_parser("sweep", help="paper-style parameter sweep")
    _add_world_arguments(sweep)
    _add_pipeline_arguments(sweep)
    sweep.add_argument("--parameter", required=True,
                       choices=("num_tasks", "num_workers", "valid_hours",
                                "reachable_km"))
    sweep.add_argument("--kind", choices=("comparison", "ablation"),
                       default="comparison")
    sweep.add_argument("--days", type=int, default=2,
                       help="days averaged per point")
    sweep.add_argument("--assignment-hour", type=float, default=None,
                       help="assignment instant offset into the day "
                            "(use 24 for ϕ sweeps so deadlines bind)")
    sweep.add_argument("--out", type=Path, default=None, help="save JSON here")
    sweep.add_argument("--csv", type=Path, default=None, help="save CSV here")
    sweep.add_argument("--markdown", type=Path, default=None,
                       help="save a markdown report here")
    sweep.set_defaults(handler=cmd_sweep)

    seeds = subparsers.add_parser("seeds",
                                  help="greedy influence-maximization seeds")
    _add_world_arguments(seeds)
    seeds.add_argument("--k", type=int, default=10, help="number of seeds")
    seeds.add_argument("--rrr-sets", type=int, default=50_000)
    seeds.set_defaults(handler=cmd_seeds)

    stream = subparsers.add_parser(
        "stream", help="event-driven streaming run over one day"
    )
    _add_world_arguments(stream)
    _add_pipeline_arguments(stream)
    stream.add_argument("--day", type=int, default=None,
                        help="zero-based day (default: richest)")
    stream.add_argument("--days", type=int, default=1,
                        help="replay this many consecutive days as one "
                             "continuous stream with overnight relocation "
                             "and churn (default: 1)")
    stream.add_argument("--segment-days", type=int, default=None,
                        metavar="N",
                        help="stream the horizon through bounded-memory "
                             "event-log segments of N days each instead of "
                             "one materialized log (bit-identical replay; "
                             "peak memory follows the segment window)")
    stream.add_argument("--valid-hours", type=float, default=5.0)
    stream.add_argument("--radius", type=float, default=25.0)
    stream.add_argument("--algorithm", choices=ASSIGNER_NAMES, default="IA")
    stream.add_argument("--no-influence", action="store_true",
                        help="skip fitting the influence model")
    stream.add_argument("--trigger",
                        choices=("count", "window", "hybrid", "adaptive"),
                        default="window", help="micro-batch policy")
    stream.add_argument("--batch-count", type=int, default=25,
                        help="admissions per round (count/hybrid triggers)")
    stream.add_argument("--window-hours", type=float, default=1.0,
                        help="round spacing in sim hours (window/hybrid/adaptive)")
    stream.add_argument("--latency-budget", type=float, default=0.25,
                        help="adaptive trigger's per-round latency target (s)")
    stream.add_argument("--patience-hours", type=float, default=None,
                        help="churn unassigned workers after this many hours")
    stream.add_argument("--admission-budget", type=float, default=None,
                        help="per-round latency budget (s) above which the "
                             "admission controller defers/sheds publishes")
    stream.add_argument("--admission-policy", choices=("defer", "shed"),
                        default=None,
                        help="what happens to gated publishes (default: "
                             "defer; requires --admission-budget)")
    stream.add_argument("--shards", type=int, default=None,
                        help="run rounds sharded by grid-cell components "
                             "(at most this many shards; exact decomposition)")
    stream.add_argument("--executor",
                        choices=("serial", "thread", "process"),
                        default="serial",
                        help="shard backend (requires --shards)")
    stream.add_argument("--pipeline", action="store_true",
                        help="overlap per-shard prepare/solve on the "
                             "executor pool (requires --shards; "
                             "bit-identical results, lower round latency)")
    stream.add_argument("--warm", action="store_true",
                        help="carry solver duals between rounds to warm-start "
                             "lexicographic solves (IA/EIA/DIA; bit-identical "
                             "assignments, lower solve latency)")
    stream.add_argument("--rebalance", action="store_true",
                        help="repack shard components from an EWMA of "
                             "observed solve latency at deterministic "
                             "round boundaries (requires --shards)")
    stream.add_argument("--rebalance-interval", type=int, default=16,
                        help="rounds between repack decisions")
    stream.add_argument("--rebalance-alpha", type=float, default=0.25,
                        help="EWMA smoothing factor in (0, 1]")
    stream.add_argument("--rebalance-hysteresis", type=float, default=0.1,
                        help="minimum relative bottleneck improvement "
                             "before a repack is applied")
    stream.add_argument("--max-rounds", type=int, default=None,
                        help="stop after this many rounds (resumable)")
    stream.add_argument("--show-rounds", type=int, default=12,
                        help="how many active rounds to print")
    stream.add_argument("--checkpoint", type=Path, default=None,
                        help="save runtime state here after the run "
                             "(a bare path gets the canonical .ckpt suffix)")
    stream.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="also save --checkpoint every N rounds during "
                             "the run (atomic; interrupted runs resume from "
                             "the last saved round)")
    stream.add_argument("--resume", type=Path, default=None,
                        help="resume from a checkpoint saved with --checkpoint")
    stream.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="write a Chrome trace-event (Perfetto-loadable) "
                             "JSON timeline of round/shard/checkpoint spans "
                             "to FILE")
    stream.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve Prometheus text exposition at "
                             "http://127.0.0.1:PORT/metrics for the run's "
                             "duration (0 picks an ephemeral port)")
    stream.set_defaults(handler=cmd_stream)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
