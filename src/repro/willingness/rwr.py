"""Random Walk with Restart over a worker's historical task locations.

The paper (Section III-B1) builds, per worker, a weight matrix over the
locations of the worker's performed tasks and computes the stationary
distribution ``P_w(w, s_i)`` — the probability the worker "stays at" each
historical location.  We realise this with the standard RWR fixed point

    p = (1 - c) * T^T p + c * q

where ``T`` is the row-stochastic transition matrix derived from the
worker's chronological movements (observed transitions between distinct
locations), ``q`` is the restart distribution (uniform over visited
locations), and ``c`` is the restart probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Point


@dataclass(frozen=True)
class StationaryDistribution:
    """The RWR output: distinct locations and their stationary probabilities."""

    locations: tuple[Point, ...]
    probabilities: np.ndarray  # aligned with locations; sums to 1

    def probability_of(self, location: Point) -> float:
        """Return the stationary mass at ``location`` (0.0 if never visited)."""
        for i, visited in enumerate(self.locations):
            if visited == location:
                return float(self.probabilities[i])
        return 0.0


def _transition_matrix(visit_sequence: list[int], num_states: int) -> np.ndarray:
    """Row-stochastic matrix of observed transitions between distinct states.

    States never left (or terminal) get a uniform row, keeping the chain
    irreducible together with the restart term.
    """
    counts = np.zeros((num_states, num_states), dtype=float)
    for a, b in zip(visit_sequence, visit_sequence[1:]):
        counts[a, b] += 1.0
    row_sums = counts.sum(axis=1, keepdims=True)
    uniform = np.full((1, num_states), 1.0 / num_states)
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.where(row_sums > 0, counts / np.where(row_sums == 0, 1, row_sums), uniform)
    return matrix


def random_walk_with_restart(
    locations: list[Point],
    restart: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 500,
) -> StationaryDistribution:
    """Compute the RWR stationary distribution of a location sequence.

    Parameters
    ----------
    locations:
        The worker's chronological task locations (may repeat).
    restart:
        Restart probability ``c`` in (0, 1]; higher values pull the
        distribution towards the uniform restart vector.

    Raises
    ------
    ValueError
        If ``locations`` is empty or ``restart`` is out of range.
    """
    if not locations:
        raise ValueError("cannot compute a stationary distribution of zero locations")
    if not 0.0 < restart <= 1.0:
        raise ValueError(f"restart must be in (0, 1], got {restart}")

    distinct: list[Point] = []
    index: dict[Point, int] = {}
    sequence: list[int] = []
    for location in locations:
        state = index.get(location)
        if state is None:
            state = len(distinct)
            index[location] = state
            distinct.append(location)
        sequence.append(state)

    n = len(distinct)
    if n == 1:
        return StationaryDistribution(locations=tuple(distinct), probabilities=np.array([1.0]))

    transition = _transition_matrix(sequence, n)
    q = np.full(n, 1.0 / n)
    p = q.copy()
    for _ in range(max_iter):
        new_p = (1.0 - restart) * (transition.T @ p) + restart * q
        if float(np.abs(new_p - p).sum()) < tol:
            p = new_p
            break
        p = new_p
    p = np.maximum(p, 0.0)
    p /= p.sum()
    return StationaryDistribution(locations=tuple(distinct), probabilities=p)
