"""Pareto movement model: shape estimation (paper Eq. 1) and tail mass.

Worker movement lengths are modeled as Pareto with minimum ``omega = 1``
(distances are shifted by +1 so the support starts at 1).  The maximum
likelihood estimate of the shape is

    pi = (|S_w| - 1) / sum_i ln(x_i),    x_i = d(s_i, s_{i+1}) + 1

and the probability of moving at least distance ``d`` is the Pareto tail
``(d + 1)^(-pi)``.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Shape assigned to workers whose every observed jump had length zero
#: (sum of logs is 0, Eq. 1 undefined).  A large shape encodes "this worker
#: essentially never travels": the tail mass decays steeply with distance.
DEGENERATE_SHAPE = 50.0

#: Upper clamp protecting downstream exponentiation from overflow when a
#: history contains one tiny positive jump.
MAX_SHAPE = 50.0


def fit_pareto_shape(consecutive_distances_km: Sequence[float]) -> float:
    """MLE of the Pareto shape from consecutive jump distances (Eq. 1).

    Parameters
    ----------
    consecutive_distances_km:
        The ``|S_w| - 1`` distances between successive historical task
        locations.  Values must be non-negative.

    Returns
    -------
    float
        The estimated shape ``pi``, clamped to ``(0, MAX_SHAPE]``.  Returns
        :data:`DEGENERATE_SHAPE` when every jump is zero (the paper's
        side-condition ``sum ln x_i != 0`` fails).

    Raises
    ------
    ValueError
        If the sequence is empty or contains a negative distance.
    """
    if len(consecutive_distances_km) == 0:
        raise ValueError("need at least one consecutive distance to fit a shape")
    log_sum = 0.0
    for distance in consecutive_distances_km:
        if distance < 0:
            raise ValueError(f"negative distance: {distance}")
        log_sum += math.log(distance + 1.0)
    if log_sum <= 0.0:
        return DEGENERATE_SHAPE
    shape = len(consecutive_distances_km) / log_sum
    return min(shape, MAX_SHAPE)


def pareto_tail_probability(distance_km: float, shape: float) -> float:
    """``P[jump >= distance]`` under the fitted Pareto: ``(d + 1)^(-pi)``.

    Raises :class:`ValueError` for a negative distance or non-positive shape.
    """
    if distance_km < 0:
        raise ValueError(f"negative distance: {distance_km}")
    if shape <= 0:
        raise ValueError(f"shape must be positive, got {shape}")
    return (distance_km + 1.0) ** (-shape)
