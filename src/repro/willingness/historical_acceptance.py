"""The Historical Acceptance (HA) willingness model (paper Section III-B).

Combines the RWR stationary distribution over a worker's historical task
locations with the per-worker Pareto movement model into Eq. 2:

    P_wil(w, s) = sum_i  P_w(w, s_i) * (d(s_i, s) + 1)^(-pi_w)

The module offers both a per-pair API (:meth:`HistoricalAcceptance.willingness`)
and a vectorized bulk API (:meth:`HistoricalAcceptance.willingness_all`) that
evaluates every worker against one task location in a handful of numpy
operations — the influence model needs willingness of *all* workers for each
task, which would be quadratically slow pairwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.entities import TaskHistory
from repro.exceptions import NotFittedError
from repro.geo import Point
from repro.willingness.pareto import fit_pareto_shape
from repro.willingness.rwr import StationaryDistribution, random_walk_with_restart


@dataclass(frozen=True)
class WorkerMobilityModel:
    """Per-worker fitted mobility: stationary distribution + Pareto shape."""

    worker_id: int
    stationary: StationaryDistribution
    pareto_shape: float

    def willingness(self, target: Point) -> float:
        """Evaluate Eq. 2 for one target location."""
        total = 0.0
        for location, probability in zip(
            self.stationary.locations, self.stationary.probabilities
        ):
            distance = location.distance_to(target)
            total += float(probability) * (distance + 1.0) ** (-self.pareto_shape)
        return total


class HistoricalAcceptance:
    """Fits and evaluates the HA willingness model for a worker population.

    Parameters
    ----------
    restart:
        RWR restart probability.
    min_history:
        Workers with fewer performed tasks than this get willingness 0
        everywhere (no evidence of mobility).  Two records are needed for at
        least one observed jump, hence the default.
    """

    def __init__(self, restart: float = 0.15, min_history: int = 2) -> None:
        self.restart = restart
        self.min_history = min_history
        self.models: dict[int, WorkerMobilityModel] = {}
        # Flattened arrays over all workers' distinct historical locations,
        # for the vectorized bulk path.
        self._flat_xy: np.ndarray | None = None
        self._flat_weight: np.ndarray | None = None
        self._flat_shape: np.ndarray | None = None
        self._flat_owner_row: np.ndarray | None = None
        self._worker_ids: list[int] = []
        self._row_of: dict[int, int] = {}

    def fit(self, histories: Mapping[int, TaskHistory]) -> "HistoricalAcceptance":
        """Fit one mobility model per worker with sufficient history."""
        self.models.clear()
        self._worker_ids = sorted(histories)
        self._row_of = {w: i for i, w in enumerate(self._worker_ids)}

        xy_chunks: list[np.ndarray] = []
        weight_chunks: list[np.ndarray] = []
        shape_chunks: list[np.ndarray] = []
        owner_chunks: list[np.ndarray] = []

        for worker_id in self._worker_ids:
            history = histories[worker_id]
            if len(history) < self.min_history:
                continue
            locations = history.locations
            jumps = [
                a.distance_to(b) for a, b in zip(locations, locations[1:])
            ]
            shape = fit_pareto_shape(jumps)
            stationary = random_walk_with_restart(locations, restart=self.restart)
            model = WorkerMobilityModel(
                worker_id=worker_id, stationary=stationary, pareto_shape=shape
            )
            self.models[worker_id] = model

            n = len(stationary.locations)
            xy_chunks.append(
                np.array([(p.x, p.y) for p in stationary.locations], dtype=float)
            )
            weight_chunks.append(np.asarray(stationary.probabilities, dtype=float))
            shape_chunks.append(np.full(n, shape, dtype=float))
            owner_chunks.append(np.full(n, self._row_of[worker_id], dtype=np.int64))

        if xy_chunks:
            self._flat_xy = np.concatenate(xy_chunks)
            self._flat_weight = np.concatenate(weight_chunks)
            self._flat_shape = np.concatenate(shape_chunks)
            self._flat_owner_row = np.concatenate(owner_chunks)
        else:
            self._flat_xy = np.zeros((0, 2))
            self._flat_weight = np.zeros(0)
            self._flat_shape = np.zeros(0)
            self._flat_owner_row = np.zeros(0, dtype=np.int64)
        return self

    def _require_fitted(self) -> None:
        if self._flat_xy is None:
            raise NotFittedError("HistoricalAcceptance.fit must be called first")

    @property
    def worker_ids(self) -> list[int]:
        """All worker ids seen at fit time, sorted."""
        self._require_fitted()
        return list(self._worker_ids)

    def willingness(self, worker_id: int, target: Point) -> float:
        """``P_wil(w, s)`` for one pair (0.0 for workers without a model)."""
        self._require_fitted()
        model = self.models.get(worker_id)
        if model is None:
            return 0.0
        return model.willingness(target)

    def willingness_all(self, target: Point) -> np.ndarray:
        """``P_wil(w, s)`` for *every* fitted worker against one location.

        Returns a vector aligned with :attr:`worker_ids`.  Internally a
        single pass over the flattened (location, weight, shape, owner)
        arrays followed by a segmented sum.
        """
        self._require_fitted()
        assert self._flat_xy is not None
        out = np.zeros(len(self._worker_ids))
        if len(self._flat_xy) == 0:
            return out
        dx = self._flat_xy[:, 0] - target.x
        dy = self._flat_xy[:, 1] - target.y
        distance = np.sqrt(dx * dx + dy * dy)
        contribution = self._flat_weight * (distance + 1.0) ** (-self._flat_shape)
        np.add.at(out, self._flat_owner_row, contribution)
        return out

    def row_of(self, worker_id: int) -> int:
        """Index of ``worker_id`` in the vectors of :meth:`willingness_all`."""
        self._require_fitted()
        return self._row_of[worker_id]
