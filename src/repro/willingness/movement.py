"""Alternative movement-probability families for willingness (extension).

The paper justifies the Pareto jump-length distribution with the
self-similarity of human movement; this module makes that modeling choice an
ablation knob.  Every family fits its parameter(s) by maximum likelihood on
the same shifted jumps ``x_i = d_i + 1 >= 1`` the Pareto fit uses, and
exposes the tail mass ``P[jump >= d]`` that Eq. 2 plugs in.

Families
--------
* :class:`ParetoMovement` — the paper's model; tail ``(d + 1)^(-pi)``.
* :class:`ExponentialMovement` — memoryless jumps; tail ``exp(-lambda * d)``.
* :class:`LognormalMovement` — heavy-ish tail with a mode; tail by the
  complementary normal CDF of ``ln(d + 1)``.
* :class:`RayleighMovement` — 2-d Gaussian displacement magnitude; tail
  ``exp(-d^2 / (2 sigma^2))``.

:class:`GeneralizedHistoricalAcceptance` re-implements Eq. 2 with a plug-in
family; with the Pareto family it reproduces
:class:`~repro.willingness.historical_acceptance.HistoricalAcceptance`
exactly (tested).
"""

from __future__ import annotations

import abc
import math
from typing import Mapping, Sequence

import numpy as np
from scipy import special

from repro.entities import TaskHistory
from repro.exceptions import NotFittedError
from repro.geo import Point
from repro.willingness.pareto import MAX_SHAPE, fit_pareto_shape
from repro.willingness.rwr import StationaryDistribution, random_walk_with_restart


def _validate_jumps(jumps: Sequence[float]) -> np.ndarray:
    if len(jumps) == 0:
        raise ValueError("need at least one consecutive distance to fit")
    array = np.asarray(jumps, dtype=float)
    if np.any(array < 0):
        raise ValueError("distances must be non-negative")
    return array


class MovementModel(abc.ABC):
    """One parametric family of jump-length distributions."""

    #: Family name used in configuration and experiment tables.
    name: str = "base"

    @abc.abstractmethod
    def fit(self, jumps: Sequence[float]) -> "MovementModel":
        """Fit the family's parameters to consecutive jump distances."""

    @abc.abstractmethod
    def tail(self, distance_km: np.ndarray | float) -> np.ndarray | float:
        """``P[jump >= distance]`` under the fitted parameters."""


class ParetoMovement(MovementModel):
    """The paper's Pareto family (Eq. 1 MLE, tail ``(d + 1)^(-pi)``)."""

    name = "pareto"

    def __init__(self) -> None:
        self.shape: float | None = None

    def fit(self, jumps: Sequence[float]) -> "ParetoMovement":
        self.shape = fit_pareto_shape(list(jumps))
        return self

    def tail(self, distance_km):
        if self.shape is None:
            raise NotFittedError("ParetoMovement.fit must be called first")
        return (np.asarray(distance_km, dtype=float) + 1.0) ** (-self.shape)


class ExponentialMovement(MovementModel):
    """Exponential jumps: MLE rate ``1 / mean``; tail ``exp(-rate * d)``."""

    name = "exponential"

    def __init__(self) -> None:
        self.rate: float | None = None

    def fit(self, jumps: Sequence[float]) -> "ExponentialMovement":
        array = _validate_jumps(jumps)
        mean = float(array.mean())
        # All-zero jumps degenerate to "never travels", mirroring the
        # Pareto DEGENERATE_SHAPE convention.
        self.rate = MAX_SHAPE if mean <= 0.0 else 1.0 / mean
        return self

    def tail(self, distance_km):
        if self.rate is None:
            raise NotFittedError("ExponentialMovement.fit must be called first")
        return np.exp(-self.rate * np.asarray(distance_km, dtype=float))


class LognormalMovement(MovementModel):
    """Lognormal over shifted jumps ``x = d + 1``: MLE of ``mu, sigma``."""

    name = "lognormal"

    #: Floor on sigma so a constant history still yields a proper tail.
    MIN_SIGMA = 1e-3

    def __init__(self) -> None:
        self.mu: float | None = None
        self.sigma: float | None = None

    def fit(self, jumps: Sequence[float]) -> "LognormalMovement":
        array = _validate_jumps(jumps)
        logs = np.log(array + 1.0)
        self.mu = float(logs.mean())
        self.sigma = max(float(logs.std()), self.MIN_SIGMA)
        return self

    def tail(self, distance_km):
        if self.mu is None or self.sigma is None:
            raise NotFittedError("LognormalMovement.fit must be called first")
        z = (np.log(np.asarray(distance_km, dtype=float) + 1.0) - self.mu) / self.sigma
        # Survival function of the standard normal.
        return 0.5 * special.erfc(z / math.sqrt(2.0))


class RayleighMovement(MovementModel):
    """Rayleigh jumps (2-d Gaussian displacement): MLE ``sigma^2 = mean(d^2)/2``."""

    name = "rayleigh"

    #: Floor on sigma^2, for the all-zero-jump degenerate history.
    MIN_SIGMA_SQ = 1e-6

    def __init__(self) -> None:
        self.sigma_sq: float | None = None

    def fit(self, jumps: Sequence[float]) -> "RayleighMovement":
        array = _validate_jumps(jumps)
        self.sigma_sq = max(float((array**2).mean()) / 2.0, self.MIN_SIGMA_SQ)
        return self

    def tail(self, distance_km):
        if self.sigma_sq is None:
            raise NotFittedError("RayleighMovement.fit must be called first")
        d = np.asarray(distance_km, dtype=float)
        return np.exp(-(d * d) / (2.0 * self.sigma_sq))


#: Registry used by configuration surfaces (CLI, experiment settings).
MOVEMENT_FAMILIES: dict[str, type[MovementModel]] = {
    cls.name: cls
    for cls in (ParetoMovement, ExponentialMovement, LognormalMovement, RayleighMovement)
}


def make_movement_model(family: str) -> MovementModel:
    """Instantiate a movement family by name; raises on unknown names."""
    try:
        return MOVEMENT_FAMILIES[family]()
    except KeyError:
        raise ValueError(
            f"unknown movement family {family!r}; choose from {sorted(MOVEMENT_FAMILIES)}"
        ) from None


class GeneralizedHistoricalAcceptance:
    """Eq. 2 willingness with a pluggable movement family.

    With ``family="pareto"`` this is numerically identical to
    :class:`~repro.willingness.historical_acceptance.HistoricalAcceptance`;
    the other families quantify how sensitive downstream influence (and the
    assignment metrics) are to the paper's self-similarity assumption.
    """

    def __init__(
        self, family: str = "pareto", restart: float = 0.15, min_history: int = 2
    ) -> None:
        if family not in MOVEMENT_FAMILIES:
            raise ValueError(
                f"unknown movement family {family!r}; choose from {sorted(MOVEMENT_FAMILIES)}"
            )
        self.family = family
        self.restart = restart
        self.min_history = min_history
        self._stationary: dict[int, StationaryDistribution] = {}
        self._movement: dict[int, MovementModel] = {}
        self._worker_ids: list[int] = []
        self._fitted = False

    def fit(self, histories: Mapping[int, TaskHistory]) -> "GeneralizedHistoricalAcceptance":
        """Fit one (stationary distribution, movement model) pair per worker."""
        self._stationary.clear()
        self._movement.clear()
        self._worker_ids = sorted(histories)
        for worker_id in self._worker_ids:
            history = histories[worker_id]
            if len(history) < self.min_history:
                continue
            locations = history.locations
            jumps = [a.distance_to(b) for a, b in zip(locations, locations[1:])]
            self._stationary[worker_id] = random_walk_with_restart(
                locations, restart=self.restart
            )
            self._movement[worker_id] = make_movement_model(self.family).fit(jumps)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("GeneralizedHistoricalAcceptance.fit must be called first")

    @property
    def worker_ids(self) -> list[int]:
        """All worker ids seen at fit time, sorted."""
        self._require_fitted()
        return list(self._worker_ids)

    def willingness(self, worker_id: int, target: Point) -> float:
        """``P_wil(w, s)`` for one pair (0.0 for workers without a model)."""
        self._require_fitted()
        stationary = self._stationary.get(worker_id)
        if stationary is None:
            return 0.0
        movement = self._movement[worker_id]
        xy = np.array([(p.x, p.y) for p in stationary.locations])
        distance = np.hypot(xy[:, 0] - target.x, xy[:, 1] - target.y)
        tails = np.asarray(movement.tail(distance))
        return float(np.asarray(stationary.probabilities) @ tails)

    def willingness_all(self, target: Point) -> np.ndarray:
        """``P_wil(w, s)`` for every worker against one location."""
        self._require_fitted()
        return np.array([self.willingness(w, target) for w in self._worker_ids])
