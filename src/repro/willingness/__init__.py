"""Worker willingness via Historical Acceptance (paper Section III-B).

``P_wil(w, s)`` — the probability that worker ``w`` travels to task ``s`` —
combines (1) a Random-Walk-with-Restart stationary distribution over the
worker's historical task locations with (2) a Pareto-tailed movement
probability whose shape is fitted per worker by maximum likelihood (Eq. 1),
yielding Eq. 2:

    P_wil(w, s) = sum_i  P_w(w, s_i) * (d(s_i, s) + 1)^(-pi_w)
"""

from repro.willingness.rwr import StationaryDistribution, random_walk_with_restart
from repro.willingness.pareto import fit_pareto_shape, pareto_tail_probability
from repro.willingness.historical_acceptance import HistoricalAcceptance, WorkerMobilityModel
from repro.willingness.movement import (
    MOVEMENT_FAMILIES,
    ExponentialMovement,
    GeneralizedHistoricalAcceptance,
    LognormalMovement,
    MovementModel,
    ParetoMovement,
    RayleighMovement,
    make_movement_model,
)

__all__ = [
    "StationaryDistribution",
    "random_walk_with_restart",
    "fit_pareto_shape",
    "pareto_tail_probability",
    "HistoricalAcceptance",
    "WorkerMobilityModel",
    "MovementModel",
    "ParetoMovement",
    "ExponentialMovement",
    "LognormalMovement",
    "RayleighMovement",
    "MOVEMENT_FAMILIES",
    "make_movement_model",
    "GeneralizedHistoricalAcceptance",
]
