"""Persisting sweep results: JSON round-trip and CSV export.

Experiment campaigns are expensive; this module lets the CLI and the
benches save every :class:`~repro.experiments.SweepResult` to disk and
reload it for later inspection or regression comparison.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.runner import SweepResult
from repro.ioutil import atomic_write_text
from repro.framework.metrics import MetricsResult

#: Serialized metric fields, in column order.
_FIELDS = (
    "num_assigned",
    "average_influence",
    "average_propagation",
    "average_travel_km",
    "cpu_seconds",
)


def sweep_to_dict(result: SweepResult) -> dict:
    """Convert a sweep result to a JSON-serializable dict."""
    return {
        "parameter": result.parameter,
        "values": list(result.values),
        "series": {
            algorithm: {
                str(value): {field: getattr(metrics, field) for field in _FIELDS}
                for value, metrics in rows.items()
            }
            for algorithm, rows in result.series.items()
        },
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Inverse of :func:`sweep_to_dict`."""
    result = SweepResult(
        parameter=payload["parameter"],
        values=tuple(float(v) for v in payload["values"]),
    )
    for algorithm, rows in payload["series"].items():
        result.series[algorithm] = {
            float(value): MetricsResult(
                algorithm=algorithm,
                num_assigned=int(fields["num_assigned"]),
                average_influence=float(fields["average_influence"]),
                average_propagation=float(fields["average_propagation"]),
                average_travel_km=float(fields["average_travel_km"]),
                cpu_seconds=float(fields["cpu_seconds"]),
            )
            for value, fields in rows.items()
        }
    return result


def save_sweep(result: SweepResult, path: str | Path) -> Path:
    """Write a sweep result as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(
        path, json.dumps(sweep_to_dict(result), indent=2, sort_keys=True)
    )


def load_sweep(path: str | Path) -> SweepResult:
    """Load a sweep result saved by :func:`save_sweep`."""
    return sweep_from_dict(json.loads(Path(path).read_text()))


def export_csv(result: SweepResult, path: str | Path) -> Path:
    """Write the sweep as a flat CSV (one row per algorithm x value)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(["algorithm", result.parameter, *(f for f in _FIELDS)])
    for algorithm, rows in result.series.items():
        for value in result.values:
            metrics = rows[value]
            writer.writerow(
                [algorithm, value, *(getattr(metrics, field) for field in _FIELDS)]
            )
    return atomic_write_text(path, buffer.getvalue())
