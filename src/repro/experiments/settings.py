"""Experiment scaling: the paper's grids, proportionally shrunk.

The paper sweeps |S| in {500..2500} and |W| in {400..2000} over datasets of
58k (BK) / 11k (FS) users.  Our synthetic worlds default to ~1/10 of the
population, so the harness scales the task/worker grids by the same factor
while keeping the ϕ and r grids absolute (they are physical quantities).
``scale=1.0`` reproduces the paper's absolute grid sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.framework.config import PaperDefaults


@dataclass(frozen=True)
class ExperimentSettings:
    """Scaled experiment grids.

    Attributes
    ----------
    scale:
        Population scale factor relative to the paper's grids.
    num_days:
        Days averaged per configuration (paper: 4).
    assignment_hour:
        Assignment instant as an offset into the day (see
        :meth:`~repro.data.InstanceBuilder.build_day`); ``None`` evaluates
        at the day start.  The ϕ sweeps use 24.0 so that task deadlines
        actually bind.
    defaults:
        The Table II parameter values.
    """

    scale: float = 0.25
    num_days: int = 2
    seed: int = 7
    assignment_hour: float | None = None
    defaults: PaperDefaults = field(default_factory=PaperDefaults)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if self.num_days < 1:
            raise ConfigurationError("num_days must be >= 1")

    def _scaled(self, value: int) -> int:
        return max(10, round(value * self.scale))

    @property
    def default_tasks(self) -> int:
        """Scaled Table II default |S| = 1500."""
        return self._scaled(self.defaults.num_tasks)

    @property
    def default_workers(self) -> int:
        """Scaled Table II default |W| = 1200."""
        return self._scaled(self.defaults.num_workers)

    @property
    def task_sweep(self) -> tuple[int, ...]:
        """Scaled |S| grid (paper: 500..2500)."""
        return tuple(self._scaled(v) for v in self.defaults.task_sweep)

    @property
    def worker_sweep(self) -> tuple[int, ...]:
        """Scaled |W| grid (paper: 400..2000)."""
        return tuple(self._scaled(v) for v in self.defaults.worker_sweep)

    @property
    def valid_hours_sweep(self) -> tuple[float, ...]:
        """The ϕ grid in hours (absolute, paper: 1..6)."""
        return self.defaults.valid_hours_sweep

    @property
    def radius_sweep(self) -> tuple[float, ...]:
        """The r grid in km (absolute, paper: 5..25)."""
        return self.defaults.radius_sweep
