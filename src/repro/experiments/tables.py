"""Plain-text rendering of sweep results (the "figures" of this repo).

The original figures are line plots; we print the exact series that would
be plotted so shapes (ordering, trends, crossovers) are inspectable in a
terminal and diffable in CI.
"""

from __future__ import annotations

from repro.experiments.runner import SweepResult

#: Metric attribute -> column header used in rendered tables.
METRIC_LABELS: dict[str, str] = {
    "cpu_seconds": "CPU time (s)",
    "num_assigned": "# assigned",
    "average_influence": "AI",
    "average_propagation": "AP",
    "average_travel_km": "Travel (km)",
}


def format_series(result: SweepResult, metric: str, title: str = "") -> str:
    """Render one metric of all algorithms along the sweep as a table."""
    if metric not in METRIC_LABELS:
        raise ValueError(f"unknown metric {metric!r} (choose from {sorted(METRIC_LABELS)})")
    header_value = result.parameter
    lines = []
    if title:
        lines.append(title)
    width = max(len(a) for a in result.algorithms()) + 2
    value_headers = "".join(f"{v:>12g}" for v in result.values)
    lines.append(f"{header_value:<{width}}{value_headers}")
    for algorithm in result.algorithms():
        series = result.metric_series(algorithm, metric)
        cells = "".join(f"{v:>12.4f}" for v in series)
        lines.append(f"{algorithm:<{width}}{cells}")
    return "\n".join(lines)


def format_sweep_table(result: SweepResult, title: str = "") -> str:
    """Render every metric of a sweep, one block per metric."""
    blocks = []
    if title:
        blocks.append(f"=== {title} ===")
    for metric, label in METRIC_LABELS.items():
        blocks.append(format_series(result, metric, title=f"-- {label} --"))
    return "\n\n".join(blocks)
