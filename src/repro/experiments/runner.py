"""The sweep runner: fit models once per day, sweep parameters cheaply.

Key observation exploited here: the fitted influence components (LDA
affinity, HA willingness, RRR propagation) depend only on the *historical*
records and the social network — not on which tasks/workers are sampled into
an instance, nor on ϕ or r.  So the expensive fits happen once per
(dataset, day) and are shared by every sweep point, mirroring how the paper
could evaluate many configurations against one trained model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.assignment.base import Assigner
from repro.data.dataset import CheckInDataset
from repro.data.instance import InstanceBuilder, SCInstance
from repro.experiments.settings import ExperimentSettings
from repro.framework.config import PipelineConfig
from repro.framework.dita import DITAPipeline, FittedModels
from repro.framework.metrics import MetricsResult
from repro.framework.simulator import AlgorithmRun, Simulator
from repro.influence import InfluenceComponents


@dataclass
class SweepResult:
    """Results of one sweep: ``series[algorithm][sweep_value] -> metrics``."""

    parameter: str
    values: tuple[float, ...]
    series: dict[str, dict[float, MetricsResult]] = field(default_factory=dict)

    def metric_series(self, algorithm: str, metric: str) -> list[float]:
        """One metric of one algorithm along the sweep, in value order."""
        rows = self.series[algorithm]
        return [float(getattr(rows[v], metric)) for v in self.values]

    def algorithms(self) -> list[str]:
        """Algorithm names present, insertion-ordered."""
        return list(self.series)


class ExperimentRunner:
    """Runs parameter sweeps over one dataset with per-day model caching."""

    def __init__(
        self,
        dataset: CheckInDataset,
        settings: ExperimentSettings | None = None,
        pipeline_config: PipelineConfig | None = None,
    ) -> None:
        self.dataset = dataset
        self.settings = settings or ExperimentSettings()
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.pipeline = DITAPipeline(self.pipeline_config)
        self.builder = InstanceBuilder(
            dataset,
            valid_hours=self.settings.defaults.valid_hours,
            reachable_km=self.settings.defaults.reachable_km,
            speed_kmh=self.settings.defaults.speed_kmh,
        )
        self._fitted: dict[int, FittedModels] = {}
        self.days = self.builder.richest_days(count=self.settings.num_days)

    def fitted_models(self, day: int) -> FittedModels:
        """Fit (or reuse) the DITA models for one day."""
        if day not in self._fitted:
            self._fitted[day] = self.pipeline.fit(self.builder.build_day(day))
        return self._fitted[day]

    def build_instance(self, day: int, **overrides: float | int | None) -> SCInstance:
        """Build the day's instance with sweep overrides applied."""
        return self.builder.build_day(
            day,
            num_tasks=overrides.get("num_tasks", self.settings.default_tasks),  # type: ignore[arg-type]
            num_workers=overrides.get("num_workers", self.settings.default_workers),  # type: ignore[arg-type]
            valid_hours=overrides.get("valid_hours"),  # type: ignore[arg-type]
            reachable_km=overrides.get("reachable_km"),  # type: ignore[arg-type]
            assignment_hour=self.settings.assignment_hour,
            seed=self.settings.seed,
        )

    def run_sweep(
        self,
        parameter: str,
        values: Sequence[float],
        algorithms_factory: Callable[[FittedModels], Mapping[str, tuple[Assigner, InfluenceComponents | None]]],
    ) -> SweepResult:
        """Sweep ``parameter`` over ``values``.

        ``algorithms_factory`` maps the day's fitted models to the
        algorithms to run: ``name -> (assigner, components-or-None)`` where
        the components select an ablated influence model for assignment
        (``None`` = full model).  Metrics are always scored with the full
        model, as in the paper.
        """
        if parameter not in ("num_tasks", "num_workers", "valid_hours", "reachable_km"):
            raise ValueError(f"unknown sweep parameter {parameter!r}")
        result = SweepResult(parameter=parameter, values=tuple(float(v) for v in values))
        accumulators: dict[str, dict[float, AlgorithmRun]] = {}

        simulator = Simulator(self.pipeline_config, scoring_model="full")
        for day in self.days:
            fitted = self.fitted_models(day)
            full_model = fitted.influence_model()
            algorithms = algorithms_factory(fitted)
            # Group algorithms by their (ablated) influence model so that
            # each group shares one PreparedInstance — i.e. one influence
            # matrix — per sweep point.
            groups: dict[InfluenceComponents | None, list[tuple[str, Assigner]]] = {}
            for name, (assigner, components) in algorithms.items():
                groups.setdefault(components, []).append((name, assigner))
            models = {
                components: (
                    full_model
                    if components is None
                    else fitted.influence_model(components)
                )
                for components in groups
            }
            for value in result.values:
                overrides: dict[str, float | int | None] = {}
                if parameter in ("num_tasks", "num_workers"):
                    overrides[parameter] = int(value)
                else:
                    overrides[parameter] = value
                instance = self.build_instance(day, **overrides)
                for components, members in groups.items():
                    metrics_list = simulator.run_instance(
                        instance,
                        [assigner for _, assigner in members],
                        influence_model=models[components],
                        full_model=full_model,
                    )
                    for (name, _), metrics in zip(members, metrics_list):
                        run = accumulators.setdefault(name, {}).setdefault(
                            value, AlgorithmRun(name)
                        )
                        run.per_day.append(metrics)

        for name, per_value in accumulators.items():
            result.series[name] = {
                value: run.average() for value, run in per_value.items()
            }
        return result
