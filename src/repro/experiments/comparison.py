"""Algorithm comparison sweeps: Figures 9-16 (paper Section V-B2).

Five algorithms — MTA, IA, EIA, DIA, MI — swept over |S|, |W|, ϕ and r on
both datasets, measuring CPU time, number of assigned tasks, Average
Influence, Average Propagation, and travel cost.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.assignment import (
    Assigner,
    DIAAssigner,
    EIAAssigner,
    IAAssigner,
    MIAssigner,
    MTAAssigner,
)
from repro.experiments.runner import ExperimentRunner, SweepResult
from repro.framework.dita import FittedModels
from repro.influence import InfluenceComponents

#: The paper's comparison line-up, in its plot-legend order.
COMPARISON_ALGORITHMS: tuple[str, ...] = ("MTA", "IA", "EIA", "DIA", "MI")


def comparison_algorithms(
    fitted: FittedModels,
) -> Mapping[str, tuple[Assigner, InfluenceComponents | None]]:
    """The factory handed to :meth:`ExperimentRunner.run_sweep`.

    All five algorithms use the full influence model (``None``); they
    differ only in their assignment strategy.
    """
    # Engines are pinned (scipy matching / dense JV reduction) so CPU-time
    # curves reflect instance size, not the auto-dispatch threshold.
    return {
        "MTA": (MTAAssigner(engine="matching"), None),
        "IA": (IAAssigner(engine="dense"), None),
        "EIA": (EIAAssigner(engine="dense"), None),
        "DIA": (DIAAssigner(engine="dense"), None),
        "MI": (MIAssigner(), None),
    }


def run_comparison_sweep(
    runner: ExperimentRunner, parameter: str, values: Sequence[float]
) -> SweepResult:
    """Run one of the Figure 9-16 sweeps with all five algorithms."""
    return runner.run_sweep(parameter, values, comparison_algorithms)
