"""Experiment harness regenerating every table and figure of the paper.

* :class:`ExperimentSettings` — scales the paper's parameter grids
  (Table II and the sweep ranges of Figures 5-16) to a chosen dataset size;
* :class:`ExperimentRunner` — fits the DITA models once per (dataset, day)
  and reuses them across all sweep points, then runs the requested
  algorithms and collects the five metrics;
* :func:`run_ablation_sweep` — Figures 5-8 (IA vs IA-WP / IA-AP / IA-AW);
* :func:`run_comparison_sweep` — Figures 9-16 (MTA / IA / EIA / DIA / MI);
* :mod:`repro.experiments.tables` — plain-text rendering of result series.
"""

from repro.experiments.settings import ExperimentSettings
from repro.experiments.runner import ExperimentRunner, SweepResult
from repro.experiments.ablation import ABLATION_NAMES, run_ablation_sweep
from repro.experiments.comparison import COMPARISON_ALGORITHMS, run_comparison_sweep
from repro.experiments.tables import format_series, format_sweep_table
from repro.experiments.io import export_csv, load_sweep, save_sweep
from repro.experiments.report import render_report, sweep_section, write_report
from repro.experiments.stats import (
    ConfidenceInterval,
    PairedDelta,
    bootstrap_ci,
    paired_bootstrap_delta,
    summarize_runs,
)

__all__ = [
    "ExperimentSettings",
    "ExperimentRunner",
    "SweepResult",
    "run_ablation_sweep",
    "run_comparison_sweep",
    "ABLATION_NAMES",
    "COMPARISON_ALGORITHMS",
    "format_series",
    "format_sweep_table",
    "save_sweep",
    "load_sweep",
    "export_csv",
    "render_report",
    "sweep_section",
    "write_report",
    "ConfidenceInterval",
    "PairedDelta",
    "bootstrap_ci",
    "paired_bootstrap_delta",
    "summarize_runs",
]
