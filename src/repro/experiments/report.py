"""Markdown report generation from sweep results (extension).

Turns one or more :class:`~repro.experiments.SweepResult` objects into a
GitHub-flavoured markdown document in the style of EXPERIMENTS.md: one
section per sweep, one table per metric, plus an automatically derived
"shape summary" (who wins on average, monotonicity of each series) so a
reader can compare against the paper's claims without staring at numbers.

Used by the CLI (``sweep --markdown out.md``) and handy in notebooks.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.runner import SweepResult
from repro.experiments.tables import METRIC_LABELS


def _mean(series: list[float]) -> float:
    return sum(series) / len(series) if series else 0.0


def _trend(series: list[float], tolerance: float = 1e-9) -> str:
    """Classify a series as rising / falling / flat / mixed."""
    if len(series) < 2:
        return "flat"
    deltas = [b - a for a, b in zip(series, series[1:])]
    if all(abs(d) <= tolerance for d in deltas):
        return "flat"
    if all(d >= -tolerance for d in deltas):
        return "rising"
    if all(d <= tolerance for d in deltas):
        return "falling"
    return "mixed"


def metric_table(result: SweepResult, metric: str) -> str:
    """One metric as a markdown table (algorithms x sweep values)."""
    if metric not in METRIC_LABELS:
        raise ValueError(
            f"unknown metric {metric!r} (choose from {sorted(METRIC_LABELS)})"
        )
    header = (
        f"| algorithm | " + " | ".join(f"{v:g}" for v in result.values) + " |"
    )
    divider = "|---" * (len(result.values) + 1) + "|"
    rows = []
    for algorithm in result.algorithms():
        series = result.metric_series(algorithm, metric)
        cells = " | ".join(f"{v:.4f}" for v in series)
        rows.append(f"| {algorithm} | {cells} |")
    return "\n".join([header, divider, *rows])


def shape_summary(result: SweepResult) -> str:
    """Bullet list of derived shapes: per-metric winner and trends."""
    lines = []
    for metric, label in METRIC_LABELS.items():
        means = {
            algorithm: _mean(result.metric_series(algorithm, metric))
            for algorithm in result.algorithms()
        }
        if not means:
            continue
        best = max(means, key=lambda a: means[a])
        worst = min(means, key=lambda a: means[a])
        trends = {
            algorithm: _trend(result.metric_series(algorithm, metric))
            for algorithm in result.algorithms()
        }
        trend_text = ", ".join(f"{a}: {t}" for a, t in trends.items())
        lines.append(
            f"- **{label}** — highest mean: {best} ({means[best]:.4g}), "
            f"lowest: {worst} ({means[worst]:.4g}); trends vs "
            f"{result.parameter}: {trend_text}"
        )
    return "\n".join(lines)


def sweep_section(result: SweepResult, title: str) -> str:
    """A full markdown section for one sweep."""
    parts = [f"## {title}", "", shape_summary(result), ""]
    for metric, label in METRIC_LABELS.items():
        parts.append(f"### {label}")
        parts.append("")
        parts.append(metric_table(result, metric))
        parts.append("")
    return "\n".join(parts)


def render_report(
    sections: dict[str, SweepResult],
    heading: str = "Sweep report",
    preamble: str = "",
) -> str:
    """Assemble a full markdown report from named sweeps."""
    parts = [f"# {heading}", ""]
    if preamble:
        parts.extend([preamble, ""])
    for title, result in sections.items():
        parts.append(sweep_section(result, title))
    return "\n".join(parts).rstrip() + "\n"


def write_report(
    sections: dict[str, SweepResult],
    path: str | Path,
    heading: str = "Sweep report",
    preamble: str = "",
) -> Path:
    """Render and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(sections, heading=heading, preamble=preamble))
    return path
