"""Statistical utilities for experiment campaigns (extension).

The paper reports plain averages over 4 days.  For a reproduction it is
useful to know how stable those averages are, so this module provides

* :func:`bootstrap_ci` — a percentile bootstrap confidence interval for the
  mean of a small sample (days are few, normality is doubtful — the
  bootstrap is the standard tool);
* :func:`paired_bootstrap_delta` — a CI on the mean difference between two
  algorithms evaluated on the *same* days (paired, so day-to-day variance
  cancels), with the sign test probability;
* :func:`summarize_runs` — per-algorithm mean ± CI over a set of
  :class:`~repro.framework.metrics.MetricsResult` day records.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.framework.metrics import MetricsResult

#: Metric attributes that can be summarized.
METRIC_FIELDS = (
    "num_assigned",
    "average_influence",
    "average_propagation",
    "average_travel_km",
    "cpu_seconds",
)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided percentile-bootstrap interval."""

    mean: float
    lower: float
    upper: float
    confidence: float

    @property
    def halfwidth(self) -> float:
        """Half the interval width — a scalar stability summary."""
        return (self.upper - self.lower) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} [{self.lower:.4g}, {self.upper:.4g}]"


def bootstrap_ci(
    sample: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for the mean of ``sample``.

    A single observation yields a degenerate interval at the point estimate
    (no resampling spread exists).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    values = np.asarray(sample, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    mean = float(values.mean())
    if values.size == 1:
        return ConfidenceInterval(mean, mean, mean, confidence)
    rng = np.random.default_rng(seed)
    indices = rng.integers(values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(mean, float(lower), float(upper), confidence)


@dataclass(frozen=True)
class PairedDelta:
    """Bootstrap summary of ``a - b`` over paired observations."""

    mean_delta: float
    ci: ConfidenceInterval
    #: Fraction of bootstrap resamples in which the mean delta is > 0.
    probability_positive: float

    @property
    def significant(self) -> bool:
        """True when the CI excludes zero."""
        return self.ci.lower > 0.0 or self.ci.upper < 0.0


def paired_bootstrap_delta(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> PairedDelta:
    """Bootstrap the mean difference between paired samples.

    ``a`` and ``b`` must be aligned (same days, same order).
    """
    a_values = np.asarray(a, dtype=float)
    b_values = np.asarray(b, dtype=float)
    if a_values.shape != b_values.shape:
        raise ValueError(
            f"paired samples must align, got {a_values.shape} vs {b_values.shape}"
        )
    deltas = a_values - b_values
    ci = bootstrap_ci(deltas, confidence=confidence, resamples=resamples, seed=seed)
    if deltas.size == 1:
        probability = 1.0 if deltas[0] > 0 else 0.0
    else:
        rng = np.random.default_rng(seed)
        indices = rng.integers(deltas.size, size=(resamples, deltas.size))
        means = deltas[indices].mean(axis=1)
        probability = float((means > 0).mean())
    return PairedDelta(
        mean_delta=float(deltas.mean()), ci=ci, probability_positive=probability
    )


def summarize_runs(
    per_day: Mapping[str, Sequence[MetricsResult]],
    metric: str,
    confidence: float = 0.95,
    seed: int = 0,
) -> dict[str, ConfidenceInterval]:
    """Mean ± bootstrap CI of one metric, per algorithm.

    ``per_day`` maps algorithm name to its day-level metric records (the
    ``AlgorithmRun.per_day`` lists the simulator accumulates).
    """
    if metric not in METRIC_FIELDS:
        raise ValueError(f"unknown metric {metric!r}; choose from {METRIC_FIELDS}")
    return {
        algorithm: bootstrap_ci(
            [float(getattr(record, metric)) for record in records],
            confidence=confidence,
            seed=seed,
        )
        for algorithm, records in per_day.items()
    }
