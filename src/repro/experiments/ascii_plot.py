"""Terminal line plots for sweep results.

The paper's figures are line charts; :func:`plot_series` renders an ASCII
approximation so trends and crossovers are visible directly in a terminal
or CI log, next to the exact numbers from :mod:`repro.experiments.tables`.
"""

from __future__ import annotations

from repro.experiments.runner import SweepResult

#: Marker characters cycled over algorithms.
_MARKERS = "*o+x#@%&"


def plot_series(
    result: SweepResult,
    metric: str,
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one metric of every algorithm as an ASCII line chart.

    The x axis spans the sweep values, the y axis the metric range; each
    algorithm gets a marker from :data:`_MARKERS`, listed in the legend.
    """
    algorithms = result.algorithms()
    if not algorithms:
        raise ValueError("empty sweep result")
    series = {a: result.metric_series(a, metric) for a in algorithms}
    y_min = min(min(s) for s in series.values())
    y_max = max(max(s) for s in series.values())
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_positions = [
        round(i * (width - 1) / max(len(result.values) - 1, 1))
        for i in range(len(result.values))
    ]
    for index, algorithm in enumerate(algorithms):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, value in zip(x_positions, series[algorithm]):
            y = round((value - y_min) / (y_max - y_min) * (height - 1))
            row = height - 1 - y
            grid[row][x] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.4f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:>10.4f} ┤" + "".join(grid[-1]))
    left = f"{result.values[0]:g}"
    right = f"{result.values[-1]:g}"
    padding = max(width - len(left) - len(right), 1)
    lines.append(" " * 12 + left + " " * padding + right)
    lines.append(" " * 12 + f"({result.parameter})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {a}" for i, a in enumerate(algorithms)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
