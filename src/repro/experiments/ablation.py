"""Influence-modeling ablations: Figures 5-8 (paper Section V-B1).

Four configurations of the IA algorithm, differing only in which influence
components drive the assignment:

* ``IA``    — full influence (affinity x willingness x propagation);
* ``IA-WP`` — willingness + propagation (no affinity);
* ``IA-AP`` — affinity + propagation (no willingness);
* ``IA-AW`` — affinity + willingness (no propagation).

All four are *scored* on the full influence (Average Influence, Eq. 6),
which is what makes the comparison meaningful.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.assignment import Assigner, IAAssigner
from repro.experiments.runner import ExperimentRunner, SweepResult
from repro.framework.dita import FittedModels
from repro.influence import InfluenceComponents

#: Names of the four ablation configurations, in the paper's order.
ABLATION_NAMES: tuple[str, ...] = ("IA", "IA-WP", "IA-AP", "IA-AW")


def ablation_algorithms(
    fitted: FittedModels,
) -> Mapping[str, tuple[Assigner, InfluenceComponents | None]]:
    """The factory handed to :meth:`ExperimentRunner.run_sweep`."""
    return {
        "IA": (IAAssigner(), None),
        "IA-WP": (IAAssigner(), InfluenceComponents.without_affinity()),
        "IA-AP": (IAAssigner(), InfluenceComponents.without_willingness()),
        "IA-AW": (IAAssigner(), InfluenceComponents.without_propagation()),
    }


def run_ablation_sweep(
    runner: ExperimentRunner, parameter: str, values: Sequence[float]
) -> SweepResult:
    """Run one of the Figure 5-8 sweeps and return the AI series."""
    return runner.run_sweep(parameter, values, ablation_algorithms)
