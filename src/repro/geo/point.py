"""A lightweight immutable 2-D point used for worker/task/venue locations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable planar point with kilometre coordinates.

    The library works in a local planar frame where both coordinates are in
    kilometres; this matches the paper's use of Euclidean distance and a
    worker speed of 5 km/h.  Points are hashable so they can key caches of
    per-location statistics (e.g. location entropy).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other`` in kilometres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point displaced by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    @staticmethod
    def origin() -> "Point":
        """Return the origin point ``(0, 0)``."""
        return Point(0.0, 0.0)
