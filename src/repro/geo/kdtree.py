"""A 2-d tree (k-d tree specialized to the plane) for circular range queries.

The uniform :class:`~repro.geo.grid.GridIndex` answers radius queries in
output-sensitive time only when the query radius is close to the cell size;
worker reachable radii in the paper sweep from 5 to 25 km, so a single grid
resolution is a compromise.  The k-d tree is resolution-free: it recursively
halves the point set along alternating axes and prunes whole subtrees whose
bounding half-plane is farther from the query center than the radius.

The tree is static (built once per instance, like the task set) and stored
in flat arrays — node ``i`` has children ``2i + 1`` and ``2i + 2`` would
waste memory on unbalanced splits, so instead each node records its child
indices explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, Sequence, TypeVar

from repro.geo.point import Point

T = TypeVar("T", bound=Hashable)

#: Number of points below which a node stores a flat leaf bucket.
_LEAF_SIZE = 8


@dataclass
class _Node:
    """One internal node or leaf of the tree."""

    axis: int = -1  # -1 marks a leaf
    split: float = 0.0
    left: int = -1
    right: int = -1
    start: int = 0  # leaf payload range [start, stop) into the point arrays
    stop: int = 0


class KDTree(Generic[T]):
    """A static planar k-d tree over ``(point, item)`` pairs.

    Parameters
    ----------
    pairs:
        The indexed points with their payloads.  The tree copies the input;
        later mutation of the sequence does not affect the index.

    Notes
    -----
    Construction is O(n log n) via median splits; a radius query visits
    O(sqrt(n) + k) nodes for k reported points, which beats both the dense
    scan and a mis-tuned grid on the paper's r in [5, 25] km sweeps.
    """

    def __init__(self, pairs: Sequence[tuple[Point, T]]) -> None:
        self._points: list[Point] = [p for p, _ in pairs]
        self._items: list[T] = [item for _, item in pairs]
        self._order = list(range(len(self._points)))
        self._nodes: list[_Node] = []
        if self._order:
            self._build(0, len(self._order), depth=0)

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------ construction
    def _coordinate(self, index: int, axis: int) -> float:
        point = self._points[index]
        return point.x if axis == 0 else point.y

    def _build(self, start: int, stop: int, depth: int) -> int:
        """Build the subtree over ``order[start:stop]``; return its node id."""
        node_id = len(self._nodes)
        self._nodes.append(_Node())
        node = self._nodes[node_id]
        if stop - start <= _LEAF_SIZE:
            node.start, node.stop = start, stop
            return node_id
        axis = depth % 2
        segment = self._order[start:stop]
        segment.sort(key=lambda i: self._coordinate(i, axis))
        self._order[start:stop] = segment
        middle = (start + stop) // 2
        node.axis = axis
        node.split = self._coordinate(self._order[middle], axis)
        node.left = self._build(start, middle, depth + 1)
        node.right = self._build(middle, stop, depth + 1)
        return node_id

    # ----------------------------------------------------------------- queries
    def query_radius(self, center: Point, radius_km: float) -> Iterator[tuple[Point, T]]:
        """Yield every ``(point, item)`` within ``radius_km`` of ``center``.

        Border-inclusive, matching the paper's ``d(w.l, s.l) <= w.r``.
        """
        if radius_km < 0:
            raise ValueError(f"radius_km must be non-negative, got {radius_km}")
        if not self._nodes:
            return
        r2 = radius_km * radius_km
        stack = [0]
        while stack:
            node = self._nodes[stack.pop()]
            if node.axis == -1:
                for position in range(node.start, node.stop):
                    index = self._order[position]
                    point = self._points[index]
                    dx = point.x - center.x
                    dy = point.y - center.y
                    if dx * dx + dy * dy <= r2:
                        yield point, self._items[index]
                continue
            delta = (center.x if node.axis == 0 else center.y) - node.split
            # The near child always intersects the query ball; the far child
            # only if the splitting line is within the radius.
            near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
            stack.append(near)
            if delta * delta <= r2:
                stack.append(far)

    def nearest(self, center: Point) -> tuple[Point, T]:
        """Return the indexed pair closest to ``center``.

        Raises :class:`ValueError` on an empty tree.  Ties break arbitrarily.
        """
        if not self._nodes:
            raise ValueError("nearest() on an empty KDTree")
        best_d2 = float("inf")
        best_index = -1
        stack = [0]
        while stack:
            node = self._nodes[stack.pop()]
            if node.axis == -1:
                for position in range(node.start, node.stop):
                    index = self._order[position]
                    point = self._points[index]
                    dx = point.x - center.x
                    dy = point.y - center.y
                    d2 = dx * dx + dy * dy
                    if d2 < best_d2:
                        best_d2 = d2
                        best_index = index
                continue
            delta = (center.x if node.axis == 0 else center.y) - node.split
            near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
            # Visit the far side only if it can still contain a closer point.
            if delta * delta < best_d2:
                stack.append(far)
            stack.append(near)
        return self._points[best_index], self._items[best_index]

    def items(self) -> Iterator[tuple[Point, T]]:
        """Yield every indexed ``(point, item)`` pair (tree order)."""
        for index in self._order:
            yield self._points[index], self._items[index]
