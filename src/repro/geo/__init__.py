"""Spatial primitives: points, distances, bounding boxes, and a grid index.

This subpackage is the geometric substrate for the whole library.  The paper
measures distances in kilometres over city-scale regions, so the default
metric is Euclidean distance over planar (x, y) kilometre coordinates, with a
haversine implementation available for latitude/longitude data loaded from
the real Brightkite/FourSquare dumps.
"""

from repro.geo.point import Point
from repro.geo.distance import (
    euclidean,
    haversine_km,
    travel_time_hours,
    pairwise_euclidean,
)
from repro.geo.bbox import BoundingBox
from repro.geo.grid import GridIndex, cell_gap_km, cell_key
from repro.geo.kdtree import KDTree

__all__ = [
    "Point",
    "BoundingBox",
    "GridIndex",
    "KDTree",
    "cell_key",
    "cell_gap_km",
    "euclidean",
    "haversine_km",
    "travel_time_hours",
    "pairwise_euclidean",
]
