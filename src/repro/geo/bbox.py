"""Axis-aligned bounding boxes over planar kilometre coordinates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        """Extent along x in kilometres."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y in kilometres."""
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        """The centre point of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Return whether ``point`` lies inside the box (borders inclusive)."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def clamp(self, point: Point) -> Point:
        """Return ``point`` clamped to lie within the box."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a new box grown by ``margin`` km on every side."""
        return BoundingBox(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )

    @staticmethod
    def around(points: Iterable[Point]) -> "BoundingBox":
        """Return the minimal box containing all ``points``.

        Raises :class:`ValueError` for an empty iterable.
        """
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a bounding box around zero points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def square(side_km: float) -> "BoundingBox":
        """Return a ``side_km x side_km`` box anchored at the origin."""
        if side_km <= 0:
            raise ValueError(f"side_km must be positive, got {side_km}")
        return BoundingBox(0.0, 0.0, side_km, side_km)
