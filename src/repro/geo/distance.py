"""Distance and travel-time computations.

The paper (Section V-A) measures travel cost with Euclidean distance and
assumes a common worker speed of 5 km/h, so travel time and distance are
interchangeable up to a constant.  ``haversine_km`` supports real
latitude/longitude check-in dumps.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geo.point import Point

#: Mean Earth radius in kilometres (IUGG value), used by :func:`haversine_km`.
EARTH_RADIUS_KM = 6371.0088

#: Default worker travel speed in km/h (paper Section V-A).
DEFAULT_SPEED_KMH = 5.0


def euclidean(a: Point, b: Point) -> float:
    """Return the Euclidean distance between two planar points (km)."""
    return math.hypot(a.x - b.x, a.y - b.y)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Return the great-circle distance between two lat/lon pairs in km.

    Used when loading real check-in datasets whose coordinates are WGS-84
    degrees; synthetic datasets use planar kilometre coordinates directly.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def travel_time_hours(a: Point, b: Point, speed_kmh: float = DEFAULT_SPEED_KMH) -> float:
    """Return the travel time in hours between ``a`` and ``b``.

    Raises :class:`ValueError` for a non-positive speed.
    """
    if speed_kmh <= 0.0:
        raise ValueError(f"speed_kmh must be positive, got {speed_kmh}")
    return euclidean(a, b) / speed_kmh


def pairwise_euclidean(points_a: Sequence[Point], points_b: Sequence[Point]) -> np.ndarray:
    """Return the ``len(points_a) x len(points_b)`` Euclidean distance matrix.

    Vectorized with numpy; used by the assignment-graph builder to test
    reachability of every worker-task pair in one shot.
    """
    if not points_a or not points_b:
        return np.zeros((len(points_a), len(points_b)))
    arr_a = np.array([(p.x, p.y) for p in points_a], dtype=float)
    arr_b = np.array([(p.x, p.y) for p in points_b], dtype=float)
    diff = arr_a[:, None, :] - arr_b[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))
