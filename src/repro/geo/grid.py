"""A uniform grid index for fast circular range queries over points.

Assignment feasibility ("which tasks lie within a worker's reachable radius")
is a range query answered for every worker at every time instance; a uniform
grid turns the naive O(|W| * |S|) scan into an output-sensitive lookup.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from repro.exceptions import DataError
from repro.geo.point import Point

T = TypeVar("T", bound=Hashable)

#: Valid quantized cell-index range: ``|k| < MAX_CELL_INDEX``.  Mirrors the
#: int64 packing bound of :meth:`repro.stream.events.EventLog.cell_keys`
#: (``CELL_OFFSET`` there) so the scalar and columnar quantizers reject the
#: same inputs instead of silently aliasing distinct cells.
MAX_CELL_INDEX = 2**25


def cell_key(x: float, y: float, cell_km: float) -> tuple[int, int]:
    """The uniform-grid cell containing planar point ``(x, y)``.

    The one cell quantization shared by every spatial partitioner —
    :class:`GridIndex` buckets, the offline
    :class:`~repro.assignment.PartitionedAssigner` cells, and the streaming
    shard planner — so an entity lands in the same cell no matter which
    layer asks.

    Raises :class:`~repro.exceptions.DataError` when either quantized
    index falls outside ``|k| < MAX_CELL_INDEX`` — a coordinate that far
    out (or a ``cell_km`` that small) would alias distinct cells once
    packed into an int64 key.
    """
    kx = math.floor(x / cell_km)
    ky = math.floor(y / cell_km)
    if abs(kx) >= MAX_CELL_INDEX or abs(ky) >= MAX_CELL_INDEX:
        raise DataError(
            f"coordinate ({x}, {y}) quantizes to cell ({kx}, {ky}) outside "
            f"|k| < {MAX_CELL_INDEX} at cell_km={cell_km}"
        )
    return (kx, ky)


def cell_gap_km(cell_a: tuple[int, int], cell_b: tuple[int, int], cell_km: float) -> float:
    """Minimum distance between any two points of two grid cells.

    Zero for identical or edge/corner-adjacent cells; otherwise the
    Euclidean gap between the squares.  The shard planner links two cells
    exactly when this gap does not exceed the largest worker radius — the
    radius-aware halo that keeps every feasible pair inside one shard.
    """
    gap_x = max(0, abs(cell_a[0] - cell_b[0]) - 1) * cell_km
    gap_y = max(0, abs(cell_a[1] - cell_b[1]) - 1) * cell_km
    return math.hypot(gap_x, gap_y)


class GridIndex(Generic[T]):
    """Buckets items by a uniform grid over the plane.

    Parameters
    ----------
    cell_size_km:
        Side length of each square cell.  A good default is the typical
        query radius so that a range query touches O(9) cells.
    """

    def __init__(self, cell_size_km: float) -> None:
        if cell_size_km <= 0:
            raise ValueError(f"cell_size_km must be positive, got {cell_size_km}")
        self._cell = cell_size_km
        self._buckets: dict[tuple[int, int], list[tuple[Point, T]]] = defaultdict(list)
        self._count = 0

    def _key(self, point: Point) -> tuple[int, int]:
        return cell_key(point.x, point.y, self._cell)

    def insert(self, point: Point, item: T) -> None:
        """Insert ``item`` located at ``point``."""
        self._buckets[self._key(point)].append((point, item))
        self._count += 1

    def insert_many(self, pairs: Iterable[tuple[Point, T]]) -> None:
        """Insert many ``(point, item)`` pairs."""
        for point, item in pairs:
            self.insert(point, item)

    def remove(self, point: Point, item: T) -> None:
        """Remove one ``(point, item)`` pair inserted earlier.

        Live indexes (e.g. the streaming runtime's open-task index) retire
        entries as tasks are assigned, expire, or are cancelled.  Raises
        :class:`KeyError` if the pair is not present, so callers notice
        bookkeeping bugs instead of silently diverging from their pools.
        """
        key = self._key(point)
        bucket = self._buckets.get(key)
        if bucket is not None:
            for position, (stored_point, stored_item) in enumerate(bucket):
                if stored_item == item and stored_point == point:
                    bucket.pop(position)
                    if not bucket:
                        del self._buckets[key]
                    self._count -= 1
                    return
        raise KeyError(f"({point}, {item!r}) is not in the index")

    def __len__(self) -> int:
        return self._count

    def query_radius(self, center: Point, radius_km: float) -> Iterator[tuple[Point, T]]:
        """Yield every ``(point, item)`` within ``radius_km`` of ``center``.

        Border-inclusive, matching the paper's ``d(w.l, s.l) <= w.r``.
        """
        if radius_km < 0:
            raise ValueError(f"radius_km must be non-negative, got {radius_km}")
        kx_min = math.floor((center.x - radius_km) / self._cell)
        kx_max = math.floor((center.x + radius_km) / self._cell)
        ky_min = math.floor((center.y - radius_km) / self._cell)
        ky_max = math.floor((center.y + radius_km) / self._cell)
        for kx in range(kx_min, kx_max + 1):
            for ky in range(ky_min, ky_max + 1):
                bucket = self._buckets.get((kx, ky))
                if not bucket:
                    continue
                for point, item in bucket:
                    # hypot, not squared comparison: squaring underflows on
                    # subnormal offsets and disagrees with distance_to.
                    if math.hypot(point.x - center.x, point.y - center.y) <= radius_km:
                        yield point, item

    def items(self) -> Iterator[tuple[Point, T]]:
        """Yield every indexed ``(point, item)`` pair."""
        for bucket in self._buckets.values():
            yield from bucket
