"""Crash-safe file writes shared by checkpoints and experiment artifacts.

Every durable artifact the project writes (checkpoint manifests, chunk
files, sweep JSON, CSV exports) goes through :func:`atomic_write_bytes`:
the payload lands in a temporary file *in the destination directory*
(same filesystem, so the final rename cannot degrade into a copy), is
fsynced, and is moved into place with :func:`os.replace`.  Readers
therefore observe either the previous complete file or the new complete
file — never a torn write — and a crash mid-save leaves the previous
artifact untouched.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]


def fsync_directory(path: str | Path) -> None:
    """Best-effort fsync of a directory, making a rename in it durable.

    POSIX only persists the directory entry created by ``os.replace`` once
    the directory itself is synced; platforms that refuse ``O_RDONLY`` on
    directories (or lack the concept) are silently skipped — atomicity
    never depends on this, only power-loss durability does.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` all-or-nothing and return the path.

    The temporary file is created next to the destination (never in a
    global tmpdir) and fsynced before ``os.replace`` publishes it; on any
    failure the temporary file is removed and the previous content of
    ``path`` is left exactly as it was.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))
