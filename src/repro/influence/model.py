"""The worker-task influence model (paper Section III-D).

The full influence of a candidate worker ``w_s`` for task ``s`` is

    if(w_s, s) = P_aff(w_s, s) * sum_{w_i != w_s} P_wil(w_i, s) * P_pro(w_s, w_i)

The expensive inner sum is evaluated for *all* candidate workers and tasks
at once through the RRR membership matrix (see
:meth:`~repro.propagation.RRRCollection.weighted_root_cover_batch`), making
the full ``|W| x |S|`` influence matrix a handful of sparse/dense products.

Ablations (Section V-B1) drop one factor:

* ``IA-WP`` — no affinity:      ``if = sum_i P_wil * P_pro``
* ``IA-AP`` — no willingness:   ``if = P_aff * sigma(w_s)``
* ``IA-AW`` — no propagation:   ``if = P_aff * sum_{i != s} P_wil(w_i, s)``
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.affinity import AffinityModel
from repro.entities import Task, Worker
from repro.exceptions import ConfigurationError
from repro.propagation import RRRCollection, SocialGraph
from repro.willingness import HistoricalAcceptance


@dataclass(frozen=True)
class InfluenceComponents:
    """Which of the three factors participate (for the paper's ablations)."""

    affinity: bool = True
    willingness: bool = True
    propagation: bool = True

    def __post_init__(self) -> None:
        if not (self.affinity or self.willingness or self.propagation):
            raise ConfigurationError("at least one influence component is required")

    @staticmethod
    def full() -> "InfluenceComponents":
        """All three factors — the IA configuration."""
        return InfluenceComponents()

    @staticmethod
    def without_affinity() -> "InfluenceComponents":
        """IA-WP: willingness + propagation."""
        return InfluenceComponents(affinity=False)

    @staticmethod
    def without_willingness() -> "InfluenceComponents":
        """IA-AP: affinity + propagation."""
        return InfluenceComponents(willingness=False)

    @staticmethod
    def without_propagation() -> "InfluenceComponents":
        """IA-AW: affinity + willingness."""
        return InfluenceComponents(propagation=False)


class InfluenceModel:
    """Combines affinity, willingness and propagation into ``if(w, s)``.

    Parameters
    ----------
    graph:
        The social network over all workers.
    affinity / willingness:
        Fitted component models.
    propagation:
        The RRR collection estimating ``P_pro`` (from
        :class:`~repro.propagation.RPO` or fixed-count sampling).
    components:
        Ablation switch; defaults to the full model.
    """

    def __init__(
        self,
        graph: SocialGraph,
        affinity: AffinityModel,
        willingness: HistoricalAcceptance,
        propagation: RRRCollection,
        components: InfluenceComponents | None = None,
    ) -> None:
        self.graph = graph
        self.affinity = affinity
        self.willingness = willingness
        self.propagation = propagation
        self.components = components or InfluenceComponents.full()
        self._sigma_cache: np.ndarray | None = None
        # Root-count per worker for the self-term correction: the sets
        # rooted at w always contain w, so P_pro(w, w) = |W|/N * #roots(w).
        self._self_pro: np.ndarray | None = None
        # Per-task column caches (keyed by the frozen Task): the willingness
        # column P_wil(., s) over all network workers and the propagation
        # inner sum from weighted_root_cover.  Each column depends only on
        # the task, so successive online rounds that mostly re-see the same
        # open tasks pay for the expensive |W|-sized columns exactly once.
        self._wil_columns: dict[Task, np.ndarray] = {}
        self._wil_totals: dict[Task, float] = {}
        self._inner_columns: dict[Task, np.ndarray] = {}
        self._rows_in_graph: np.ndarray | None = None
        self._propagation_version = propagation.version
        # The column caches above are mutated on lookup (fill + eviction), so
        # concurrent shard prepares under the pipelined runtime serialize
        # through this lock; the numpy math itself runs outside any cache
        # mutation and stays parallel.
        self._lock = threading.RLock()

    #: Soft cap on cached per-task columns; beyond it the oldest entries are
    #: evicted (insertion order).  Bounds memory on long multi-day runs where
    #: expired tasks never return, while keeping every open task warm.
    MAX_CACHED_TASK_COLUMNS = 4096

    # ---------------------------------------------------------------- helpers
    def _check_propagation_freshness(self) -> None:
        """Flush propagation-derived caches if the collection mutated."""
        if self.propagation.version != self._propagation_version:
            self._propagation_version = self.propagation.version
            self._sigma_cache = None
            self._self_pro = None
            self._inner_columns.clear()

    def _sigma_all(self) -> np.ndarray:
        if self._sigma_cache is None:
            self._sigma_cache = self.propagation.sigma_all()
        return self._sigma_cache

    def _self_propagation(self) -> np.ndarray:
        if self._self_pro is None:
            counts = np.bincount(
                self.propagation.roots, minlength=self.graph.num_workers
            ).astype(float)
            n_sets = max(len(self.propagation), 1)
            self._self_pro = self.graph.num_workers * counts / n_sets
        return self._self_pro

    def _ensure_task_columns(self, tasks: Sequence[Task], need_inner: bool) -> None:
        """Populate the per-task column caches for every unseen task.

        The willingness column ``P_wil(., s)`` spans all network workers; the
        inner column is its :meth:`weighted_root_cover` image.  The sparse
        product in ``weighted_root_cover_batch`` is independent per column,
        so batching only the missing tasks yields bit-identical columns to a
        full recomputation.
        """
        n = self.graph.num_workers
        if self._rows_in_graph is None:
            self._rows_in_graph = self.graph.indices_of(self.willingness.worker_ids)
        for task in tasks:
            if task not in self._wil_columns:
                column = np.zeros(n)
                column[self._rows_in_graph] = self.willingness.willingness_all(
                    task.location
                )
                self._wil_columns[task] = column
                self._wil_totals[task] = float(column.sum())
        if need_inner:
            missing = [task for task in tasks if task not in self._inner_columns]
            if missing:
                wil = np.stack([self._wil_columns[task] for task in missing], axis=1)
                fresh = self.propagation.weighted_root_cover_batch(wil)
                for slot, task in enumerate(missing):
                    self._inner_columns[task] = fresh[:, slot]
        self._evict_stale_columns(tasks)

    def _evict_stale_columns(self, tasks: Sequence[Task]) -> None:
        """Drop the oldest cached columns once past the soft cap, never
        evicting a task referenced by the current call."""
        cap = max(self.MAX_CACHED_TASK_COLUMNS, 2 * len(tasks))
        if len(self._wil_columns) <= cap:
            return
        keep = set(tasks)
        for task in list(self._wil_columns):
            if len(self._wil_columns) <= cap:
                break
            if task in keep:
                continue
            del self._wil_columns[task]
            self._wil_totals.pop(task, None)
            self._inner_columns.pop(task, None)

    # ------------------------------------------------------------------- API
    def sigma(self, worker_id: int) -> float:
        """Informed range of ``worker_id`` (the AP metric's per-worker term)."""
        with self._lock:
            return float(self._sigma_all()[self.graph.index_of(worker_id)])

    def propagation_to_others(self, worker_id: int) -> float:
        """``sum_{w_j != w} P_pro(w, w_j)`` — Equation 7's per-pair term.

        Equals the informed range minus the self term ``P_pro(w, w)``.
        """
        with self._lock:
            index = self.graph.index_of(worker_id)
            value = float(
                self._sigma_all()[index] - self._self_propagation()[index]
            )
        return max(value, 0.0)

    def influence_matrix(
        self, workers: Sequence[Worker], tasks: Sequence[Task]
    ) -> np.ndarray:
        """``if(w, s)`` for every candidate worker x task: shape ``(C, T)``."""
        if not workers or not tasks:
            return np.zeros((len(workers), len(tasks)))
        with self._lock:
            return self._influence_matrix_locked(workers, tasks)

    def _influence_matrix_locked(
        self, workers: Sequence[Worker], tasks: Sequence[Task]
    ) -> np.ndarray:
        self._check_propagation_freshness()
        candidate_idx = self.graph.indices_of([w.worker_id for w in workers])
        use = self.components

        if use.willingness:
            self._ensure_task_columns(tasks, need_inner=use.propagation)
            # Gather only the candidate rows of the cached |W|-sized columns:
            # O(C x T) per call, independent of network size.
            wil = np.stack(
                [self._wil_columns[task][candidate_idx] for task in tasks], axis=1
            )
            if use.propagation:
                inner_all = np.stack(
                    [self._inner_columns[task][candidate_idx] for task in tasks],
                    axis=1,
                )
                # Remove the self term w_i = w_s.
                inner = inner_all - (
                    self._self_propagation()[candidate_idx, None] * wil
                )
            else:
                # IA-AW: plain sum of other workers' willingness.
                totals = np.array([self._wil_totals[task] for task in tasks])
                inner = totals[None, :] - wil
        else:
            # IA-AP: propagation only — the informed range of the candidate.
            inner = np.repeat(
                self._sigma_all()[candidate_idx, None], len(tasks), axis=1
            )
        inner = np.maximum(inner, 0.0)

        if use.affinity:
            aff = self.affinity.affinity_matrix(
                [w.worker_id for w in workers], tasks
            )
            return aff * inner
        return inner

    def influence(self, worker: Worker, task: Task) -> float:
        """``if(w, s)`` for a single pair (convenience wrapper)."""
        return float(self.influence_matrix([worker], [task])[0, 0])
