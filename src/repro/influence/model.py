"""The worker-task influence model (paper Section III-D).

The full influence of a candidate worker ``w_s`` for task ``s`` is

    if(w_s, s) = P_aff(w_s, s) * sum_{w_i != w_s} P_wil(w_i, s) * P_pro(w_s, w_i)

The expensive inner sum is evaluated for *all* candidate workers and tasks
at once through the RRR membership matrix (see
:meth:`~repro.propagation.RRRCollection.weighted_root_cover_batch`), making
the full ``|W| x |S|`` influence matrix a handful of sparse/dense products.

Ablations (Section V-B1) drop one factor:

* ``IA-WP`` — no affinity:      ``if = sum_i P_wil * P_pro``
* ``IA-AP`` — no willingness:   ``if = P_aff * sigma(w_s)``
* ``IA-AW`` — no propagation:   ``if = P_aff * sum_{i != s} P_wil(w_i, s)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.affinity import AffinityModel
from repro.entities import Task, Worker
from repro.exceptions import ConfigurationError
from repro.propagation import RRRCollection, SocialGraph
from repro.willingness import HistoricalAcceptance


@dataclass(frozen=True)
class InfluenceComponents:
    """Which of the three factors participate (for the paper's ablations)."""

    affinity: bool = True
    willingness: bool = True
    propagation: bool = True

    def __post_init__(self) -> None:
        if not (self.affinity or self.willingness or self.propagation):
            raise ConfigurationError("at least one influence component is required")

    @staticmethod
    def full() -> "InfluenceComponents":
        """All three factors — the IA configuration."""
        return InfluenceComponents()

    @staticmethod
    def without_affinity() -> "InfluenceComponents":
        """IA-WP: willingness + propagation."""
        return InfluenceComponents(affinity=False)

    @staticmethod
    def without_willingness() -> "InfluenceComponents":
        """IA-AP: affinity + propagation."""
        return InfluenceComponents(willingness=False)

    @staticmethod
    def without_propagation() -> "InfluenceComponents":
        """IA-AW: affinity + willingness."""
        return InfluenceComponents(propagation=False)


class InfluenceModel:
    """Combines affinity, willingness and propagation into ``if(w, s)``.

    Parameters
    ----------
    graph:
        The social network over all workers.
    affinity / willingness:
        Fitted component models.
    propagation:
        The RRR collection estimating ``P_pro`` (from
        :class:`~repro.propagation.RPO` or fixed-count sampling).
    components:
        Ablation switch; defaults to the full model.
    """

    def __init__(
        self,
        graph: SocialGraph,
        affinity: AffinityModel,
        willingness: HistoricalAcceptance,
        propagation: RRRCollection,
        components: InfluenceComponents | None = None,
    ) -> None:
        self.graph = graph
        self.affinity = affinity
        self.willingness = willingness
        self.propagation = propagation
        self.components = components or InfluenceComponents.full()
        self._sigma_cache: np.ndarray | None = None
        # Root-count per worker for the self-term correction: the sets
        # rooted at w always contain w, so P_pro(w, w) = |W|/N * #roots(w).
        self._self_pro: np.ndarray | None = None

    # ---------------------------------------------------------------- helpers
    def _sigma_all(self) -> np.ndarray:
        if self._sigma_cache is None:
            self._sigma_cache = self.propagation.sigma_all()
        return self._sigma_cache

    def _self_propagation(self) -> np.ndarray:
        if self._self_pro is None:
            counts = np.bincount(
                self.propagation.roots, minlength=self.graph.num_workers
            ).astype(float)
            n_sets = max(len(self.propagation), 1)
            self._self_pro = self.graph.num_workers * counts / n_sets
        return self._self_pro

    def _willingness_matrix(self, tasks: Sequence[Task]) -> np.ndarray:
        """``P_wil`` of every *network* worker for every task, aligned with
        the graph's dense worker indices: shape ``(|W|, |S|)``."""
        n = self.graph.num_workers
        matrix = np.zeros((n, len(tasks)))
        ha_ids = self.willingness.worker_ids
        rows_in_graph = np.array(
            [self.graph.index_of(w) for w in ha_ids], dtype=np.int64
        )
        for column, task in enumerate(tasks):
            matrix[rows_in_graph, column] = self.willingness.willingness_all(task.location)
        return matrix

    # ------------------------------------------------------------------- API
    def sigma(self, worker_id: int) -> float:
        """Informed range of ``worker_id`` (the AP metric's per-worker term)."""
        return float(self._sigma_all()[self.graph.index_of(worker_id)])

    def propagation_to_others(self, worker_id: int) -> float:
        """``sum_{w_j != w} P_pro(w, w_j)`` — Equation 7's per-pair term.

        Equals the informed range minus the self term ``P_pro(w, w)``.
        """
        index = self.graph.index_of(worker_id)
        value = float(self._sigma_all()[index] - self._self_propagation()[index])
        return max(value, 0.0)

    def influence_matrix(
        self, workers: Sequence[Worker], tasks: Sequence[Task]
    ) -> np.ndarray:
        """``if(w, s)`` for every candidate worker x task: shape ``(C, T)``."""
        if not workers or not tasks:
            return np.zeros((len(workers), len(tasks)))
        candidate_idx = np.array(
            [self.graph.index_of(w.worker_id) for w in workers], dtype=np.int64
        )
        use = self.components

        if use.willingness:
            wil = self._willingness_matrix(tasks)  # (|W|, T)
            if use.propagation:
                inner_all = self.propagation.weighted_root_cover_batch(wil)  # (|W|, T)
                # Remove the self term w_i = w_s.
                inner = inner_all[candidate_idx, :] - (
                    self._self_propagation()[candidate_idx, None]
                    * wil[candidate_idx, :]
                )
            else:
                # IA-AW: plain sum of other workers' willingness.
                totals = wil.sum(axis=0, keepdims=True)  # (1, T)
                inner = totals - wil[candidate_idx, :]
        else:
            # IA-AP: propagation only — the informed range of the candidate.
            inner = np.repeat(
                self._sigma_all()[candidate_idx, None], len(tasks), axis=1
            )
        inner = np.maximum(inner, 0.0)

        if use.affinity:
            aff = self.affinity.affinity_matrix(
                [w.worker_id for w in workers], tasks
            )
            return aff * inner
        return inner

    def influence(self, worker: Worker, task: Task) -> float:
        """``if(w, s)`` for a single pair (convenience wrapper)."""
        return float(self.influence_matrix([worker], [task])[0, 0])
