"""Location entropy (paper Section IV-B).

For a task location with historical visitors ``W_s`` and visit counts
``Num_w`` (total ``Num_s``):

    s.e = - sum_{w in W_s} P_s(w) * ln P_s(w),    P_s(w) = Num_w / Num_s

Low entropy means visits concentrate on few workers, so EIA prioritizes
such tasks (they are hard to get done opportunistically).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.entities import Task


def location_entropy(visit_counts: Mapping[int, int]) -> float:
    """Entropy of the visitor distribution of one location.

    ``visit_counts`` maps worker id to visit count; zero-count entries are
    ignored.  An unvisited location has entropy 0 by convention.
    """
    total = sum(c for c in visit_counts.values() if c > 0)
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in visit_counts.values():
        if count <= 0:
            continue
        p = count / total
        entropy -= p * math.log(p)
    return entropy


def entropy_of_tasks(
    tasks: Sequence[Task], venue_visits: Mapping[int, Mapping[int, int]]
) -> dict[int, float]:
    """Location entropy per task id, looked up through the task's venue.

    Tasks without a venue or without history get entropy 0.
    """
    entropies: dict[int, float] = {}
    for task in tasks:
        visits = venue_visits.get(task.venue_id) if task.venue_id is not None else None
        entropies[task.task_id] = location_entropy(visits) if visits else 0.0
    return entropies
