"""Worker-task influence (paper Section III-D) and location entropy.

:class:`InfluenceModel` combines the three learned factors into

    if(w_s, s) = P_aff(w_s, s) * sum_{w_i != w_s} P_wil(w_i, s) * P_pro(w_s, w_i)

and supports the paper's ablations (IA-WP / IA-AP / IA-AW) by dropping one
factor at a time.  :func:`location_entropy` implements the EIA priority
signal.
"""

from repro.influence.entropy import location_entropy, entropy_of_tasks
from repro.influence.model import InfluenceComponents, InfluenceModel

__all__ = [
    "InfluenceModel",
    "InfluenceComponents",
    "location_entropy",
    "entropy_of_tasks",
]
