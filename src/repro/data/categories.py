"""A venue-category taxonomy modeled on the FourSquare hierarchy.

The paper extracts venue categories through the FourSquare API and feeds
them to LDA as words.  Only the vocabulary and its group structure matter to
the algorithms, so we ship a compact two-level taxonomy: nine top-level
groups (matching FourSquare's) with leaf categories under each.
"""

from __future__ import annotations

from typing import Mapping

#: Two-level taxonomy: top-level group -> tuple of leaf categories.
CATEGORY_TAXONOMY: Mapping[str, tuple[str, ...]] = {
    "arts_entertainment": (
        "art_gallery", "movie_theater", "concert_hall", "museum", "stadium",
        "theme_park", "aquarium", "bowling_alley", "casino", "comedy_club",
    ),
    "college_university": (
        "classroom", "library_university", "dormitory", "campus_quad",
        "lecture_hall", "student_center", "lab_building", "university_gym",
    ),
    "food": (
        "restaurant", "cafe", "bakery", "pizza_place", "sushi_bar",
        "burger_joint", "ice_cream_shop", "food_truck", "diner",
        "steakhouse", "noodle_house", "bbq_joint", "dessert_shop",
    ),
    "nightlife": (
        "bar", "nightclub", "pub", "lounge", "karaoke_bar",
        "cocktail_bar", "beer_garden", "wine_bar",
    ),
    "outdoors_recreation": (
        "park", "trail", "beach", "playground", "botanical_garden",
        "campground", "lake", "ski_area", "dog_run", "scenic_lookout",
    ),
    "professional": (
        "office", "coworking_space", "conference_center", "medical_center",
        "tech_startup", "bank_office", "courthouse", "factory",
    ),
    "residence": (
        "home", "apartment_building", "housing_development", "residential_street",
    ),
    "shops_services": (
        "grocery_store", "clothing_store", "bookstore", "electronics_store",
        "pharmacy", "salon", "gym", "hardware_store", "shopping_mall",
        "convenience_store", "flower_shop", "pet_store",
    ),
    "travel_transport": (
        "airport", "train_station", "bus_station", "hotel", "metro_station",
        "ferry_terminal", "rental_car", "taxi_stand", "rest_area",
    ),
}


def all_categories() -> tuple[str, ...]:
    """Return every leaf category, ordered by group then position."""
    leaves: list[str] = []
    for group in sorted(CATEGORY_TAXONOMY):
        leaves.extend(CATEGORY_TAXONOMY[group])
    return tuple(leaves)


def category_group(category: str) -> str:
    """Return the top-level group of ``category``.

    Raises :class:`KeyError` for an unknown category.
    """
    for group, leaves in CATEGORY_TAXONOMY.items():
        if category in leaves:
            return group
    raise KeyError(f"unknown category: {category!r}")


def group_names() -> tuple[str, ...]:
    """Return the top-level group names, sorted."""
    return tuple(sorted(CATEGORY_TAXONOMY))
