"""Synthetic check-in dataset generators (the BK/FS substitution).

The paper's experiments need three statistical properties from the data:

1. a **power-law social network** (IC propagation and the RPO bounds depend
   on the degree distribution; edge probability is ``1/in-degree``);
2. **self-similar worker movement** (Historical Acceptance fits a Pareto
   distribution to jump lengths — we generate jumps from a Pareto law, so the
   model's assumption holds by construction, as it empirically does for the
   real datasets per the paper's citations [25]-[27]);
3. **topical venue categories** (LDA models worker category documents as
   topic mixtures — we sample user preferences from a Dirichlet over
   latent topics aligned with the taxonomy's top-level groups).

``brightkite_like()`` and ``foursquare_like()`` provide presets whose
relative shapes (users vs. edges vs. check-in density) mirror BK and FS at
roughly 1/25 scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import networkx as nx
import numpy as np

from repro.data.categories import CATEGORY_TAXONOMY, group_names
from repro.data.dataset import CheckInDataset, Venue
from repro.entities import CheckIn
from repro.exceptions import ConfigurationError
from repro.geo import BoundingBox, Point


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic check-in world.

    Attributes
    ----------
    name:
        Dataset label (appears in reports).
    num_users:
        Number of users; each user is a potential worker.
    num_venues:
        Number of venues; each venue can spawn tasks.
    num_days:
        Number of simulated days of check-ins.
    area_km:
        Side of the square world in kilometres.
    num_clusters:
        Number of spatial venue clusters (city districts).
    cluster_std_km:
        Standard deviation of venue scatter around a cluster centre.
    ba_attachment:
        Barabási–Albert attachment parameter ``m`` (edges per new node);
        yields a power-law degree distribution like BK/FS friendships.
    mean_checkins_per_user_day:
        Poisson mean of a user's daily check-in count.
    active_probability:
        Probability a user checks in at all on a given day.
    pareto_shape:
        Shape of the Pareto jump-length distribution (self-similar movement).
    topic_concentration:
        Dirichlet concentration of per-user topic preferences; smaller means
        more sharply topical users (easier for LDA, like real data).
    categories_per_venue:
        Maximum number of leaf categories attached to a venue.
    seed:
        Seed of the generator; the whole dataset is a pure function of the
        config.
    """

    name: str = "synthetic"
    num_users: int = 800
    num_venues: int = 600
    num_days: int = 30
    area_km: float = 60.0
    num_clusters: int = 12
    cluster_std_km: float = 2.5
    ba_attachment: int = 3
    mean_checkins_per_user_day: float = 2.0
    active_probability: float = 0.55
    pareto_shape: float = 1.8
    topic_concentration: float = 0.25
    categories_per_venue: int = 3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_users < 2:
            raise ConfigurationError("num_users must be at least 2")
        if self.num_venues < 1:
            raise ConfigurationError("num_venues must be at least 1")
        if self.num_days < 1:
            raise ConfigurationError("num_days must be at least 1")
        if self.area_km <= 0:
            raise ConfigurationError("area_km must be positive")
        if not 0 < self.active_probability <= 1:
            raise ConfigurationError("active_probability must be in (0, 1]")
        if self.pareto_shape <= 0:
            raise ConfigurationError("pareto_shape must be positive")
        if self.ba_attachment < 1 or self.ba_attachment >= self.num_users:
            raise ConfigurationError("ba_attachment must be in [1, num_users)")

    def scaled(self, **overrides: object) -> "SyntheticConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def brightkite_like(seed: int = 7, scale: float = 1.0) -> SyntheticConfig:
    """A BK-shaped preset: more users than venues, sparser check-ins.

    Brightkite has 58k users / 214k edges (≈3.7 edges per user) and ≈77
    check-ins per user over 2.5 years.  We keep those ratios at laptop scale.
    """
    n_users = max(50, int(4200 * scale))
    return SyntheticConfig(
        name="BK-like",
        num_users=n_users,
        num_venues=max(30, int(3400 * scale)),
        num_days=30,
        area_km=80.0,
        num_clusters=16,
        ba_attachment=2,
        mean_checkins_per_user_day=2.0,
        active_probability=0.55,
        seed=seed,
    )


def foursquare_like(seed: int = 11, scale: float = 1.0) -> SyntheticConfig:
    """An FS-shaped preset: fewer users, denser social graph and check-ins.

    FourSquare has 11k users / 47k edges (≈4.2 edges per user) and ≈122
    check-ins per user over one year.
    """
    n_users = max(50, int(3600 * scale))
    return SyntheticConfig(
        name="FS-like",
        num_users=n_users,
        num_venues=max(30, int(2800 * scale)),
        num_days=30,
        area_km=60.0,
        num_clusters=10,
        ba_attachment=3,
        mean_checkins_per_user_day=2.4,
        active_probability=0.65,
        seed=seed,
    )


# --------------------------------------------------------------------------
# generation internals
# --------------------------------------------------------------------------

def _make_social_graph(config: SyntheticConfig, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Undirected power-law friendship edges via Barabási–Albert."""
    graph = nx.barabasi_albert_graph(
        config.num_users, config.ba_attachment, seed=int(rng.integers(0, 2**31 - 1))
    )
    return [(int(u), int(v)) for u, v in graph.edges()]


def _make_venues(config: SyntheticConfig, rng: np.random.Generator) -> tuple[dict[int, Venue], np.ndarray]:
    """Clustered venues with topic-correlated categories.

    Each spatial cluster leans towards one latent topic (= taxonomy group),
    mimicking real cities where districts specialise (nightlife quarter,
    office park, ...).  Returns the venues and the per-venue topic array.
    """
    groups = group_names()
    num_topics = len(groups)
    box = BoundingBox.square(config.area_km)
    margin = min(config.area_km * 0.1, 5.0)
    centers = rng.uniform(margin, config.area_km - margin, size=(config.num_clusters, 2))
    # Each cluster has a Dirichlet lean over topics, sharp enough to specialise.
    cluster_topic = rng.dirichlet([0.5] * num_topics, size=config.num_clusters)

    venues: dict[int, Venue] = {}
    venue_topics = np.empty(config.num_venues, dtype=int)
    for venue_id in range(config.num_venues):
        cluster = int(rng.integers(config.num_clusters))
        xy = rng.normal(centers[cluster], config.cluster_std_km)
        location = box.clamp(Point(float(xy[0]), float(xy[1])))
        topic = int(rng.choice(num_topics, p=cluster_topic[cluster]))
        leaves = CATEGORY_TAXONOMY[groups[topic]]
        n_cats = int(rng.integers(1, config.categories_per_venue + 1))
        cats = tuple(rng.choice(leaves, size=min(n_cats, len(leaves)), replace=False))
        venues[venue_id] = Venue(venue_id=venue_id, location=location, categories=cats)
        venue_topics[venue_id] = topic
    return venues, venue_topics


def _user_day_times(
    count: int, day: int, rng: np.random.Generator
) -> np.ndarray:
    """Sorted check-in hours within ``day`` with a diurnal bias.

    Check-ins concentrate between 08:00 and 23:00, drawn from a beta law so
    that mornings and evenings are busier than midday tails.
    """
    hours = 8.0 + 15.0 * rng.beta(2.0, 2.0, size=count)
    return np.sort(day * 24.0 + hours)


def generate_dataset(config: SyntheticConfig) -> CheckInDataset:
    """Generate a full synthetic check-in dataset from ``config``.

    The procedure per user and day:

    1. decide activity (Bernoulli ``active_probability``);
    2. draw a Poisson number of check-ins;
    3. choose each venue by a product of *topical preference* (user's
       Dirichlet topic mix vs. venue topic) and *distance decay* from the
       user's current position with Pareto-tailed jump lengths;
    4. move the user to the chosen venue.
    """
    rng = np.random.default_rng(config.seed)
    social_edges = _make_social_graph(config, rng)
    venues, venue_topics = _make_venues(config, rng)
    groups = group_names()
    num_topics = len(groups)

    venue_xy = np.array([(venues[v].location.x, venues[v].location.y) for v in range(config.num_venues)])

    # Per-user topical preference over taxonomy groups.
    user_pref = rng.dirichlet([config.topic_concentration] * num_topics, size=config.num_users)
    # Topical affinity of every user for every venue: pref[user, topic_of_venue].
    user_venue_topical = user_pref[:, venue_topics] + 1e-6  # (num_users, num_venues)

    # Distance-decay kernel between every venue pair, precomputed once:
    # the Pareto-tailed density (d + 1)^-(shape + 1) that HA assumes.
    delta = venue_xy[:, None, :] - venue_xy[None, :, :]
    venue_decay = (np.sqrt((delta**2).sum(axis=2)) + 1.0) ** (-(config.pareto_shape + 1.0))

    # Start each user at a random venue (their "home").
    current_venue = rng.integers(config.num_venues, size=config.num_users)

    checkins: list[CheckIn] = []
    for day in range(config.num_days):
        active = rng.random(config.num_users) < config.active_probability
        counts = rng.poisson(config.mean_checkins_per_user_day, size=config.num_users)
        for user_id in np.nonzero(active & (counts > 0))[0]:
            user_id = int(user_id)
            times = _user_day_times(int(counts[user_id]), day, rng)
            topical = user_venue_topical[user_id]
            for time in times:
                weights = venue_decay[current_venue[user_id]] * topical
                cumulative = np.cumsum(weights)
                total = float(cumulative[-1])
                if total <= 0 or not math.isfinite(total):
                    venue_id = int(rng.integers(config.num_venues))
                else:
                    venue_id = int(
                        np.searchsorted(cumulative, rng.random() * total, side="right")
                    )
                    venue_id = min(venue_id, config.num_venues - 1)
                venue = venues[venue_id]
                checkins.append(
                    CheckIn(
                        user_id=user_id,
                        venue_id=venue_id,
                        location=venue.location,
                        time=float(time),
                        categories=venue.categories,
                    )
                )
                current_venue[user_id] = venue_id

    return CheckInDataset.build(
        name=config.name,
        venues=venues.values(),
        checkins=checkins,
        social_edges=social_edges,
        user_ids=range(config.num_users),
    )
