"""Build per-day spatial-crowdsourcing instances from a check-in dataset.

This mirrors the paper's experimental setup (Section V-A):

* time granularity is one day; workers/tasks of that day enter the framework;
* every user who checks in on the day is an available worker, located at
  their most recent check-in;
* every venue checked into on the day spawns a task at the venue location,
  published at the venue's earliest check-in of the day, carrying the venue
  categories;
* check-ins from *before* the day form the historical task-performing
  records ``S_w`` used by the affinity, willingness and entropy models;
* parameter sweeps (|S|, |W|) sample tasks/workers uniformly at random,
  exactly like the paper's "random selection from the original dataset".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import CheckInDataset
from repro.entities import PerformedTask, Task, TaskHistory, Worker
from repro.exceptions import DataError
from repro.geo import Point


@dataclass
class SCInstance:
    """One time instance of the ITA problem.

    Attributes
    ----------
    name:
        Label, usually ``"<dataset>@day<d>"``.
    current_time:
        The assignment time ``t`` in hours since the dataset epoch.
    tasks / workers:
        The available tasks ``S`` and workers ``W`` at ``t``.
    histories:
        ``worker_id -> TaskHistory`` for *all* dataset users (the influence
        model sums willingness over every worker in the social network, not
        just the available ones).
    social_edges:
        Undirected friendship edges over user ids.
    all_worker_ids:
        Every user id in the social network.
    venue_visits:
        ``venue_id -> {user_id: visit count}`` over history, for location
        entropy.
    """

    name: str
    current_time: float
    tasks: list[Task]
    workers: list[Worker]
    histories: dict[int, TaskHistory]
    social_edges: list[tuple[int, int]]
    all_worker_ids: tuple[int, ...]
    venue_visits: dict[int, dict[int, int]] = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        """|S| at this instance."""
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        """|W| available at this instance."""
        return len(self.workers)

    def history_of(self, worker_id: int) -> TaskHistory:
        """Return the worker's history (empty history if unseen)."""
        history = self.histories.get(worker_id)
        if history is None:
            history = TaskHistory(worker_id=worker_id, performed=[])
            self.histories[worker_id] = history
        return history

    def with_tasks(self, tasks: list[Task]) -> "SCInstance":
        """Return a shallow copy with a different task list (for sweeps)."""
        return SCInstance(
            name=self.name,
            current_time=self.current_time,
            tasks=tasks,
            workers=self.workers,
            histories=self.histories,
            social_edges=self.social_edges,
            all_worker_ids=self.all_worker_ids,
            venue_visits=self.venue_visits,
        )

    def with_workers(self, workers: list[Worker]) -> "SCInstance":
        """Return a shallow copy with a different worker list (for sweeps)."""
        return SCInstance(
            name=self.name,
            current_time=self.current_time,
            tasks=self.tasks,
            workers=workers,
            histories=self.histories,
            social_edges=self.social_edges,
            all_worker_ids=self.all_worker_ids,
            venue_visits=self.venue_visits,
        )


class InstanceBuilder:
    """Derives :class:`SCInstance` objects from a :class:`CheckInDataset`.

    Parameters
    ----------
    dataset:
        The source check-in dataset.
    valid_hours:
        Task validity ``phi`` (paper default 5 h).
    reachable_km:
        Worker reachable radius ``r`` (paper default 25 km).
    speed_kmh:
        Common worker speed (paper default 5 km/h).
    """

    def __init__(
        self,
        dataset: CheckInDataset,
        valid_hours: float = 5.0,
        reachable_km: float = 25.0,
        speed_kmh: float = 5.0,
    ) -> None:
        if valid_hours < 0:
            raise DataError(f"valid_hours must be non-negative, got {valid_hours}")
        if reachable_km < 0:
            raise DataError(f"reachable_km must be non-negative, got {reachable_km}")
        self.dataset = dataset
        self.valid_hours = valid_hours
        self.reachable_km = reachable_km
        self.speed_kmh = speed_kmh
        # Searchsorted day index (built lazily, once): per-user and per-venue
        # chronological arrays so that each build_day answers "everything
        # strictly before cutoff" with one binary search per user/venue
        # instead of re-scanning the full check-in list.
        self._user_times: dict[int, np.ndarray] | None = None
        self._user_performed: dict[int, list[PerformedTask]] = {}
        self._venue_times: dict[int, np.ndarray] = {}
        self._venue_visitors: dict[int, np.ndarray] = {}

    # -------------------------------------------------------------- internals
    def _ensure_day_index(self) -> None:
        """Build the per-user/per-venue chronological index (idempotent)."""
        if self._user_times is not None:
            return
        per_user_times: dict[int, list[float]] = {}
        per_venue_times: dict[int, list[float]] = {}
        per_venue_users: dict[int, list[int]] = {}
        for checkin in self.dataset.checkins:  # time-sorted by contract
            per_user_times.setdefault(checkin.user_id, []).append(checkin.time)
            self._user_performed.setdefault(checkin.user_id, []).append(
                PerformedTask(
                    location=checkin.location,
                    arrival_time=checkin.time,
                    completion_time=checkin.time,
                    categories=checkin.categories,
                    venue_id=checkin.venue_id,
                )
            )
            per_venue_times.setdefault(checkin.venue_id, []).append(checkin.time)
            per_venue_users.setdefault(checkin.venue_id, []).append(checkin.user_id)
        self._user_times = {
            user_id: np.asarray(times) for user_id, times in per_user_times.items()
        }
        self._venue_times = {
            venue_id: np.asarray(times) for venue_id, times in per_venue_times.items()
        }
        self._venue_visitors = {
            venue_id: np.asarray(users, dtype=np.int64)
            for venue_id, users in per_venue_users.items()
        }

    def _histories_before(self, cutoff_hours: float) -> dict[int, TaskHistory]:
        """Task-performing records from check-ins strictly before ``cutoff``.

        One ``searchsorted`` per user against their chronological check-in
        times; the shared :class:`~repro.entities.PerformedTask` objects are
        frozen, so the per-cutoff histories can alias prefixes of one
        immutable timeline.
        """
        self._ensure_day_index()
        assert self._user_times is not None
        histories: dict[int, TaskHistory] = {}
        for user_id in self.dataset.user_ids:
            times = self._user_times.get(user_id)
            if times is None:
                performed: list[PerformedTask] = []
            else:
                prefix = int(np.searchsorted(times, cutoff_hours, side="left"))
                performed = self._user_performed[user_id][:prefix]
            histories[user_id] = TaskHistory(worker_id=user_id, performed=performed)
        return histories

    def _venue_visits_before(self, cutoff_hours: float) -> dict[int, dict[int, int]]:
        """Historical per-venue visit counts for location entropy.

        Per venue: binary-search the cutoff, then one ``np.unique`` over the
        visitor prefix — no pass over the raw check-in list.
        """
        self._ensure_day_index()
        visits: dict[int, dict[int, int]] = {}
        for venue_id, times in self._venue_times.items():
            prefix = int(np.searchsorted(times, cutoff_hours, side="left"))
            if not prefix:
                continue
            users, counts = np.unique(self._venue_visitors[venue_id][:prefix],
                                      return_counts=True)
            visits[venue_id] = {
                int(user): int(count) for user, count in zip(users, counts)
            }
        return visits

    # ----------------------------------------------------------------- public
    def worker_location_at(self, user_id: int, time_hours: float) -> Point | None:
        """Where the builder locates a worker at ``time_hours``: their most
        recent check-in strictly before that time, or ``None`` if the user
        has no earlier history.

        This is the same rule :meth:`build_day` applies when placing the
        day's workers, exposed so other schedulers (e.g. the online
        batched-arrival loop and the streaming runtime) locate workers
        consistently.
        """
        self._ensure_day_index()
        assert self._user_times is not None
        times = self._user_times.get(user_id)
        if times is None:
            return None
        prefix = int(np.searchsorted(times, time_hours, side="left"))
        if prefix == 0:
            return None
        return self._user_performed[user_id][prefix - 1].location

    def build_day(
        self,
        day: int,
        num_tasks: int | None = None,
        num_workers: int | None = None,
        valid_hours: float | None = None,
        reachable_km: float | None = None,
        assignment_hour: float | None = None,
        seed: int = 0,
    ) -> SCInstance:
        """Build the instance for a zero-based ``day``.

        ``num_tasks`` / ``num_workers`` sample the day's population uniformly
        at random (capped at availability), replicating the paper's sweep
        construction.  ``valid_hours`` / ``reachable_km`` override the
        builder defaults for ϕ and r sweeps.

        ``assignment_hour`` sets the assignment instant ``t`` as an offset
        into the day.  The default (``None`` = hour 0) evaluates at the day
        start, where deadlines ``s.p + s.ϕ`` almost never bind; a late
        instant (e.g. 24.0 = day end) makes ϕ control the availability
        window — a task stays assignable only if it was published within the
        last ϕ hours — reproducing the paper's observation that the number
        of available tasks grows with ϕ.
        """
        day_checkins = self.dataset.checkins_on_day(day)
        if not day_checkins:
            raise DataError(f"day {day} has no check-ins in {self.dataset.name!r}")
        phi = self.valid_hours if valid_hours is None else valid_hours
        radius = self.reachable_km if reachable_km is None else reachable_km
        day_start = 24.0 * day
        rng = np.random.default_rng(seed)

        # Tasks: one per venue checked into today, published at the venue's
        # earliest check-in of the day.
        earliest: dict[int, float] = {}
        for checkin in day_checkins:
            prev = earliest.get(checkin.venue_id)
            if prev is None or checkin.time < prev:
                earliest[checkin.venue_id] = checkin.time
        tasks = [
            Task(
                task_id=venue_id,
                location=self.dataset.venues[venue_id].location,
                publication_time=publication,
                valid_hours=phi,
                categories=self.dataset.venues[venue_id].categories,
                venue_id=venue_id,
            )
            for venue_id, publication in sorted(earliest.items())
        ]

        # Workers: users active today, located at their most recent check-in
        # (the day's first check-in if they have no earlier history).
        active_users = sorted({c.user_id for c in day_checkins})
        first_today: dict[int, Point] = {}
        for checkin in day_checkins:
            first_today.setdefault(checkin.user_id, checkin.location)
        workers = []
        for user_id in active_users:
            location = self.worker_location_at(user_id, day_start) or first_today[user_id]
            workers.append(
                Worker(
                    worker_id=user_id,
                    location=location,
                    reachable_km=radius,
                    speed_kmh=self.speed_kmh,
                )
            )

        if num_tasks is not None and num_tasks < len(tasks):
            idx = rng.choice(len(tasks), size=num_tasks, replace=False)
            tasks = [tasks[i] for i in sorted(idx)]
        if num_workers is not None and num_workers < len(workers):
            idx = rng.choice(len(workers), size=num_workers, replace=False)
            workers = [workers[i] for i in sorted(idx)]

        current_time = day_start if assignment_hour is None else day_start + assignment_hour
        return SCInstance(
            name=f"{self.dataset.name}@day{day}",
            current_time=current_time,
            tasks=tasks,
            workers=workers,
            histories=self._histories_before(day_start),
            social_edges=list(self.dataset.social_edges),
            all_worker_ids=tuple(self.dataset.user_ids),
            venue_visits=self._venue_visits_before(day_start),
        )

    def richest_days(self, count: int = 4, min_day: int = 1) -> list[int]:
        """Return the ``count`` days with the most check-ins (skipping the
        history-less day 0 by default) — the paper runs over 4 days of a
        month and averages."""
        candidates = [d for d in self.dataset.active_days() if d >= min_day]
        candidates.sort(key=lambda d: len(self.dataset.checkins_on_day(d)), reverse=True)
        return sorted(candidates[:count])
