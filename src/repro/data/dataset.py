"""The check-in dataset container shared by synthetic and real data."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.entities import CheckIn
from repro.exceptions import DataError
from repro.geo import BoundingBox, Point


@dataclass(frozen=True, slots=True)
class Venue:
    """A physical venue with a location and category labels."""

    venue_id: int
    location: Point
    categories: tuple[str, ...]


@dataclass
class CheckInDataset:
    """A check-in dataset: users, venues, check-ins, and a social network.

    This is the common substrate corresponding to the paper's BK and FS
    datasets.  Check-ins are kept sorted by time; several derived indices are
    computed lazily and cached.
    """

    name: str
    venues: dict[int, Venue]
    checkins: list[CheckIn]
    social_edges: list[tuple[int, int]]
    user_ids: tuple[int, ...]
    _by_user: dict[int, list[CheckIn]] = field(default_factory=dict, repr=False)
    _by_day: dict[int, list[CheckIn]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.checkins:
            raise DataError(f"dataset {self.name!r} has no check-ins")
        if not self.user_ids:
            raise DataError(f"dataset {self.name!r} has no users")
        self.checkins = sorted(self.checkins, key=lambda c: c.time)
        users = set(self.user_ids)
        for u, v in self.social_edges:
            if u not in users or v not in users:
                raise DataError(f"social edge ({u}, {v}) references unknown user")
        for checkin in self.checkins:
            if checkin.user_id not in users:
                raise DataError(f"check-in references unknown user {checkin.user_id}")
            if checkin.venue_id not in self.venues:
                raise DataError(f"check-in references unknown venue {checkin.venue_id}")

    # ------------------------------------------------------------------ stats
    @property
    def num_users(self) -> int:
        """Number of users (potential workers)."""
        return len(self.user_ids)

    @property
    def num_venues(self) -> int:
        """Number of venues."""
        return len(self.venues)

    @property
    def num_checkins(self) -> int:
        """Number of check-in events."""
        return len(self.checkins)

    @property
    def num_days(self) -> int:
        """Number of days spanned (last check-in's day + 1)."""
        return self.checkins[-1].day + 1 if self.checkins else 0

    def bounding_box(self) -> BoundingBox:
        """The minimal box containing every venue."""
        return BoundingBox.around(v.location for v in self.venues.values())

    # ---------------------------------------------------------------- indices
    def checkins_by_user(self, user_id: int) -> list[CheckIn]:
        """Return the user's check-ins, chronologically (cached)."""
        if not self._by_user:
            for checkin in self.checkins:
                self._by_user.setdefault(checkin.user_id, []).append(checkin)
        return self._by_user.get(user_id, [])

    def checkins_on_day(self, day: int) -> list[CheckIn]:
        """Return all check-ins on the zero-based ``day`` (cached)."""
        if not self._by_day:
            for checkin in self.checkins:
                self._by_day.setdefault(checkin.day, []).append(checkin)
        return self._by_day.get(day, [])

    def active_days(self) -> list[int]:
        """Days that have at least one check-in, ascending."""
        if not self._by_day:
            self.checkins_on_day(0)  # force index build
        return sorted(self._by_day)

    def describe(self) -> str:
        """A short human-readable summary string."""
        return (
            f"{self.name}: {self.num_users} users, {len(self.social_edges)} social "
            f"edges, {self.num_venues} venues, {self.num_checkins} check-ins over "
            f"{self.num_days} days"
        )

    @staticmethod
    def build(
        name: str,
        venues: Iterable[Venue],
        checkins: Iterable[CheckIn],
        social_edges: Iterable[tuple[int, int]],
        user_ids: Iterable[int] | None = None,
    ) -> "CheckInDataset":
        """Convenience constructor that infers ``user_ids`` when omitted."""
        checkin_list = list(checkins)
        users: tuple[int, ...]
        if user_ids is None:
            users = tuple(sorted({c.user_id for c in checkin_list}))
        else:
            users = tuple(sorted(set(user_ids)))
        return CheckInDataset(
            name=name,
            venues={v.venue_id: v for v in venues},
            checkins=checkin_list,
            social_edges=list(social_edges),
            user_ids=users,
        )
