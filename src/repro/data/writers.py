"""Write a :class:`~repro.data.CheckInDataset` back to SNAP-format files.

The inverse of :mod:`repro.data.loaders`: planar kilometre coordinates are
unprojected to synthetic latitude/longitude around (0, 0) with the same
equirectangular mapping the loader applies, and check-in hours become ISO
timestamps from a fixed epoch.  ``save`` followed by
:func:`~repro.data.loaders.load_dataset_from_snap` round-trips the dataset
up to a global shift: the loader re-centres coordinates on the centroid and
re-bases time at the earliest record, so pairwise distances, populations and
the social graph are preserved exactly (tested) while absolute positions
and day boundaries may translate.

This lets the CLI's ``generate-data`` command materialize synthetic worlds
as ordinary files that any SNAP-compatible tooling — including this library
itself — can consume.
"""

from __future__ import annotations

import math
from datetime import datetime, timedelta, timezone
from pathlib import Path

from repro.data.dataset import CheckInDataset
from repro.geo.distance import EARTH_RADIUS_KM

#: Epoch used for synthetic timestamps (matches the BK collection period).
SNAP_EPOCH = datetime(2010, 1, 1, tzinfo=timezone.utc)


def _unproject(x_km: float, y_km: float) -> tuple[float, float]:
    """Planar km -> (lat, lon) via the inverse equirectangular map at (0, 0)."""
    lat = math.degrees(y_km / EARTH_RADIUS_KM)
    lon = math.degrees(x_km / EARTH_RADIUS_KM)  # cos(0 deg) = 1
    return lat, lon


def _iso_time(hours: float) -> str:
    moment = SNAP_EPOCH + timedelta(hours=hours)
    return moment.strftime("%Y-%m-%dT%H:%M:%SZ")


def save_dataset_to_snap(dataset: CheckInDataset, directory: str | Path) -> dict[str, Path]:
    """Write ``edges.txt``, ``checkins.txt`` and ``categories.txt``.

    Returns the mapping ``{"edges": ..., "checkins": ..., "categories": ...}``
    of written paths.  Venue ids become string keys ``v<id>``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "edges": directory / "edges.txt",
        "checkins": directory / "checkins.txt",
        "categories": directory / "categories.txt",
    }

    with open(paths["edges"], "w", encoding="utf-8") as handle:
        handle.write(f"# social edges of {dataset.name}\n")
        for u, v in dataset.social_edges:
            handle.write(f"{u}\t{v}\n")

    with open(paths["checkins"], "w", encoding="utf-8") as handle:
        handle.write("# user\ttime\tlat\tlon\tvenue\n")
        for checkin in dataset.checkins:
            lat, lon = _unproject(checkin.location.x, checkin.location.y)
            handle.write(
                f"{checkin.user_id}\t{_iso_time(checkin.time)}"
                f"\t{lat:.10f}\t{lon:.10f}\tv{checkin.venue_id}\n"
            )

    with open(paths["categories"], "w", encoding="utf-8") as handle:
        handle.write("# venue\tcategories\n")
        for venue_id in sorted(dataset.venues):
            venue = dataset.venues[venue_id]
            if venue.categories:
                handle.write(f"v{venue_id}\t{','.join(venue.categories)}\n")

    return paths
