"""Loaders for the real SNAP-format Brightkite/FourSquare dumps.

These let the identical pipeline run on the paper's genuine datasets when
they are available on disk.  Formats supported:

* **edges file** — one undirected edge per line: ``user_a<TAB>user_b``;
* **check-ins file** — ``user<TAB>iso_time<TAB>lat<TAB>lon<TAB>venue_id`` per
  line (the SNAP ``loc-brightkite_totalCheckins.txt`` layout);
* optional **categories file** — ``venue_id<TAB>cat1,cat2,...`` per line
  (the paper obtained these through the FourSquare API).

Latitude/longitude pairs are projected to a local planar kilometre frame
with an equirectangular projection around the dataset centroid, which is
accurate at city scale and keeps the rest of the library purely Euclidean.
"""

from __future__ import annotations

import math
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping

from repro.data.dataset import CheckInDataset, Venue
from repro.entities import CheckIn
from repro.exceptions import DataError
from repro.geo.distance import EARTH_RADIUS_KM


def load_snap_edges(path: str | Path) -> list[tuple[int, int]]:
    """Parse a SNAP edge list (``user_a<TAB>user_b`` per line).

    Blank lines and ``#`` comments are skipped; malformed lines raise
    :class:`DataError` with the offending line number.
    """
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise DataError(f"{path}:{lineno}: expected two fields, got {len(parts)}")
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: non-integer user id") from exc
    return edges


def _parse_time_hours(token: str, epoch: datetime | None) -> tuple[float, datetime]:
    """Parse an ISO timestamp into hours since ``epoch`` (establishing the
    epoch from the first record when ``epoch`` is None)."""
    token = token.replace("Z", "+00:00")
    moment = datetime.fromisoformat(token)
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    if epoch is None:
        epoch = moment.replace(hour=0, minute=0, second=0, microsecond=0)
    delta = moment - epoch
    return delta.total_seconds() / 3600.0, epoch


def load_snap_checkins(
    path: str | Path,
    categories: Mapping[str, tuple[str, ...]] | None = None,
) -> tuple[list[CheckIn], dict[int, Venue], dict[str, int]]:
    """Parse a SNAP check-ins file.

    Returns ``(checkins, venues, venue_key_to_id)``.  Venue string keys are
    mapped to dense integer ids; lat/lon coordinates are projected to planar
    kilometres around the dataset centroid.  ``categories`` optionally maps
    the *original* venue key to its category labels.
    """
    rows: list[tuple[int, float, float, float, str]] = []
    epoch: datetime | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) < 5:
                raise DataError(f"{path}:{lineno}: expected 5 fields, got {len(parts)}")
            try:
                user_id = int(parts[0])
                hours, epoch = _parse_time_hours(parts[1], epoch)
                lat, lon = float(parts[2]), float(parts[3])
            except ValueError as exc:
                raise DataError(f"{path}:{lineno}: malformed record") from exc
            rows.append((user_id, hours, lat, lon, parts[4]))

    if not rows:
        raise DataError(f"{path}: no check-in records")

    mean_lat = sum(r[2] for r in rows) / len(rows)
    mean_lon = sum(r[3] for r in rows) / len(rows)
    cos_lat = math.cos(math.radians(mean_lat))

    def project(lat: float, lon: float) -> tuple[float, float]:
        x = math.radians(lon - mean_lon) * EARTH_RADIUS_KM * cos_lat
        y = math.radians(lat - mean_lat) * EARTH_RADIUS_KM
        return x, y

    venue_key_to_id: dict[str, int] = {}
    venues: dict[int, Venue] = {}
    checkins: list[CheckIn] = []
    min_hours = min(r[1] for r in rows)
    from repro.geo import Point  # local import to avoid cycle at module load

    for user_id, hours, lat, lon, venue_key in rows:
        if venue_key not in venue_key_to_id:
            venue_id = len(venue_key_to_id)
            venue_key_to_id[venue_key] = venue_id
            x, y = project(lat, lon)
            cats = tuple(categories.get(venue_key, ())) if categories else ()
            venues[venue_id] = Venue(venue_id=venue_id, location=Point(x, y), categories=cats)
        venue_id = venue_key_to_id[venue_key]
        checkins.append(
            CheckIn(
                user_id=user_id,
                venue_id=venue_id,
                location=venues[venue_id].location,
                time=hours - min_hours,
                categories=venues[venue_id].categories,
            )
        )
    return checkins, venues, venue_key_to_id


def load_venue_categories(path: str | Path) -> dict[str, tuple[str, ...]]:
    """Parse a ``venue_key<TAB>cat1,cat2,...`` categories file."""
    mapping: dict[str, tuple[str, ...]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise DataError(f"{path}:{lineno}: expected two tab-separated fields")
            mapping[parts[0]] = tuple(c.strip() for c in parts[1].split(",") if c.strip())
    return mapping


def load_dataset_from_snap(
    name: str,
    edges_path: str | Path,
    checkins_path: str | Path,
    categories_path: str | Path | None = None,
) -> CheckInDataset:
    """Assemble a :class:`CheckInDataset` from SNAP-format files.

    Social edges referencing users with no check-ins are dropped (the SNAP
    dumps contain users who never checked in; they cannot act as workers).
    """
    categories = load_venue_categories(categories_path) if categories_path else None
    checkins, venues, _ = load_snap_checkins(checkins_path, categories)
    users = {c.user_id for c in checkins}
    edges = [(u, v) for u, v in load_snap_edges(edges_path) if u in users and v in users]
    return CheckInDataset.build(
        name=name,
        venues=venues.values(),
        checkins=checkins,
        social_edges=edges,
        user_ids=users,
    )
