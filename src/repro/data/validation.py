"""Dataset validation: verify the statistical claims DESIGN.md §2 makes.

The synthetic worlds stand in for Brightkite/FourSquare on the argument
that they preserve the statistics the algorithms consume.  This module
turns that argument into checks a pipeline can run on *any* dataset
(synthetic or loaded from SNAP files):

* **structural integrity** — referencing consistency, time-sortedness,
  self-loop-free social edges;
* **degree heavy-tail** — the social graph should be heavy-tailed
  (max degree far above the mean; a large share of degree mass in the top
  decile), as IC propagation behaviour depends on it;
* **movement self-similarity** — per-user jump lengths should be closer in
  log-likelihood to a Pareto fit than to an exponential fit (the HA
  assumption);
* **category concentration** — per-user category documents should be
  concentrated (low normalized entropy) rather than uniform, or LDA topics
  carry no signal.

Each check returns a :class:`CheckResult`; :func:`validate_dataset` bundles
them into a report.  Checks are diagnostics, not gates — they report
measurements along with the pass verdict.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import CheckInDataset


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check."""

    name: str
    passed: bool
    measurements: dict[str, float] = field(default_factory=dict)
    detail: str = ""

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        numbers = ", ".join(f"{k}={v:.4g}" for k, v in self.measurements.items())
        return f"[{verdict}] {self.name}: {numbers} {self.detail}".rstrip()


@dataclass(frozen=True)
class ValidationReport:
    """All check results for one dataset."""

    dataset: str
    checks: tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(check.passed for check in self.checks)

    def __str__(self) -> str:
        lines = [f"validation of {self.dataset}:"]
        lines.extend(f"  {check}" for check in self.checks)
        return "\n".join(lines)


def check_integrity(dataset: CheckInDataset) -> CheckResult:
    """Referential and ordering invariants (cheap, exact)."""
    users = set(dataset.user_ids)
    problems = []
    times = [c.time for c in dataset.checkins]
    if times != sorted(times):
        problems.append("check-ins not time-sorted")
    if any(u == v for u, v in dataset.social_edges):
        problems.append("self-loop in social edges")
    if any(c.user_id not in users for c in dataset.checkins):
        problems.append("check-in references unknown user")
    if any(c.venue_id not in dataset.venues for c in dataset.checkins):
        problems.append("check-in references unknown venue")
    return CheckResult(
        name="integrity",
        passed=not problems,
        measurements={
            "users": float(dataset.num_users),
            "venues": float(dataset.num_venues),
            "checkins": float(dataset.num_checkins),
        },
        detail="; ".join(problems),
    )


def check_degree_heavy_tail(
    dataset: CheckInDataset, min_ratio: float = 3.0, min_top_decile_share: float = 0.25
) -> CheckResult:
    """The friendship graph should be heavy-tailed, not Erdős–Rényi-flat.

    Passes when the max degree is at least ``min_ratio`` times the mean and
    the top decile of users holds at least ``min_top_decile_share`` of all
    degree mass.
    """
    degree: Counter[int] = Counter()
    for u, v in dataset.social_edges:
        degree[u] += 1
        degree[v] += 1
    if not degree:
        return CheckResult("degree-heavy-tail", False, detail="no social edges")
    values = np.sort(np.fromiter(degree.values(), dtype=float))[::-1]
    mean = float(values.mean())
    ratio = float(values[0]) / max(mean, 1e-12)
    top = max(1, len(values) // 10)
    share = float(values[:top].sum() / values.sum())
    return CheckResult(
        name="degree-heavy-tail",
        passed=ratio >= min_ratio and share >= min_top_decile_share,
        measurements={
            "max_over_mean": ratio,
            "top_decile_share": share,
            "max_degree": float(values[0]),
        },
    )


def _jump_lengths(dataset: CheckInDataset, min_history: int = 3) -> list[np.ndarray]:
    """Per-user consecutive check-in distances (users with enough history)."""
    jumps = []
    for user_id in dataset.user_ids:
        checkins = dataset.checkins_by_user(user_id)
        if len(checkins) < min_history:
            continue
        locations = [c.location for c in checkins]
        jumps.append(
            np.array(
                [a.distance_to(b) for a, b in zip(locations, locations[1:])]
            )
        )
    return jumps


def check_movement_self_similarity(
    dataset: CheckInDataset, min_pareto_win_rate: float = 0.5
) -> CheckResult:
    """Pareto should beat exponential on per-user jump log-likelihood.

    This is HA's modeling assumption (paper §III-B): self-similar movement.
    For each user with history, fit both families by MLE on the shifted
    jumps ``x = d + 1`` and compare mean log-likelihoods; the check passes
    when Pareto wins for at least ``min_pareto_win_rate`` of users.
    """
    wins, total = 0, 0
    for jumps in _jump_lengths(dataset):
        x = jumps + 1.0
        log_x = np.log(x)
        if log_x.sum() <= 0:
            continue  # degenerate user who never moved
        total += 1
        # Pareto(omega=1): shape = n / sum(ln x); ll = n ln(shape) - (shape+1) sum(ln x)
        shape = len(x) / log_x.sum()
        ll_pareto = len(x) * math.log(shape) - (shape + 1.0) * log_x.sum()
        # Exponential on d: rate = 1/mean; ll = n ln(rate) - rate * sum(d)
        mean = float(jumps.mean())
        if mean <= 0:
            continue
        rate = 1.0 / mean
        ll_exponential = len(jumps) * math.log(rate) - rate * float(jumps.sum())
        if ll_pareto > ll_exponential:
            wins += 1
    if total == 0:
        return CheckResult(
            "movement-self-similarity", False, detail="no users with mobile history"
        )
    rate = wins / total
    return CheckResult(
        name="movement-self-similarity",
        passed=rate >= min_pareto_win_rate,
        measurements={"pareto_win_rate": rate, "users_tested": float(total)},
    )


def check_category_concentration(
    dataset: CheckInDataset, max_mean_normalized_entropy: float = 0.9
) -> CheckResult:
    """Per-user category documents should be concentrated, not uniform.

    Normalized entropy of a user's category counts lies in [0, 1]; 1 means
    perfectly uniform interest (LDA learns nothing).  Passes when the mean
    over users with >= 2 distinct categories stays below the threshold.
    """
    entropies = []
    for user_id in dataset.user_ids:
        counts = Counter(
            category
            for checkin in dataset.checkins_by_user(user_id)
            for category in checkin.categories
        )
        if len(counts) < 2:
            continue
        total = sum(counts.values())
        probabilities = np.array([c / total for c in counts.values()])
        entropy = float(-(probabilities * np.log(probabilities)).sum())
        entropies.append(entropy / math.log(len(counts)))
    if not entropies:
        return CheckResult(
            "category-concentration", False, detail="no users with >= 2 categories"
        )
    mean_entropy = float(np.mean(entropies))
    return CheckResult(
        name="category-concentration",
        passed=mean_entropy <= max_mean_normalized_entropy,
        measurements={
            "mean_normalized_entropy": mean_entropy,
            "users_tested": float(len(entropies)),
        },
    )


def validate_dataset(dataset: CheckInDataset) -> ValidationReport:
    """Run every check and bundle the results."""
    return ValidationReport(
        dataset=dataset.name,
        checks=(
            check_integrity(dataset),
            check_degree_heavy_tail(dataset),
            check_movement_self_similarity(dataset),
            check_category_concentration(dataset),
        ),
    )
