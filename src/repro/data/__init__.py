"""Dataset substrate: taxonomies, synthetic generators, loaders, instances.

The paper evaluates on the Brightkite (BK) and FourSquare (FS) check-in
datasets.  Those dumps are unavailable offline, so this package provides

* :mod:`repro.data.categories` — a FourSquare-style category taxonomy;
* :mod:`repro.data.synthetic` — statistically faithful synthetic generators
  (power-law social graph, self-similar mobility, topical venue categories);
* :mod:`repro.data.loaders` — parsers for the real SNAP-format dumps so the
  pipeline runs unchanged on genuine data when present;
* :mod:`repro.data.instance` — the per-day spatial-crowdsourcing instance
  builder used by every experiment.
"""

from repro.data.dataset import CheckInDataset, Venue
from repro.data.categories import CATEGORY_TAXONOMY, all_categories, category_group
from repro.data.synthetic import (
    SyntheticConfig,
    generate_dataset,
    brightkite_like,
    foursquare_like,
)
from repro.data.instance import SCInstance, InstanceBuilder
from repro.data.loaders import load_snap_edges, load_snap_checkins, load_dataset_from_snap
from repro.data.writers import save_dataset_to_snap
from repro.data.validation import CheckResult, ValidationReport, validate_dataset

__all__ = [
    "CheckInDataset",
    "Venue",
    "CATEGORY_TAXONOMY",
    "all_categories",
    "category_group",
    "SyntheticConfig",
    "generate_dataset",
    "brightkite_like",
    "foursquare_like",
    "SCInstance",
    "InstanceBuilder",
    "load_snap_edges",
    "load_snap_checkins",
    "load_dataset_from_snap",
    "save_dataset_to_snap",
    "CheckResult",
    "ValidationReport",
    "validate_dataset",
]
