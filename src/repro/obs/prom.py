"""Prometheus text exposition for a :class:`~repro.obs.registry.MetricsRegistry`.

Two layers:

* :func:`render_prometheus` — the registry's families in the Prometheus
  text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` comment
  pairs followed by one sample line per series.  Histogram families expand
  into the conventional ``_bucket{le=...}`` cumulative series (bucket upper
  edges from the :class:`~repro.obs.histo.LogHistogram` configuration, a
  final ``le="+Inf"``), plus ``_sum`` and ``_count``.
* :class:`MetricsServer` — a stdlib :class:`~http.server.ThreadingHTTPServer`
  on a daemon thread serving ``GET /metrics``; no third-party dependency.
  Port 0 binds an ephemeral port (reported via ``.port``), which is what
  the tests and the CI smoke job use.

:func:`validate_exposition` is the format contract the CI smoke job runs
over a live scrape: comment lines well-formed, sample lines matching the
exposition grammar, every histogram family closed with a ``+Inf`` bucket
and consistent ``_sum``/``_count`` series.
"""

from __future__ import annotations

import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable

from repro.exceptions import DataError
from repro.obs.histo import LogHistogram
from repro.obs.registry import MetricsRegistry

__all__ = [
    "MetricsServer",
    "render_prometheus",
    "validate_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?: [-+]?[0-9]+)?$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _labels_text(names: Iterable[str], values: Iterable[str]) -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


def _histogram_lines(
    name: str, labelnames: tuple[str, ...], key: tuple[str, ...],
    histogram: LogHistogram,
) -> list[str]:
    lines = []
    cumulative = 0
    log_min = math.log10(histogram.min_value)
    edges = [histogram.min_value] + [
        10.0 ** (log_min + bucket / histogram.buckets_per_decade)
        for bucket in range(1, histogram.counts.size - 1)
    ]
    for bucket, edge in enumerate(edges):
        count = int(histogram.counts[bucket])
        cumulative += count
        # Empty interior buckets are elided (cumulative series allow it);
        # the first and last finite edges always render, so the bucket
        # grid's bounds stay visible even on an empty histogram.
        if count == 0 and 0 < bucket < len(edges) - 1:
            continue
        labels = _labels_text(
            [*labelnames, "le"], [*key, _format_value(edge)]
        )
        lines.append(f"{name}_bucket{labels} {cumulative}")
    cumulative += int(histogram.counts[-1])
    labels = _labels_text([*labelnames, "le"], [*key, "+Inf"])
    lines.append(f"{name}_bucket{labels} {cumulative}")
    plain = _labels_text(labelnames, key)
    lines.append(f"{name}_sum{plain} {_format_value(histogram.total)}")
    lines.append(f"{name}_count{plain} {histogram.count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for family in registry.families():
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.children():
            if isinstance(child, LogHistogram):
                lines.extend(
                    _histogram_lines(family.name, family.labelnames, key, child)
                )
            else:
                labels = _labels_text(family.labelnames, key)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> None:
    """Check ``text`` against the exposition grammar; DataError on violation.

    Beyond per-line syntax, enforces the histogram contract: every family
    declared ``# TYPE ... histogram`` must expose a ``+Inf`` bucket and
    ``_sum``/``_count`` series.
    """
    histogram_families: set[str] = set()
    seen_inf: set[str] = set()
    seen_sum: set[str] = set()
    seen_count: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise DataError(f"line {number}: malformed comment: {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise DataError(f"line {number}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise DataError(f"line {number}: bad TYPE: {line!r}")
                if parts[3] == "histogram":
                    histogram_families.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise DataError(f"line {number}: malformed sample: {line!r}")
        labels = match.group("labels")
        if labels:
            for pair in re.split(r",(?=[a-zA-Z_])", labels):
                if not _LABEL_RE.match(pair.strip()):
                    raise DataError(
                        f"line {number}: malformed label pair {pair!r}"
                    )
        name = match.group("name")
        for family in histogram_families:
            if name == f"{family}_bucket" and 'le="+Inf"' in line:
                seen_inf.add(family)
            elif name == f"{family}_sum":
                seen_sum.add(family)
            elif name == f"{family}_count":
                seen_count.add(family)
    for family in histogram_families:
        for required, seen in (
            ("+Inf bucket", seen_inf), ("_sum", seen_sum), ("_count", seen_count)
        ):
            if family not in seen:
                raise DataError(
                    f"histogram family {family!r} is missing its {required}"
                )


class MetricsServer:
    """A daemon-thread ``/metrics`` endpoint over a registry.

    >>> server = MetricsServer(registry, port=0)   # doctest: +SKIP
    >>> server.start()                             # doctest: +SKIP
    >>> server.port                                # the bound port
    >>> server.close()

    Scrapes render the registry at request time, so the endpoint always
    reflects the live instruments.  ``close`` is idempotent.
    """

    def __init__(
        self, registry: MetricsRegistry, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.registry = registry
        registry_ref = registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?")[0] != "/metrics":
                    self.send_error(404, "only /metrics is served")
                    return
                body = render_prometheus(registry_ref).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                pass  # keep scrapes out of the CLI's stdout

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._server.shutdown()
            thread.join(timeout=5)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
