"""HDR-style log-bucketed histograms: O(1) record, mergeable, bounded error.

:class:`LogHistogram` replaces grow-forever sample lists in long-horizon
serving: values land in logarithmically spaced buckets between a
configurable ``min_value`` and ``max_value``, so memory is fixed (a few
hundred ``int64`` counters) no matter how many samples arrive, and the
relative error of any reported percentile is bounded by the bucket width —
``10 ** (1 / (2 * buckets_per_decade)) - 1`` (≈ 3.7 % at the default 32
buckets per decade).

Design points shared by every user (stream metrics, the batch framework's
CPU-time summaries, the observability registry):

* **Underflow/overflow are explicit buckets.**  Values at or below
  ``min_value`` (including the exact zeros an unloaded round produces) land
  in bucket 0; values at or above ``max_value`` land in the top bucket.
  Nothing is ever dropped, and ``count``/``total``/``min_seen``/``max_seen``
  stay exact — only the *shape* between the bounds is quantized.
* **Mergeable.**  Two histograms with the same bucket configuration add
  counter-wise (:meth:`merge`), which is what lets per-shard or per-process
  collectors combine into one distribution.
* **Checkpointable.**  :meth:`state_dict` is a small JSON-safe dict (counts
  stored sparsely) and :meth:`load_state_dict` restores it bit-exactly,
  raising :class:`~repro.exceptions.DataError` when the saved bucket
  configuration does not match the receiving histogram's — the checkpoint
  compatibility contract.

Percentiles use the nearest-rank definition (the sample at rank
``ceil(q / 100 * count)``) with each bucket represented by its geometric
midpoint, clamped into ``[min_seen, max_seen]`` so reported values never
leave the observed range.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "LogHistogram",
    "SECONDS_HISTOGRAM",
    "WAIT_HOURS_HISTOGRAM",
]

#: Bucket configuration for wall-clock latencies in seconds: 1 µs resolution
#: floor, 10 ks ceiling — round solves, checkpoint saves, CPU times.
SECONDS_HISTOGRAM: dict = {
    "min_value": 1e-6,
    "max_value": 1e4,
    "buckets_per_decade": 32,
}

#: Bucket configuration for simulated waits in hours: sub-second resolution
#: floor, ~1-year ceiling — task/worker publication-to-assignment waits.
WAIT_HOURS_HISTOGRAM: dict = {
    "min_value": 1e-4,
    "max_value": 1e4,
    "buckets_per_decade": 32,
}


class LogHistogram:
    """A fixed-size, mergeable, log-bucketed latency histogram."""

    __slots__ = (
        "min_value",
        "max_value",
        "buckets_per_decade",
        "counts",
        "count",
        "total",
        "min_seen",
        "max_seen",
        "_log_min",
        "_log_buckets",
    )

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 1e6,
        buckets_per_decade: int = 32,
    ) -> None:
        if not 0.0 < min_value < max_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got {min_value}, {max_value}"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_value / self.min_value)
        self._log_buckets = max(1, math.ceil(decades * self.buckets_per_decade))
        self._log_min = math.log10(self.min_value)
        # Bucket 0: value <= min_value.  Last bucket: value >= max_value.
        self.counts = np.zeros(self._log_buckets + 2, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf

    # ------------------------------------------------------------- recording
    def bucket_of(self, value: float) -> int:
        """The bucket index ``value`` lands in (underflow 0, overflow last)."""
        if not value > self.min_value:  # also catches NaN, zeros, negatives
            return 0
        if value >= self.max_value:
            return self._log_buckets + 1
        index = 1 + int(
            (math.log10(value) - self._log_min) * self.buckets_per_decade
        )
        # Clamp against float rounding at the extreme edges.
        return min(max(index, 1), self._log_buckets)

    def record(self, value: float) -> None:
        """Fold one sample in — O(1), no allocation."""
        value = float(value)
        self.counts[self.bucket_of(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    def record_many(self, values: Iterable[float]) -> None:
        """Vectorized :meth:`record` over an array of samples.

        Buckets, count and min/max match sample-at-a-time recording
        exactly; ``total`` may differ in the last ulp (numpy's pairwise
        summation vs sequential addition), so bit-exact replay paths must
        pick one recording style and stick to it — the stream metrics
        record sample-at-a-time everywhere.
        """
        values = np.asarray(list(values) if not isinstance(values, np.ndarray)
                            else values, dtype=float).ravel()
        if values.size == 0:
            return
        with np.errstate(divide="ignore", invalid="ignore"):
            index = 1 + np.floor(
                (np.log10(values) - self._log_min) * self.buckets_per_decade
            )
        index = np.clip(np.nan_to_num(index, nan=0.0), 1, self._log_buckets)
        index = index.astype(np.int64)
        index[~(values > self.min_value)] = 0
        index[values >= self.max_value] = self._log_buckets + 1
        self.counts += np.bincount(index, minlength=self.counts.size)
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min_seen = min(self.min_seen, float(values.min()))
        self.max_seen = max(self.max_seen, float(values.max()))

    # ------------------------------------------------------------ summaries
    @property
    def empty(self) -> bool:
        """Whether no sample has been recorded."""
        return self.count == 0

    @property
    def mean(self) -> float:
        """Exact mean of the recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantization error of a percentile."""
        return 10.0 ** (1.0 / (2.0 * self.buckets_per_decade)) - 1.0

    def _representative(self, bucket: int) -> float:
        if bucket == 0:
            value = self.min_value
        elif bucket > self._log_buckets:
            value = max(self.max_value, self.max_seen)
        else:
            lower = self._log_min + (bucket - 1) / self.buckets_per_decade
            upper = self._log_min + bucket / self.buckets_per_decade
            value = 10.0 ** ((lower + upper) / 2.0)
        return min(max(value, self.min_seen), self.max_seen)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = min(max(math.ceil(q / 100.0 * self.count), 1), self.count)
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank))
        return self._representative(bucket)

    def percentiles(self, qs: Sequence[float]) -> dict[float, float]:
        """:meth:`percentile` over a sequence of quantiles."""
        return {q: self.percentile(q) for q in qs}

    # -------------------------------------------------------------- algebra
    def _config(self) -> tuple[float, float, int]:
        return (self.min_value, self.max_value, self.buckets_per_decade)

    def _check_config(self, other_config: tuple, what: str) -> None:
        if self._config() != tuple(other_config):
            raise DataError(
                f"histogram bucket configuration mismatch in {what}: this "
                f"histogram uses (min_value, max_value, buckets_per_decade) "
                f"= {self._config()}, the other uses {tuple(other_config)}"
            )

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Add ``other``'s counters in (same bucket configuration required)."""
        self._check_config(other._config(), "merge")
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (
            self._config() == other._config()
            and self.count == other.count
            and self.total == other.total
            and (self.min_seen == other.min_seen or (self.empty and other.empty))
            and (self.max_seen == other.max_seen or (self.empty and other.empty))
            and bool(np.array_equal(self.counts, other.counts))
        )

    __hash__ = None  # mutable

    # ---------------------------------------------------------- checkpoints
    def state_dict(self) -> dict[str, Any]:
        """A small JSON-safe snapshot (counts stored sparsely)."""
        nonzero = np.nonzero(self.counts)[0]
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            "count": self.count,
            "total": self.total,
            "min_seen": self.min_seen if self.count else None,
            "max_seen": self.max_seen if self.count else None,
            "counts": [
                [int(bucket), int(self.counts[bucket])] for bucket in nonzero
            ],
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output bit-exactly.

        Raises :class:`~repro.exceptions.DataError` when the saved bucket
        configuration does not match this histogram's — resuming a
        checkpoint recorded under different bounds would silently misfile
        every restored counter.
        """
        self._check_config(
            (
                float(state["min_value"]),
                float(state["max_value"]),
                int(state["buckets_per_decade"]),
            ),
            "load_state_dict",
        )
        self.counts[:] = 0
        for bucket, value in state["counts"]:
            bucket = int(bucket)
            if not 0 <= bucket < self.counts.size:
                raise DataError(
                    f"histogram state names bucket {bucket}, outside this "
                    f"configuration's {self.counts.size} buckets"
                )
            self.counts[bucket] = int(value)
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.min_seen = (
            float(state["min_seen"]) if state["min_seen"] is not None else math.inf
        )
        self.max_seen = (
            float(state["max_seen"]) if state["max_seen"] is not None else -math.inf
        )

    @classmethod
    def from_state_dict(cls, state: Mapping[str, Any]) -> "LogHistogram":
        """Build a histogram directly from :meth:`state_dict` output."""
        histogram = cls(
            min_value=float(state["min_value"]),
            max_value=float(state["max_value"]),
            buckets_per_decade=int(state["buckets_per_decade"]),
        )
        histogram.load_state_dict(state)
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogHistogram(count={self.count}, mean={self.mean:.6g}, "
            f"buckets={self.counts.size})"
        )
