"""Span tracing in the Chrome trace-event format (Perfetto-compatible).

:class:`Tracer` collects *complete* spans (``"ph": "X"``) and *instant*
events (``"ph": "i"``) into an in-memory list and serializes them as the
JSON object format Perfetto / ``chrome://tracing`` open directly::

    {"traceEvents": [{"name": "solve", "ph": "X", "ts": ..., "dur": ...,
                      "pid": ..., "tid": ..., "cat": "stream",
                      "args": {"shard": 3}}, ...],
     "displayTimeUnit": "ms"}

Timestamps are microseconds relative to the tracer's epoch, taken from
``time.time_ns()`` — the wall clock, *not* ``perf_counter`` — so spans
measured in pool worker processes (which ship ``(start_ns, end_ns, pid,
tid)`` back with their results) land on the same timeline as the parent's.

The off switch mirrors the registry's: :class:`NullTracer` hands out one
shared no-op span, so un-instrumented code paths cost an ``enabled`` check
or a no-op call.  Tracing is pure observation — span arguments only carry
values the runtime already computed — which is what the obs-on vs obs-off
differential tests pin.

:func:`validate_trace_events` is the schema contract: tests and the CI
smoke job run it over emitted files, so a drifting event shape fails fast
rather than producing files Perfetto silently mis-renders.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import DataError
from repro.ioutil import atomic_write_text

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "validate_trace_events",
]

#: Event phases the emitter produces and the validator accepts.
_PHASES = ("X", "i", "M")


class _Span:
    """A live complete-event span; close it via the context manager."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start_ns = time.time_ns()

    def note(self, **args: Any) -> None:
        """Attach result arguments discovered while the span was open."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.complete(
            self.name,
            self._start_ns,
            time.time_ns(),
            cat=self.cat,
            args=self.args or None,
        )


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()

    def note(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe collector of trace events on one wall-clock timeline."""

    enabled = True

    def __init__(self, process_name: str = "repro-stream") -> None:
        self.process_name = process_name
        self.epoch_ns = time.time_ns()
        self._pid = os.getpid()
        self._events: list[dict] = []
        self._lock = threading.Lock()

    # -------------------------------------------------------------- emission
    def _ts(self, t_ns: int) -> float:
        return (t_ns - self.epoch_ns) / 1e3

    def span(self, name: str, cat: str = "stream", **args: Any) -> _Span:
        """Open a complete-event span (use as a context manager)."""
        return _Span(self, name, cat, dict(args))

    def complete(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        cat: str = "stream",
        pid: int | None = None,
        tid: int | None = None,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record one finished span from explicit wall-clock nanoseconds.

        ``pid``/``tid`` default to the calling process/thread; pass the
        values shipped back from a pool worker to attribute its solve span
        to the worker's own timeline row.
        """
        event = {
            "name": name,
            "ph": "X",
            "cat": cat,
            "ts": self._ts(start_ns),
            "dur": max((end_ns - start_ns) / 1e3, 0.0),
            "pid": int(pid if pid is not None else self._pid),
            "tid": int(tid if tid is not None else threading.get_ident()),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def instant(
        self,
        name: str,
        *,
        cat: str = "stream",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a point-in-time event (admission gates, shard repacks)."""
        event = {
            "name": name,
            "ph": "i",
            "s": "p",  # process-scoped instant
            "cat": cat,
            "ts": self._ts(time.time_ns()),
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------- rendering
    def events(self) -> list[dict]:
        """A snapshot copy of the recorded events."""
        with self._lock:
            return [dict(event) for event in self._events]

    def to_payload(self) -> dict:
        """The full trace-event JSON object (metadata + events)."""
        metadata = {
            "name": "process_name",
            "ph": "M",
            "pid": self._pid,
            "tid": 0,
            "ts": 0.0,
            "args": {"name": self.process_name},
        }
        return {
            "traceEvents": [metadata, *self.events()],
            "displayTimeUnit": "ms",
        }

    def write(self, path: str | Path) -> Path:
        """Atomically write the trace JSON to ``path`` and return it."""
        return atomic_write_text(
            Path(path), json.dumps(self.to_payload(), sort_keys=True)
        )


class NullTracer:
    """The off switch: spans are shared no-ops, nothing is recorded."""

    enabled = False

    def span(self, name: str, cat: str = "stream", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name, start_ns, end_ns, *, cat="stream", pid=None,
                 tid=None, args=None) -> None:
        pass

    def instant(self, name, *, cat="stream", args=None) -> None:
        pass

    def events(self) -> list[dict]:
        return []


#: Shared default used wherever no tracer was configured.
NULL_TRACER = NullTracer()


def validate_trace_events(payload: Mapping[str, Any]) -> None:
    """Check a trace payload against the trace-event schema.

    Raises :class:`~repro.exceptions.DataError` naming the first offending
    event.  Validates the subset of the Chrome trace-event format this
    module emits: an object with a ``traceEvents`` list whose entries carry
    ``name``/``ph``/``ts``/``pid``/``tid``, with ``dur >= 0`` on complete
    events and a scope flag on instants.
    """
    if not isinstance(payload, Mapping) or "traceEvents" not in payload:
        raise DataError("trace payload must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise DataError("'traceEvents' must be a list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, Mapping):
            raise DataError(f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise DataError(f"{where} is missing {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise DataError(f"{where} has a non-string name")
        if event["ph"] not in _PHASES:
            raise DataError(
                f"{where} has unsupported phase {event['ph']!r} "
                f"(expected one of {_PHASES})"
            )
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise DataError(f"{where} has a non-integer {key!r}")
        if event["ph"] != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise DataError(f"{where} has a non-numeric 'ts'")
        if event["ph"] == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise DataError(f"{where} needs a non-negative 'dur'")
        if event["ph"] == "i" and event.get("s") not in ("g", "p", "t"):
            raise DataError(f"{where} instant needs scope 's' in g/p/t")
        if "args" in event and not isinstance(event["args"], Mapping):
            raise DataError(f"{where} has non-object 'args'")
